//! The physical executor: algebra plans → `cleanm-exec` operators (Table 2).
//!
//! | Algebra node | Runtime operator (per profile) |
//! |---|---|
//! | `Scan`      | partitioned load |
//! | `Select`    | `filter` |
//! | `Unnest`    | `flat_map` |
//! | `Nest`      | `aggregate_by_key` \| sort-shuffle \| hash-shuffle, then `map_partitions` |
//! | `Join`      | hash equi-join |
//! | `ThetaJoin` | M-Bucket \| min-max blocks \| cartesian+filter |
//! | `Reduce`    | `map` → collect/fold |
//!
//! Rows travel as [`RowEnv`] — the variable environment of the
//! comprehension the plan was lowered from. The executor memoizes
//! materialized results per plan node (when the profile shares plans), which
//! turns the §5 DAG sharing into actual single execution, and it attributes
//! wall time to phases (scan / grouping / similarity) for Figure 3's
//! breakdown.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use cleanm_exec::{
    merge_tree, produce_partitions, theta, Dataset, ExecContext, ExecError, ExecResult,
};
use cleanm_values::{ColumnBatch, FxHashMap, FxHashSet, Value};

use crate::algebra::cardinality::{self, StatsCatalog};
use crate::algebra::plan::{theta_widen, Alg};
use crate::calculus::eval::{merge_values, truthy, EvalCtx};
use crate::calculus::{CalcExpr, Func, MonoidKind};
use crate::engine::storage::StoredTable;

use super::groupfold::{self, AggFoldShape, GroupAcc};
use super::kernel::PredKernel;
use super::profile::{EngineProfile, NestStrategy, ThetaStrategy};
use super::program::{env_layout, ProgramCache, RowExpr};
use super::qprofile::{clip, ProfileNode};

/// A row in flight: the comprehension environment (variable → value).
pub type RowEnv = Vec<(String, Value)>;

/// Skew threshold: if the most frequent grouping-key value may cover more
/// than this share of the rows, a sort/range shuffle would pin one worker.
const SKEW_TOP_SHARE: f64 = 0.25;
/// Group-collapse threshold: local aggregation wins whenever groups collapse
/// at all; only near-unique keys (avg group below this) make the map-side
/// combine pass pure overhead. Measured on the uniform-customer workload:
/// at avg group 1.2 LocalAggregate still beats HashShuffle by ~20%.
const LOCAL_AGG_MIN_GROUP_SIZE: f64 = 1.1;
/// Below this estimated comparison count a cartesian product's low constant
/// overhead beats both pruning operators.
const SMALL_CARTESIAN_WORK: f64 = 50_000.0;
/// M-Bucket's setup cost relative to input size: bucketing both sides,
/// shuffling them, and assigning matrix cells costs a few passes over
/// `|L| + |R|` records. Cartesian is preferred when the comparisons pruning
/// would save are worth less than this.
const MBUCKET_SETUP_FACTOR: f64 = 8.0;

/// One recorded physical-strategy decision, attributable to a plan node —
/// how the adaptive planner explains itself in reports and benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDecision {
    /// Which operator family the decision was for (`"nest"` / `"theta"`).
    pub operator: &'static str,
    /// Short rendering of the node (grouping key or join predicate).
    pub node: String,
    /// The strategy chosen, e.g. `"LocalAggregate"`.
    pub strategy: String,
    /// Why: the statistics that drove the choice, or `"fixed profile"`.
    pub reason: String,
}

impl std::fmt::Display for PlanDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} -> {} ({})",
            self.operator, self.node, self.strategy, self.reason
        )
    }
}

/// Wall-time attribution per operator family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    pub scan: Duration,
    pub grouping: Duration,
    pub similarity: Duration,
    pub other: Duration,
}

impl PhaseTimings {
    pub fn total(&self) -> Duration {
        self.scan + self.grouping + self.similarity + self.other
    }

    pub fn add(&mut self, other: &PhaseTimings) {
        self.scan += other.scan;
        self.grouping += other.grouping;
        self.similarity += other.similarity;
        self.other += other.other;
    }
}

/// Executes algebra plans against a table catalog.
pub struct Executor<'a> {
    ctx: Arc<ExecContext>,
    profile: EngineProfile,
    tables: &'a HashMap<String, StoredTable>,
    eval_ctx: Arc<EvalCtx>,
    /// Compiled programs shared across runs of a cached plan (set by the
    /// session's plan cache; `None` compiles per run as before).
    program_cache: Option<Arc<ProgramCache>>,
    cache: HashMap<usize, Dataset<RowEnv>>,
    /// Plan nodes referenced more than once across the registered plans —
    /// the only ones worth materializing into the cache (caching a node
    /// with a single consumer would deep-copy its dataset for nothing).
    shared_nodes: std::collections::HashSet<usize>,
    errors: Arc<Mutex<Vec<String>>>,
    pub timings: PhaseTimings,
    /// Per-table statistics for adaptive strategy selection (empty unless
    /// the session collected them).
    stats: StatsCatalog,
    /// `var → table` bindings of all registered plans' scans, so mid-plan
    /// key expressions resolve to catalog columns.
    scan_vars: HashMap<String, String>,
    /// Strategy decisions made while executing, in plan order.
    pub decisions: Vec<PlanDecision>,
    /// Plan-node expressions compiled to slot-resolved programs (hot path).
    pub compiled_exprs: usize,
    /// Plan-node expressions that fell back to the tree interpreter.
    pub interpreted_exprs: usize,
    /// `Select` nodes whose standalone filter pass was fused into a
    /// downstream operator (or into a collapsed filter chain): their
    /// intermediate filtered collections were never materialized.
    pub fused_selects: usize,
    /// Rows processed by columnar kernels instead of row-at-a-time
    /// evaluation (whole-column predicate sweeps over typed batches).
    pub vectorized_rows: u64,
    /// Input-row count for the profile node being closed, set by paths
    /// that consume a table directly (the vectorized scan+filter has no
    /// `Scan` child to sum rows from). Taken by `end_node`.
    override_rows_in: Option<u64>,
    /// When set, every executed plan node is wrapped in a profiling frame
    /// and assembled into a [`ProfileNode`] tree (EXPLAIN ANALYZE).
    profiling: bool,
    /// Stack of child collectors: the top entry receives nodes whose parent
    /// frame is still open; the bottom entry collects completed plan roots.
    prof_children: Vec<Vec<ProfileNode>>,
    /// Set by the group-fold path so the `run_reduce` profiling wrapper can
    /// label its root `GroupFold` (fold-into-accumulators) rather than
    /// `Reduce` (materialize-then-reduce). Holds the grouping key rendering.
    last_fold_key: Option<String>,
}

/// Per-node profiling bookkeeping captured at node entry; resolved into a
/// [`ProfileNode`] at exit by diffing against the executor's counters.
struct ProfFrame {
    start: Instant,
    stage_lo: usize,
    decision_lo: usize,
    compiled_lo: usize,
    interpreted_lo: usize,
    fused_lo: usize,
    vectorized_lo: u64,
}

impl<'a> Executor<'a> {
    pub fn new(
        ctx: Arc<ExecContext>,
        profile: EngineProfile,
        tables: &'a HashMap<String, StoredTable>,
        eval_ctx: Arc<EvalCtx>,
    ) -> Self {
        Executor {
            ctx,
            profile,
            tables,
            eval_ctx,
            program_cache: None,
            cache: HashMap::new(),
            shared_nodes: std::collections::HashSet::new(),
            errors: Arc::new(Mutex::new(Vec::new())),
            timings: PhaseTimings::default(),
            stats: StatsCatalog::new(),
            scan_vars: HashMap::new(),
            decisions: Vec::new(),
            compiled_exprs: 0,
            interpreted_exprs: 0,
            fused_selects: 0,
            vectorized_rows: 0,
            override_rows_in: None,
            profiling: false,
            prof_children: Vec::new(),
            last_fold_key: None,
        }
    }

    /// Turn per-node profiling on or off. When on, each `run_reduce` call
    /// leaves a completed [`ProfileNode`] tree retrievable via
    /// [`Executor::take_profile_root`]. Off by default: the disabled cost
    /// is a single branch per plan node.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
        self.prof_children.clear();
        if on {
            self.prof_children.push(Vec::new());
        }
    }

    /// Take the profile tree of the most recently completed `run_reduce`
    /// call. `None` when profiling is off or no plan completed since the
    /// last take.
    pub fn take_profile_root(&mut self) -> Option<ProfileNode> {
        self.prof_children.first_mut().and_then(Vec::pop)
    }

    /// Open a profiling frame: snapshot every counter the node's execution
    /// will advance, and push a collector for its children.
    fn begin_node(&mut self) -> ProfFrame {
        self.prof_children.push(Vec::new());
        ProfFrame {
            start: Instant::now(),
            stage_lo: self.ctx.metrics().stage_count(),
            decision_lo: self.decisions.len(),
            compiled_lo: self.compiled_exprs,
            interpreted_lo: self.interpreted_exprs,
            fused_lo: self.fused_selects,
            vectorized_lo: self.vectorized_rows,
        }
    }

    /// Close a profiling frame into a [`ProfileNode`] and hand it to the
    /// parent frame. Attribution works by delta ranges: everything recorded
    /// between entry and exit belongs to this subtree, and whatever the
    /// children's own ranges claim is subtracted to leave this node's share.
    fn end_node(
        &mut self,
        frame: ProfFrame,
        op: String,
        detail: String,
        rows_out: u64,
        mut flags: Vec<String>,
    ) {
        let children = self.prof_children.pop().expect("unbalanced profile frame");
        let stage_hi = self.ctx.metrics().stage_count();
        let decision_hi = self.decisions.len();
        let claimed =
            |i: usize, ranges: &[(usize, usize)]| ranges.iter().any(|&(a, b)| i >= a && i < b);

        let mut node = ProfileNode {
            op,
            detail,
            rows_out,
            wall_ns: frame.start.elapsed().as_nanos() as u64,
            stage_range: (frame.stage_lo, stage_hi),
            decision_range: (frame.decision_lo, decision_hi),
            ..ProfileNode::default()
        };

        // Exec stages in this subtree's range not claimed by a child
        // subtree ran for this node: fold in their shuffle volume, busy
        // time, and balance.
        let child_stages: Vec<_> = children.iter().map(|c| c.stage_range).collect();
        let reports = self.ctx.metrics().stages_since(frame.stage_lo);
        for i in frame.stage_lo..stage_hi {
            if claimed(i, &child_stages) {
                continue;
            }
            let Some(r) = reports.get(i - frame.stage_lo) else {
                continue;
            };
            node.busy_ns += r.worker_busy_ns.iter().sum::<u64>();
            node.shuffled += r.records_shuffled;
            node.max_imbalance = node.max_imbalance.max(r.imbalance());
            node.idle_fraction = node.idle_fraction.max(r.idle_fraction());
            node.stage_ops.push(r.operator.to_string());
        }

        let child_decisions: Vec<_> = children.iter().map(|c| c.decision_range).collect();
        for i in frame.decision_lo..decision_hi {
            if claimed(i, &child_decisions) {
                continue;
            }
            let d = &self.decisions[i];
            node.strategies
                .push(format!("{} ({})", d.strategy, d.reason));
        }

        // Expression counters: the subtree delta minus what the children's
        // subtrees already account for is this node's own contribution.
        let mut compiled = self.compiled_exprs - frame.compiled_lo;
        let mut interpreted = self.interpreted_exprs - frame.interpreted_lo;
        let mut fused = self.fused_selects - frame.fused_lo;
        let mut vectorized = self.vectorized_rows - frame.vectorized_lo;
        for c in &children {
            let (cc, ci, cf) = c.subtree_exprs();
            compiled = compiled.saturating_sub(cc);
            interpreted = interpreted.saturating_sub(ci);
            fused = fused.saturating_sub(cf);
            vectorized = vectorized.saturating_sub(c.subtree_vectorized());
        }
        node.compiled_exprs = compiled;
        node.interpreted_exprs = interpreted;
        node.fused_selects = fused;
        node.vectorized_rows = vectorized;
        if vectorized > 0 {
            node.flags.push("vectorized".to_string());
        }

        node.rows_in = if let Some(rows_in) = self.override_rows_in.take() {
            rows_in
        } else if children.is_empty() {
            rows_out
        } else {
            children.iter().map(|c| c.rows_out).sum()
        };
        node.flags.append(&mut flags);
        node.children = children;
        self.prof_children
            .last_mut()
            .expect("profiling root collector")
            .push(node);
    }

    /// Discard an open frame after an execution error, keeping the frame
    /// stack balanced for the next plan.
    fn abort_node(&mut self) {
        self.prof_children.pop();
    }

    /// Peel the chain of fusible `Select` nodes off `plan`: the predicates
    /// in evaluation order (innermost first — an error the inner filter
    /// would have hidden stays hidden) plus the producer beneath them.
    /// `Select` never changes the environment layout, so every peeled
    /// predicate compiles against the producer's layout. A `Select` is not
    /// fusible when the profile runs operator-at-a-time, or when the node
    /// is a shared DAG node — shared results must stay materialized once
    /// for all their consumers.
    fn peel_selects<'p>(&self, mut plan: &'p Arc<Alg>) -> (Vec<&'p CalcExpr>, &'p Arc<Alg>) {
        let mut preds = Vec::new();
        if self.profile.fuse_selects {
            while let Alg::Select { input, pred } = &**plan {
                let key = Arc::as_ptr(plan) as usize;
                if self.profile.share_plans && self.shared_nodes.contains(&key) {
                    break;
                }
                preds.push(pred);
                plan = input;
            }
        }
        preds.reverse();
        (preds, plan)
    }

    /// Compile a peeled predicate chain against the producer's layout as
    /// **one** program: the chain conjoins left-to-right in evaluation
    /// order (`(p1 and p2) and p3`), so the compiler's fused boolean trees
    /// evaluate the whole chain with native short-circuit in a single
    /// program entry — `and` preserves exactly the stacked-Select
    /// semantics (truthiness per stage, inner errors surface, outer
    /// predicates unreached once an inner one rejects). `None` when the
    /// chain is empty.
    fn compile_preds(&mut self, preds: &[&CalcExpr], scope: &[String]) -> Option<Arc<RowExpr>> {
        conjoin(preds).map(|conj| self.row_expr(&conj, scope))
    }

    /// The vectorized Select: when the source is a plain (non-shared)
    /// `Scan` and the compiled predicate re-lowers into a columnar kernel
    /// against every stored batch's typed columns, the scan+filter runs as
    /// whole-column sweeps — no row environments are materialized for
    /// non-survivors. Survivor rows land in exactly the partitions the row
    /// path would have produced (same contiguous-chunk layout), so every
    /// downstream operator sees an identical dataset. `None` (fall back to
    /// the row path) when the profile doesn't vectorize, the scan is a
    /// shared DAG node, the predicate didn't compile, or any batch fails
    /// to columnarize or to lower.
    fn try_columnar_select(
        &mut self,
        source: &Arc<Alg>,
        pred_rxs: &Option<Arc<RowExpr>>,
    ) -> ExecResult<Option<Dataset<RowEnv>>> {
        if !self.profile.vectorize {
            return Ok(None);
        }
        let Alg::Scan { table, var } = &**source else {
            return Ok(None);
        };
        let key = Arc::as_ptr(source) as usize;
        if self.profile.share_plans && self.shared_nodes.contains(&key) {
            // A shared scan must stay materialized once for all consumers.
            return Ok(None);
        }
        let Some(program) = pred_rxs.as_ref().and_then(|rx| rx.program()) else {
            return Ok(None);
        };
        if program.scope_len() != 1 {
            return Ok(None);
        }
        let Some(stored) = self.tables.get(table.as_str()) else {
            return Ok(None);
        };

        // Columnarize every batch and lower the predicate against each
        // batch's concrete schema (appends may differ in column order).
        // Columnarization runs on the driver, so it gets its own panic
        // guard and fault/interrupt checks per batch (the chaos suite's
        // `columnarize` and `kernel_entry` sites).
        let nbatches = stored.batches().len();
        let built = self.ctx.catch_driver("storage batch columnarization", || {
            let mut cols: Vec<Arc<ColumnBatch>> = Vec::with_capacity(nbatches);
            let mut kernels: Vec<Option<PredKernel>> = Vec::with_capacity(nbatches);
            for idx in 0..nbatches {
                self.ctx.check_interrupt("columnarize")?;
                self.ctx
                    .fault_point(cleanm_exec::FaultSite::Columnarize, idx as u64, 0)?;
                let Some(cb) = stored.columnar_batch(idx) else {
                    return Ok(None);
                };
                self.ctx
                    .fault_point(cleanm_exec::FaultSite::KernelEntry, idx as u64, 0)?;
                kernels.push(PredKernel::compile(program, &[&cb]));
                cols.push(cb);
            }
            Ok(Some((cols, kernels)))
        })?;
        let Some((cols, kernels)) = built else {
            return Ok(None);
        };
        let Some(kernels) = kernels.into_iter().collect::<Option<Vec<PredKernel>>>() else {
            return Ok(None);
        };

        // Replicate the row path's partition layout: the concatenated
        // stream split into contiguous chunks of `total.div_ceil(p)`.
        let total = stored.len();
        let p = self.ctx.default_partitions();
        let chunk = total.div_ceil(p).max(1);
        let mut tasks: Vec<Vec<(usize, u32, u32)>> = Vec::with_capacity(p);
        for k in 0..total.div_ceil(chunk) {
            let (glo, ghi) = (k * chunk, ((k + 1) * chunk).min(total));
            let mut spans = Vec::new();
            let mut off = 0usize;
            for (bi, b) in stored.batches().iter().enumerate() {
                let (lo, hi) = (glo.max(off), ghi.min(off + b.len()));
                if lo < hi {
                    spans.push((bi, (lo - off) as u32, (hi - off) as u32));
                }
                off += b.len();
            }
            tasks.push(spans);
        }
        while tasks.len() < p {
            tasks.push(Vec::new());
        }

        self.vectorized_rows += total as u64;
        if self.profiling {
            self.override_rows_in = Some(total as u64);
        }
        let var = var.clone();
        // Survivor environments hold the *stored* row values (cheap Arc
        // clones, the very same values the row path emits); the columns
        // only drive the predicate sweep.
        let rows: Vec<Arc<Vec<Value>>> = stored.batches().to_vec();
        let out = produce_partitions(&self.ctx, "filter", total as u64, tasks, move |spans| {
            let mut envs: Vec<RowEnv> = Vec::new();
            for (bi, lo, hi) in spans {
                let cb = &cols[bi];
                let mut sel: Vec<u32> = (lo..hi).collect();
                // Binding cannot fail: the kernel compiled against this
                // very batch and stored batches are immutable.
                assert!(
                    kernels[bi].filter(&[cb], &mut sel),
                    "columnar kernel bound against a drifted batch schema"
                );
                envs.reserve(sel.len());
                for i in sel {
                    envs.push(vec![(var.clone(), rows[bi][i as usize].clone())]);
                }
            }
            envs
        })?;
        Ok(Some(out))
    }

    /// Materialize `source` with a peeled predicate chain already applied
    /// when it vectorizes: every fused consumer (Reduce, Nest, GroupFold,
    /// Unnest, Join keying) funnels through here, so a `WHERE` chain over a
    /// plain scan sweeps columnar kernels no matter which operator fused
    /// it. On kernel success the predicates come back as `None` — the
    /// caller's own sweep has nothing left to test; otherwise the source
    /// runs row-at-a-time and the compiled predicates return unchanged for
    /// the caller's fused pass.
    fn run_filtered(
        &mut self,
        source: &Arc<Alg>,
        pred_rxs: Option<Arc<RowExpr>>,
    ) -> ExecResult<(Dataset<RowEnv>, Option<Arc<RowExpr>>)> {
        if let Some(ds) = self.try_columnar_select(source, &pred_rxs)? {
            return Ok((ds, None));
        }
        Ok((self.run(source)?, pred_rxs))
    }

    /// Compile a plan-node expression against its environment layout once,
    /// counting the outcome. Per-partition evaluation then runs the flat
    /// program; uncompilable expressions keep interpreted semantics. With a
    /// program cache attached (cached plans), compilation happens once per
    /// *plan lifetime* rather than once per run.
    fn row_expr(&mut self, expr: &CalcExpr, scope: &[String]) -> Arc<RowExpr> {
        let rx = match &self.program_cache {
            Some(cache) => cache.get_or_compile(expr, scope, &self.eval_ctx),
            None => Arc::new(RowExpr::compile(expr, scope, &self.eval_ctx)),
        };
        if rx.is_compiled() {
            self.compiled_exprs += 1;
        } else {
            self.interpreted_exprs += 1;
        }
        rx
    }

    /// Attach a cross-run compiled-program cache (plan-cache entries own
    /// one per planned query).
    pub fn set_program_cache(&mut self, cache: Arc<ProgramCache>) {
        self.program_cache = Some(cache);
    }

    /// Provide table statistics for adaptive strategy selection.
    pub fn set_stats(&mut self, stats: StatsCatalog) {
        self.stats = stats;
    }

    /// Inspect the full set of plans this executor will run and record the
    /// DAG nodes that appear more than once (directly, or via the sharing
    /// rewrite). Only those results are memoized.
    pub fn register_plans(&mut self, plans: &[Arc<Alg>]) {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        fn visit(plan: &Arc<Alg>, counts: &mut HashMap<usize, usize>) {
            let key = Arc::as_ptr(plan) as usize;
            let n = counts.entry(key).or_insert(0);
            *n += 1;
            if *n > 1 {
                return; // children already counted through the first visit
            }
            match &**plan {
                Alg::Scan { .. } => {}
                Alg::Select { input, .. }
                | Alg::Nest { input, .. }
                | Alg::Unnest { input, .. }
                | Alg::Reduce { input, .. } => visit(input, counts),
                Alg::Join { left, right, .. } | Alg::ThetaJoin { left, right, .. } => {
                    visit(left, counts);
                    visit(right, counts);
                }
            }
        }
        for plan in plans {
            visit(plan, &mut counts);
            cardinality::scan_bindings(plan, &mut self.scan_vars);
        }
        self.shared_nodes = counts
            .into_iter()
            .filter(|(_, n)| *n > 1)
            .map(|(k, _)| k)
            .collect();
    }

    /// Execute a full per-operator plan (must be a `Reduce` root) and return
    /// the reduced output collection. A fusible `Select` chain feeding the
    /// Reduce runs *inside* the head-evaluation pass — and for scalar
    /// monoids the pass folds each partition down to one accumulator on
    /// the workers ([`Dataset::filter_fold`]), so neither the filtered rows
    /// nor the per-row head values are ever materialized.
    ///
    /// With profiling on, the whole per-operator execution becomes the
    /// root [`ProfileNode`]: `GroupFold` when the streaming grouped path
    /// consumed the Nest+Reduce, `Reduce[monoid]` otherwise.
    pub fn run_reduce(&mut self, plan: &Arc<Alg>) -> ExecResult<Vec<Value>> {
        if !self.profiling {
            return self.run_reduce_inner(plan);
        }
        self.last_fold_key = None;
        let frame = self.begin_node();
        let result = self.run_reduce_inner(plan);
        match &result {
            Ok(outputs) => {
                let (op, detail, flags) = match self.last_fold_key.take() {
                    Some(key) => (
                        "GroupFold".to_string(),
                        key,
                        vec!["fold-groups".to_string()],
                    ),
                    None => {
                        let (op, detail) = plan_label(plan);
                        (op, detail, Vec::new())
                    }
                };
                self.end_node(frame, op, detail, outputs.len() as u64, flags);
            }
            Err(_) => self.abort_node(),
        }
        result
    }

    fn run_reduce_inner(&mut self, plan: &Arc<Alg>) -> ExecResult<Vec<Value>> {
        if self.profile.fold_groups {
            if let Some(outputs) = self.try_group_fold(plan)? {
                return Ok(outputs);
            }
        }
        let Alg::Reduce {
            input,
            monoid,
            head,
        } = &**plan
        else {
            return Err(ExecError::Other(format!(
                "operator plan must end in Reduce, got:\n{}",
                plan.explain()
            )));
        };
        let (preds, source) = self.peel_selects(input);
        let nfused = preds.len();
        // Phase attribution survives fusion: a similarity predicate's cost
        // books under the similarity phase even when its pass merged into
        // this consumer's sweep.
        let similarity = preds.iter().any(|p| expr_has_similarity(p));
        let scope = env_layout(source);
        let eval_ctx = Arc::clone(&self.eval_ctx);
        let errors = Arc::clone(&self.errors);

        // Scalar monoids with a fused filter compile the whole pipeline
        // into **one program per row** — `if pred then head else null`,
        // `null` being the monoid's fold identity — and fold each
        // partition down to a single accumulator on the workers: neither
        // the filtered rows nor the per-row head values are ever
        // materialized. (`All` is excluded: null is not its identity.)
        // Float Sum/Prod results can differ from the sequential fold in
        // the last ulp — per-partition partials associate additions
        // differently, as in any parallel aggregation.
        if nfused > 0
            && matches!(
                monoid,
                MonoidKind::Sum
                    | MonoidKind::Prod
                    | MonoidKind::Min
                    | MonoidKind::Max
                    | MonoidKind::Any
            )
        {
            let ds = self.run(source)?;
            let start = Instant::now();
            self.fused_selects += nfused;
            let guarded = CalcExpr::If(
                Box::new(conjoin(&preds).expect("nfused > 0")),
                Box::new(head.clone()),
                Box::new(CalcExpr::Const(Value::Null)),
            );
            let guarded_rx = self.row_expr(&guarded, &scope);
            let m = monoid.clone();
            let zero_m = m.clone();
            let partials = ds.filter_fold(
                "fused_filter_fold",
                move || zero_m.zero(),
                |_| true,
                move |acc, env: RowEnv| {
                    let v = match guarded_rx.eval_env(&env, &eval_ctx) {
                        Ok(v) => v,
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            return acc;
                        }
                    };
                    match merge_scalar(&m, acc, v) {
                        Ok(acc) => acc,
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            m.zero()
                        }
                    }
                },
            )?;
            self.check_errors()?;
            let mut acc = monoid.zero();
            for p in partials {
                acc = merge_values(monoid, acc, p).map_err(|e| ExecError::Value(e.to_string()))?;
            }
            if similarity {
                self.timings.similarity += start.elapsed();
            } else {
                self.timings.other += start.elapsed();
            }
            return Ok(vec![acc]);
        }

        let pred_rxs = self.compile_preds(&preds, &scope);
        let (ds, pred_rxs) = self.run_filtered(source, pred_rxs)?;
        let start = Instant::now();
        self.fused_selects += nfused;
        let head_rx = self.row_expr(head, &scope);
        let label = if pred_rxs.is_some() {
            "fused_filter_map"
        } else {
            "map_partitions"
        };
        let (pred_ctx, pred_errs) = (Arc::clone(&eval_ctx), Arc::clone(&errors));
        let outputs: Vec<Value> = ds
            .filter_transform(
                label,
                move |env: &RowEnv| passes(&pred_rxs, env, &pred_ctx, &pred_errs),
                move |env, out: &mut Vec<Value>| {
                    out.push(match head_rx.eval_env(&env, &eval_ctx) {
                        Ok(v) => v,
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            Value::Null
                        }
                    })
                },
            )?
            .collect();
        self.check_errors()?;
        let result = match monoid {
            MonoidKind::Bag | MonoidKind::List => outputs,
            MonoidKind::Set => {
                let mut o = outputs;
                o.sort();
                o.dedup();
                o
            }
            prim => {
                let mut acc = prim.zero();
                for v in outputs {
                    acc =
                        merge_values(prim, acc, v).map_err(|e| ExecError::Value(e.to_string()))?;
                }
                vec![acc]
            }
        };
        if similarity {
            self.timings.similarity += start.elapsed();
        } else {
            self.timings.other += start.elapsed();
        }
        Ok(result)
    }

    /// Try the streaming grouped-aggregation path: when every consumer
    /// above an unshared `Nest` reduces the group purely through monoid
    /// reductions (grouped aggregates, FD distinct-RHS tests — see
    /// `groupfold`), rows fold straight into per-key accumulators and the
    /// `(key, Vec<member>)` group lists are never built. The group-level
    /// `Select`s and the Reduce itself are consumed structurally; only
    /// `(key, partial)` pairs cross the shuffle on the combine-friendly
    /// strategy. Returns `None` — caller keeps the materialized path —
    /// when the plan does not match, when the `Nest` or an intermediate
    /// `Select` is a shared DAG node (its materialized result has other
    /// consumers), or for a non-collection outer monoid.
    ///
    /// Semantics note: aggregate member expressions are evaluated for
    /// *every* row during the fold, so an evaluation error in an aggregate
    /// the materialized path would only have computed for groups surviving
    /// an earlier group predicate surfaces eagerly here (as with any fused
    /// evaluation, errors can only appear earlier, never differently).
    fn try_group_fold(&mut self, plan: &Arc<Alg>) -> ExecResult<Option<Vec<Value>>> {
        let Alg::Reduce {
            input,
            monoid,
            head,
        } = &**plan
        else {
            return Ok(None);
        };
        if !matches!(monoid, MonoidKind::Bag | MonoidKind::Set) {
            return Ok(None);
        }
        let is_shared = |ex: &Self, node: &Arc<Alg>| {
            ex.profile.share_plans && ex.shared_nodes.contains(&(Arc::as_ptr(node) as usize))
        };
        // Walk the group-level Select chain down to the Nest.
        let mut group_preds: Vec<&CalcExpr> = Vec::new();
        let mut cur = input;
        loop {
            if is_shared(self, cur) {
                return Ok(None);
            }
            match &**cur {
                Alg::Select { input, pred } => {
                    group_preds.push(pred);
                    cur = input;
                }
                Alg::Nest { .. } => break,
                _ => return Ok(None),
            }
        }
        let Alg::Nest {
            input: nest_input,
            key,
            item,
            group_var,
            ..
        } = &**cur
        else {
            unreachable!("loop exits on Nest");
        };
        group_preds.reverse(); // evaluation order: innermost Select first
        let Some(shape) = groupfold::recognize(group_var, item, head, &group_preds) else {
            return Ok(None);
        };
        let outputs = self.exec_group_fold(nest_input, key, item, shape, group_preds.len())?;
        Ok(Some(match monoid {
            MonoidKind::Set => {
                let mut o = outputs;
                o.sort();
                o.dedup();
                o
            }
            _ => outputs,
        }))
    }

    /// Execute a recognized group-fold shape. A fusible `Select` chain
    /// below the Nest runs inside the fold sweep (`pred`); the three skew
    /// strategies keep their meaning with fold-based execution:
    /// `LocalAggregate` folds map-side and shuffles only partials,
    /// `HashShuffle` shuffles every pair then folds at the target,
    /// `SortShuffle` range-partitions, sorts and folds adjacent runs.
    ///
    /// Aggregate-head shapes finish per group on the pool. Group-keeping
    /// shapes (FD) run two phases: fold the per-key accumulators where the
    /// rows sit, merge those partial maps **tree-wise on the pool**
    /// ([`merge_tree`]), decide the passing keys, then materialize *only*
    /// those keys' groups — non-violating rows never shuffle.
    fn exec_group_fold(
        &mut self,
        nest_input: &Arc<Alg>,
        key: &CalcExpr,
        item: &CalcExpr,
        shape: AggFoldShape,
        group_selects: usize,
    ) -> ExecResult<Vec<Value>> {
        let keeps_groups = shape.keeps_groups();
        if self.profiling {
            self.last_fold_key = Some(clip(format!("by {key}")));
        }
        let (preds, source) = self.peel_selects(nest_input);
        let nfused = preds.len();
        let pred_similarity = preds.iter().any(|p| expr_has_similarity(p));
        let scope = env_layout(source);
        let pred_rxs = self.compile_preds(&preds, &scope);
        let (ds, pred_rxs) = self.run_filtered(source, pred_rxs)?;
        let start = Instant::now();
        let key_rx = self.row_expr(key, &scope);
        let slot_rxs: Arc<Vec<Arc<RowExpr>>> = Arc::new(
            shape
                .slots
                .iter()
                .map(|s| self.row_expr(&s.row_expr, &scope))
                .collect(),
        );
        let finish_preds: Vec<Arc<RowExpr>> = shape
            .preds
            .iter()
            .map(|p| self.row_expr(p, &shape.scope))
            .collect();
        let finish_head = shape.head.as_ref().map(|h| self.row_expr(h, &shape.scope));
        // Below-Nest filters fuse into the fold sweep; the group-level
        // Selects are consumed structurally (their passes never run).
        self.fused_selects += nfused + group_selects;

        let strategy = if self.profile.adaptive {
            let (strategy, reason) = self.choose_nest(key, ds.count() as f64);
            self.record_decision("nest", key.to_string(), format!("{strategy:?}"), reason);
            strategy
        } else {
            self.record_decision(
                "nest",
                key.to_string(),
                format!("{:?}", self.profile.nest),
                "fixed profile".to_string(),
            );
            self.profile.nest
        };
        if pred_similarity {
            self.timings.similarity += start.elapsed();
        } else {
            self.timings.grouping += start.elapsed();
        }
        let start = Instant::now();

        let slots = Arc::new(shape.slots);
        let finish_scope = Arc::new(shape.scope);
        let eval_ctx = Arc::clone(&self.eval_ctx);
        let errors = Arc::clone(&self.errors);

        // Shared fold machinery over `GroupAcc` accumulators.
        let init = {
            let slots = Arc::clone(&slots);
            move || slots.iter().map(|s| s.zero()).collect::<GroupAcc>()
        };
        let fold = {
            let (slots, errors) = (Arc::clone(&slots), Arc::clone(&errors));
            move |acc: &mut GroupAcc, vals: Vec<Value>| {
                for ((slot, a), v) in slots.iter().zip(acc.iter_mut()).zip(vals) {
                    if let Err(e) = slot.fold(a, v) {
                        errors.lock().push(e.to_string());
                    }
                }
            }
        };
        let merge_accs = {
            let (slots, errors) = (Arc::clone(&slots), Arc::clone(&errors));
            move |acc: &mut GroupAcc, other: GroupAcc| {
                for ((slot, a), b) in slots.iter().zip(acc.iter_mut()).zip(other) {
                    if let Err(e) = slot.merge(a, b) {
                        errors.lock().push(e.to_string());
                    }
                }
            }
        };
        // Evaluate one row's key and slot values; `None` records the error
        // and drops the row (the recorded error fails the query afterwards,
        // exactly as the materialized pair-emission sweep behaves).
        let row_values = {
            let (ctx, errors) = (Arc::clone(&eval_ctx), Arc::clone(&errors));
            let (key_rx, slot_rxs) = (Arc::clone(&key_rx), Arc::clone(&slot_rxs));
            move |env: &RowEnv| -> Option<(Value, Vec<Value>)> {
                let k = match key_rx.eval_env(env, &ctx) {
                    Ok(v) => v,
                    Err(e) => {
                        errors.lock().push(e.to_string());
                        return None;
                    }
                };
                let mut vals = Vec::with_capacity(slot_rxs.len());
                for rx in slot_rxs.iter() {
                    match rx.eval_env(env, &ctx) {
                        Ok(v) => vals.push(v),
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            return None;
                        }
                    }
                }
                Some((k, vals))
            }
        };
        // The finish environment of one group, in `finish_scope` layout.
        let finish_env = {
            let (slots, finish_scope) = (Arc::clone(&slots), Arc::clone(&finish_scope));
            move |key: Value, accs: GroupAcc| -> RowEnv {
                let mut env: RowEnv = Vec::with_capacity(1 + slots.len());
                env.push((finish_scope[0].clone(), key));
                for ((slot, acc), name) in slots.iter().zip(accs).zip(&finish_scope[1..]) {
                    env.push((name.clone(), slot.finish(acc)));
                }
                env
            }
        };
        let pred = {
            let (ctx, errs) = (Arc::clone(&eval_ctx), Arc::clone(&errors));
            let pred_rxs = pred_rxs.clone();
            move |env: &RowEnv| passes(&pred_rxs, env, &ctx, &errs)
        };

        if keeps_groups {
            // ---- Group-keeping (FD) two-phase execution ----
            // Phase 1: fold per-partition key→accumulator maps where the
            // rows sit; nothing but the maps' merge moves.
            let probe = {
                let row_values = row_values.clone();
                let (init, fold) = (init.clone(), fold.clone());
                let pred = pred.clone();
                move |map: &mut FxHashMap<Value, GroupAcc>, env: &RowEnv| {
                    if !pred(env) {
                        return;
                    }
                    let Some((k, vals)) = row_values(env) else {
                        return;
                    };
                    let mut fold_one = |kk: Value, vals: Vec<Value>| {
                        fold(map.entry(kk).or_insert_with(&init), vals);
                    };
                    match k {
                        Value::List(keys) => {
                            for kk in keys.iter() {
                                fold_one(kk.clone(), vals.clone());
                            }
                        }
                        scalar => fold_one(scalar, vals),
                    }
                }
            };
            let partial_maps = ds.fold_partitions("group_fold_probe", FxHashMap::default, probe)?;
            let merged: FxHashMap<Value, GroupAcc> =
                merge_tree(ds.context(), partial_maps, |mut a, b| {
                    for (k, accs) in b {
                        match a.entry(k) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                merge_accs(e.get_mut(), accs)
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(accs);
                            }
                        }
                    }
                    a
                })?
                .unwrap_or_default();
            self.check_errors()?;

            // Decide the passing keys from the folded accumulators.
            let mut passing: FxHashSet<Value> = FxHashSet::default();
            for (k, accs) in merged {
                let env = finish_env(k.clone(), accs);
                let mut keep = true;
                for rx in &finish_preds {
                    match rx.eval_env(&env, &eval_ctx) {
                        Ok(v) => {
                            if !truthy(&v) {
                                keep = false;
                                break;
                            }
                        }
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            keep = false;
                            break;
                        }
                    }
                }
                if keep {
                    passing.insert(k);
                }
            }
            self.check_errors()?;
            if passing.is_empty() {
                self.book_fold_phase(pred_similarity, start);
                return Ok(Vec::new());
            }

            // Phase 2: materialize only the passing keys' groups — the
            // shuffle sees violating rows alone.
            let passing = Arc::new(passing);
            let item_rx = self.row_expr(item, &scope);
            let emit = {
                let (ctx, errors) = (Arc::clone(&eval_ctx), Arc::clone(&errors));
                let key_rx = Arc::clone(&key_rx);
                move |env: RowEnv, out: &mut Vec<(Value, Value)>| {
                    let k = match key_rx.eval_env(&env, &ctx) {
                        Ok(v) => v,
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            return;
                        }
                    };
                    let keys: Vec<Value> = match k {
                        Value::List(keys) => keys
                            .iter()
                            .filter(|kk| passing.contains(kk))
                            .cloned()
                            .collect(),
                        scalar if passing.contains(&scalar) => vec![scalar],
                        _ => return,
                    };
                    if keys.is_empty() {
                        return;
                    }
                    let it = match item_rx.eval_env(&env, &ctx) {
                        Ok(v) => v,
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            return;
                        }
                    };
                    let mut keys = keys;
                    let last = keys.pop().expect("non-empty");
                    for kk in keys {
                        out.push((kk, it.clone()));
                    }
                    out.push((last, it));
                }
            };
            let pairs: Dataset<(Value, Value)> =
                ds.filter_transform("group_fold_materialize", pred, emit)?;
            self.check_errors()?;
            let grouped: Dataset<(Value, Vec<Value>)> = match strategy {
                NestStrategy::LocalAggregate => pairs.group_by_key_local()?,
                NestStrategy::SortShuffle => pairs.group_by_key_sorted()?,
                NestStrategy::HashShuffle => pairs.group_by_key_hash()?,
            };
            let outputs: Vec<Value> = grouped
                .map(|(k, members)| {
                    Value::record([("key", k), ("partition", Value::list(members))])
                })?
                .collect();
            self.book_fold_phase(pred_similarity, start);
            return Ok(outputs);
        }

        // ---- Grouped-aggregate execution: fold, then finish per group ----
        let emit = {
            let row_values = row_values.clone();
            move |env: RowEnv, out: &mut Vec<(Value, Vec<Value>)>| {
                let Some((k, vals)) = row_values(&env) else {
                    return;
                };
                match k {
                    Value::List(keys) => {
                        out.extend(keys.iter().map(|kk| (kk.clone(), vals.clone())))
                    }
                    scalar => out.push((scalar, vals)),
                }
            }
        };
        let grouped: Dataset<(Value, GroupAcc)> = match strategy {
            NestStrategy::LocalAggregate => {
                ds.group_fold("group_fold", pred, emit, init, fold, merge_accs)?
            }
            NestStrategy::HashShuffle => {
                ds.group_fold_hash("group_fold_hash", pred, emit, init, fold)?
            }
            NestStrategy::SortShuffle => {
                ds.group_fold_sorted("group_fold_sorted", pred, emit, init, fold)?
            }
        };
        self.check_errors()?;
        let head_rx = finish_head.expect("aggregate shape has a head");
        let finish = {
            let (ctx, errors) = (Arc::clone(&eval_ctx), Arc::clone(&errors));
            move |(k, accs): (Value, GroupAcc), out: &mut Vec<Value>| {
                let env = finish_env(k, accs);
                for rx in &finish_preds {
                    match rx.eval_env(&env, &ctx) {
                        Ok(v) => {
                            if !truthy(&v) {
                                return;
                            }
                        }
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            return;
                        }
                    }
                }
                match head_rx.eval_env(&env, &ctx) {
                    Ok(v) => out.push(v),
                    Err(e) => errors.lock().push(e.to_string()),
                }
            }
        };
        let outputs: Vec<Value> = grouped
            .filter_transform("group_finish", |_| true, finish)?
            .collect();
        self.check_errors()?;
        self.book_fold_phase(pred_similarity, start);
        Ok(outputs)
    }

    /// Phase attribution for a fold sweep: as in the materialized path, a
    /// fused similarity predicate's cost books under the similarity phase
    /// even though its pass merged into the grouping sweep.
    fn book_fold_phase(&mut self, pred_similarity: bool, start: Instant) {
        if pred_similarity {
            self.timings.similarity += start.elapsed();
        } else {
            self.timings.grouping += start.elapsed();
        }
    }

    fn check_errors(&self) -> ExecResult<()> {
        let mut errs = self.errors.lock();
        if let Some(first) = errs.first() {
            let e = ExecError::Value(first.clone());
            errs.clear();
            return Err(e);
        }
        Ok(())
    }

    fn run(&mut self, plan: &Arc<Alg>) -> ExecResult<Dataset<RowEnv>> {
        let key = Arc::as_ptr(plan) as usize;
        let memoize = self.profile.share_plans && self.shared_nodes.contains(&key);
        if memoize {
            if let Some(cached) = self.cache.get(&key) {
                let cached = cached.clone();
                if self.profiling {
                    // A reuse of a memoized DAG node: a zero-cost leaf in
                    // the tree (its compute was profiled at the first
                    // consumer, flagged `shared`).
                    let (op, detail) = plan_label(plan);
                    let rows = cached.count() as u64;
                    let lo = self.ctx.metrics().stage_count();
                    let dlo = self.decisions.len();
                    self.prof_children
                        .last_mut()
                        .expect("profiling root collector")
                        .push(ProfileNode {
                            op,
                            detail,
                            rows_in: rows,
                            rows_out: rows,
                            flags: vec!["cached".to_string()],
                            stage_range: (lo, lo),
                            decision_range: (dlo, dlo),
                            ..ProfileNode::default()
                        });
                }
                return Ok(cached);
            }
        }
        if !self.profiling {
            let result = self.run_uncached(plan)?;
            if memoize {
                self.cache.insert(key, result.clone());
            }
            return Ok(result);
        }
        let frame = self.begin_node();
        match self.run_uncached(plan) {
            Ok(result) => {
                let (op, detail) = plan_label(plan);
                let mut flags = Vec::new();
                if memoize {
                    flags.push("shared".to_string());
                }
                if matches!(&**plan, Alg::Nest { .. }) {
                    flags.push("materialize-groups".to_string());
                }
                self.end_node(frame, op, detail, result.count() as u64, flags);
                if memoize {
                    self.cache.insert(key, result.clone());
                }
                Ok(result)
            }
            Err(e) => {
                self.abort_node();
                Err(e)
            }
        }
    }

    fn run_uncached(&mut self, plan: &Arc<Alg>) -> ExecResult<Dataset<RowEnv>> {
        match &**plan {
            Alg::Scan { table, var } => {
                let start = Instant::now();
                let stored = self
                    .tables
                    .get(table)
                    .ok_or_else(|| ExecError::Other(format!("unknown table `{table}`")))?;
                // Batches scan in arrival order: appended partitions simply
                // extend the row stream, history never moves.
                let mut envs: Vec<RowEnv> = Vec::with_capacity(stored.len());
                for batch in stored.batches() {
                    envs.extend(batch.iter().map(|r| vec![(var.clone(), r.clone())]));
                }
                let ds = Dataset::from_vec(&self.ctx, envs);
                self.timings.scan += start.elapsed();
                Ok(ds)
            }
            Alg::Select { input, pred } => {
                // Collapse the fusible chain *below* this node into this
                // node's pass: n stacked Selects (e.g. DEDUP's similarity +
                // rowid predicates) run as one partition sweep instead of n.
                let (mut preds, source) = self.peel_selects(input);
                preds.push(pred); // this node's predicate runs last
                let chained = preds.len() - 1;
                let scope = env_layout(source);
                let similarity = preds.iter().any(|p| expr_has_similarity(p));
                let pred_rxs = self.compile_preds(&preds, &scope);
                // Columnar fast path: a compiled predicate directly over a
                // (non-shared) scan can skip row materialization entirely —
                // the stored table columnarizes into typed batches and the
                // predicate re-lowers into a whole-column kernel sweep.
                let col_start = Instant::now();
                if let Some(out) = self.try_columnar_select(source, &pred_rxs)? {
                    self.fused_selects += chained;
                    self.timings.other += col_start.elapsed();
                    return Ok(out);
                }
                let ds = self.run(source)?;
                let start = Instant::now();
                self.fused_selects += chained;
                let eval_ctx = Arc::clone(&self.eval_ctx);
                let errors = Arc::clone(&self.errors);
                let out = ds.filter_partitions(move |part| {
                    part.retain(|env| passes(&pred_rxs, env, &eval_ctx, &errors));
                })?;
                self.check_errors()?;
                if similarity {
                    self.timings.similarity += start.elapsed();
                } else {
                    self.timings.other += start.elapsed();
                }
                Ok(out)
            }
            Alg::Unnest { input, path, var } => {
                let (preds, source) = self.peel_selects(input);
                let nfused = preds.len();
                let scope = env_layout(source);
                let pred_rxs = self.compile_preds(&preds, &scope);
                let (ds, pred_rxs) = self.run_filtered(source, pred_rxs)?;
                let start = Instant::now();
                // Fan-out charges the work budget by its input size before
                // expanding: every source row yields at least one candidate,
                // so a hopeless pair enumeration (a DC/DEDUP block gone
                // quadratic) fails fast instead of materializing pairs the
                // budget can never cover.
                self.ctx.consume_budget("flat_map", ds.count() as u64)?;
                let path_rx = self.row_expr(path, &scope);
                self.fused_selects += nfused;
                let eval_ctx = Arc::clone(&self.eval_ctx);
                let errors = Arc::clone(&self.errors);
                let var_cl = var.clone();
                let label = if pred_rxs.is_some() {
                    "fused_filter_flat_map"
                } else {
                    "flat_map"
                };
                let (pred_ctx, pred_errs) = (Arc::clone(&eval_ctx), Arc::clone(&errors));
                let out = ds.filter_transform(
                    label,
                    move |env: &RowEnv| passes(&pred_rxs, env, &pred_ctx, &pred_errs),
                    move |env, out: &mut Vec<RowEnv>| match path_rx.eval_env(&env, &eval_ctx) {
                        Ok(Value::List(items)) => out.extend(items.iter().map(|item| {
                            let mut e = env.clone();
                            e.push((var_cl.clone(), item.clone()));
                            e
                        })),
                        Ok(Value::Null) => {}
                        Ok(other) => {
                            errors
                                .lock()
                                .push(format!("unnest over non-list `{other}`"));
                        }
                        Err(e) => {
                            errors.lock().push(e.to_string());
                        }
                    },
                )?;
                self.check_errors()?;
                self.timings.similarity += start.elapsed();
                Ok(out)
            }
            Alg::Nest {
                input,
                key,
                item,
                group_var,
                ..
            } => {
                let (preds, source) = self.peel_selects(input);
                let nfused = preds.len();
                let similarity = preds.iter().any(|p| expr_has_similarity(p));
                let scope = env_layout(source);
                let pred_rxs = self.compile_preds(&preds, &scope);
                let (ds, pred_rxs) = self.run_filtered(source, pred_rxs)?;
                self.fused_selects += nfused;
                self.exec_nest(ds, key, item, group_var, &scope, pred_rxs, similarity)
            }
            Alg::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let (lpreds, lsource) = self.peel_selects(left);
                let (rpreds, rsource) = self.peel_selects(right);
                let nfused = lpreds.len() + rpreds.len();
                let similarity = lpreds.iter().chain(&rpreds).any(|p| expr_has_similarity(p));
                let lpred_rxs = self.compile_preds(&lpreds, &env_layout(lsource));
                let rpred_rxs = self.compile_preds(&rpreds, &env_layout(rsource));
                let (lds, lpred_rxs) = self.run_filtered(lsource, lpred_rxs)?;
                let (rds, rpred_rxs) = self.run_filtered(rsource, rpred_rxs)?;
                let start = Instant::now();
                let lkey_rx = self.row_expr(left_key, &env_layout(lsource));
                let rkey_rx = self.row_expr(right_key, &env_layout(rsource));
                self.fused_selects += nfused;
                let keyed =
                    |ds: Dataset<RowEnv>, key_rx: Arc<RowExpr>, pred_rxs: Option<Arc<RowExpr>>| {
                        let eval_ctx = Arc::clone(&self.eval_ctx);
                        let errors = Arc::clone(&self.errors);
                        let (pred_ctx, pred_errs) = (Arc::clone(&eval_ctx), Arc::clone(&errors));
                        let label = if pred_rxs.is_none() {
                            "map_partitions"
                        } else {
                            "fused_filter_map"
                        };
                        ds.filter_transform(
                            label,
                            move |env: &RowEnv| passes(&pred_rxs, env, &pred_ctx, &pred_errs),
                            move |env, out: &mut Vec<(Value, RowEnv)>| {
                                let k = match key_rx.eval_env(&env, &eval_ctx) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        errors.lock().push(e.to_string());
                                        Value::Null
                                    }
                                };
                                out.push((k, env));
                            },
                        )
                    };
                let lk = keyed(lds, lkey_rx, lpred_rxs)?;
                let rk = keyed(rds, rkey_rx, rpred_rxs)?;
                self.check_errors()?;
                // Phase split: the keying sweeps carry any fused similarity
                // predicate's cost; the hash join itself is grouping.
                if similarity {
                    self.timings.similarity += start.elapsed();
                } else {
                    self.timings.grouping += start.elapsed();
                }
                let start = Instant::now();
                let joined = lk.join_hash(rk)?;
                let out = joined.map(|(_, mut lenv, renv)| {
                    lenv.extend(renv);
                    lenv
                })?;
                self.timings.grouping += start.elapsed();
                Ok(out)
            }
            Alg::ThetaJoin {
                left,
                right,
                pred,
                hint,
            } => {
                // Theta sides are *not* fused into the join: the pruning
                // strategies probe each side's materialized key domain
                // before any pair is formed, so the sides must exist as
                // datasets. A Select chain on a side still collapses to a
                // single filter pass via the `Select` arm below.
                let lds = self.run(left)?;
                let rds = self.run(right)?;
                let start = Instant::now();
                let scope_l = env_layout(left);
                let scope_r = env_layout(right);
                let out = self.exec_theta(lds, rds, pred, hint, &scope_l, &scope_r)?;
                self.timings.similarity += start.elapsed();
                Ok(out)
            }
            Alg::Reduce { .. } => Err(ExecError::Other(
                "nested Reduce must be consumed via run_reduce".to_string(),
            )),
        }
    }

    /// Column statistics for a key expression, resolved through the plans'
    /// scan bindings.
    fn key_column_stats(&self, key: &CalcExpr) -> Option<&cleanm_stats::ColumnStats> {
        // For composite keys, use the first resolvable column (skew and
        // distinct-count reads on composites go through
        // `cardinality::group_count`, which sees every component).
        let cols = cardinality::columns_in(key);
        cols.iter()
            .find_map(|(var, field)| self.stats.get(self.scan_vars.get(var)?)?.column(field))
    }

    /// Cost-based Nest strategy: group cardinality and skew decide how the
    /// grouping shuffles (§6 "handling data skew", made data-dependent).
    fn choose_nest(&self, key: &CalcExpr, input_rows: f64) -> (NestStrategy, String) {
        let Some(col) = self.key_column_stats(key) else {
            return (
                self.profile.nest,
                "no column statistics; profile default".to_string(),
            );
        };
        let (distinct, _) = cardinality::group_count(key, input_rows, &self.scan_vars, &self.stats);
        let avg_group = input_rows / distinct.max(1.0);
        if avg_group < LOCAL_AGG_MIN_GROUP_SIZE {
            // Nearly-unique composite keys: even if one component is skewed,
            // the composite groups are singletons, so local aggregation buys
            // nothing — hashing every record costs the same shuffle without
            // the combine pass.
            (
                NestStrategy::HashShuffle,
                format!(
                    "≈{distinct:.0} groups over {input_rows:.0} rows: keys nearly unique, combine futile"
                ),
            )
        } else if col.top_share() > SKEW_TOP_SHARE {
            // A heavy key would land whole on one range partition: combine
            // it where it sits instead of shipping it to a single worker.
            (
                NestStrategy::LocalAggregate,
                format!(
                    "skewed: top key ≤{:.0}% of rows (> {:.0}% threshold)",
                    col.top_share() * 100.0,
                    SKEW_TOP_SHARE * 100.0
                ),
            )
        } else {
            // Groups collapse meaningfully: map-side combine cuts shuffle
            // volume by the group size factor.
            (
                NestStrategy::LocalAggregate,
                format!("≈{distinct:.0} groups, avg size {avg_group:.1}: map-side combine pays"),
            )
        }
    }

    /// Cost-based theta strategy from histograms (§6 "handling theta joins",
    /// fed by the statistics catalog instead of blind sampling). Compares
    /// the two strategies whose cost the catalog can actually predict:
    ///
    /// * cartesian: `|L|·|R|` comparisons, no setup;
    /// * M-Bucket: `frac·|L|·|R|` comparisons (the histogram pair-pruning
    ///   estimate) plus a bucketing pass over both inputs.
    ///
    /// Min-max block pruning is *not* selectable from column statistics:
    /// its effectiveness depends on whether the physical partitioning
    /// aligns with the key, which histograms cannot see — and a wrong pick
    /// degenerates to the full product. It remains reachable as the
    /// profile-default fallback when no histograms exist.
    fn choose_theta(
        &self,
        hint: &crate::algebra::plan::ThetaHint,
        left_rows: f64,
        right_rows: f64,
    ) -> (ThetaStrategy, Option<Vec<f64>>, String) {
        let full_work = left_rows * right_rows;
        if full_work <= SMALL_CARTESIAN_WORK {
            return (
                ThetaStrategy::CartesianFilter,
                None,
                format!("tiny input ({full_work:.0} pairs): cartesian overhead-free"),
            );
        }
        let lh = self
            .key_column_stats(&hint.left_key)
            .and_then(|c| c.pruning_histogram());
        let rh = self
            .key_column_stats(&hint.right_key)
            .and_then(|c| c.pruning_histogram());
        match (lh, rh) {
            // Histograms over different key domains (one numeric, one
            // prefix-key) cannot be compared — treated as no histograms.
            (Some((lh, l_text)), Some((rh, r_text))) if l_text == r_text => {
                // String histograms hold prefix keys: widen ranges by the
                // key resolution so prefix collisions cannot prune a cell a
                // real string pair could land in.
                let frac = lh.fraction_pairs(
                    &rh,
                    hint.kind
                        .compat_fn(crate::algebra::plan::theta_widen(l_text)),
                );
                // Cartesian wins when the comparisons M-Bucket would prune
                // are worth less than its bucketing/shuffle setup (a few
                // passes over both inputs).
                let pruned_work = (1.0 - frac) * full_work;
                let mbucket_overhead = MBUCKET_SETUP_FACTOR * (left_rows + right_rows);
                if pruned_work <= mbucket_overhead {
                    return (
                        ThetaStrategy::CartesianFilter,
                        None,
                        format!(
                            "histograms: only {:.0}% of matrix prunable — less than \
                             M-Bucket setup (~{mbucket_overhead:.0} units); cartesian",
                            (1.0 - frac) * 100.0
                        ),
                    );
                }
                // Feed the M-Bucket matrix the real equi-depth boundaries of
                // both sides instead of letting it re-sample blindly.
                let mut bounds = lh.boundaries();
                bounds.extend(rh.boundaries());
                (
                    ThetaStrategy::MBucket,
                    Some(bounds),
                    format!(
                        "histograms: {:.0}% of matrix survives pruning; M-Bucket on real quantiles",
                        frac * 100.0
                    ),
                )
            }
            _ => (
                self.profile.theta,
                None,
                "no histograms for join keys; profile default".to_string(),
            ),
        }
    }

    fn record_decision(
        &mut self,
        operator: &'static str,
        node: String,
        strategy: String,
        reason: String,
    ) {
        self.decisions.push(PlanDecision {
            operator,
            node,
            strategy,
            reason,
        });
    }

    /// The Nest translation of Table 2, by profile strategy. A non-empty
    /// `pred_rxs` is a fused upstream `Select` chain: the pair-emission
    /// sweep filters and groups in the same pass, so the filtered
    /// intermediate collection is never materialized.
    #[allow(clippy::too_many_arguments)]
    fn exec_nest(
        &mut self,
        ds: Dataset<RowEnv>,
        key: &CalcExpr,
        item: &CalcExpr,
        group_var: &str,
        scope: &[String],
        pred_rxs: Option<Arc<RowExpr>>,
        pred_similarity: bool,
    ) -> ExecResult<Dataset<RowEnv>> {
        let start = Instant::now();
        let key_rx = self.row_expr(key, scope);
        let item_rx = self.row_expr(item, scope);
        let eval_ctx = Arc::clone(&self.eval_ctx);
        let errors = Arc::clone(&self.errors);
        let label = if pred_rxs.is_none() {
            "flat_map"
        } else {
            "fused_filter_flat_map"
        };
        let (pred_ctx, pred_errs) = (Arc::clone(&eval_ctx), Arc::clone(&errors));
        // Emit (block key, item) pairs; a list key multi-assigns (token
        // filtering / k-means with delta).
        let pairs: Dataset<(Value, Value)> = ds.filter_transform(
            label,
            move |env: &RowEnv| passes(&pred_rxs, env, &pred_ctx, &pred_errs),
            move |env, out: &mut Vec<(Value, Value)>| {
                let k = match key_rx.eval_env(&env, &eval_ctx) {
                    Ok(v) => v,
                    Err(e) => {
                        errors.lock().push(e.to_string());
                        return;
                    }
                };
                let it = match item_rx.eval_env(&env, &eval_ctx) {
                    Ok(v) => v,
                    Err(e) => {
                        errors.lock().push(e.to_string());
                        return;
                    }
                };
                match k {
                    Value::List(keys) => out.extend(keys.iter().map(|kk| (kk.clone(), it.clone()))),
                    scalar => out.push((scalar, it)),
                }
            },
        )?;
        self.check_errors()?;
        // Phase split: the pair-emission sweep carries any fused similarity
        // predicate's cost; the shuffle/aggregation below is grouping.
        if pred_similarity {
            self.timings.similarity += start.elapsed();
        } else {
            self.timings.grouping += start.elapsed();
        }
        let start = Instant::now();
        let strategy = if self.profile.adaptive {
            let (strategy, reason) = self.choose_nest(key, pairs.count() as f64);
            self.record_decision("nest", key.to_string(), format!("{strategy:?}"), reason);
            strategy
        } else {
            self.record_decision(
                "nest",
                key.to_string(),
                format!("{:?}", self.profile.nest),
                "fixed profile".to_string(),
            );
            self.profile.nest
        };
        let grouped: Dataset<(Value, Vec<Value>)> = match strategy {
            NestStrategy::LocalAggregate => pairs.group_by_key_local()?,
            NestStrategy::SortShuffle => pairs.group_by_key_sorted()?,
            NestStrategy::HashShuffle => pairs.group_by_key_hash()?,
        };
        let gv = group_var.to_string();
        // `mapPartitions`-style finishing: wrap each group as {key, partition}.
        let out = grouped.map(move |(k, members)| {
            vec![(
                gv.clone(),
                Value::record([("key", k), ("partition", Value::list(members))]),
            )]
        })?;
        self.timings.grouping += start.elapsed();
        Ok(out)
    }

    /// The theta-join translation of §6, by profile strategy.
    fn exec_theta(
        &mut self,
        lds: Dataset<RowEnv>,
        rds: Dataset<RowEnv>,
        pred: &CalcExpr,
        hint: &crate::algebra::plan::ThetaHint,
        scope_l: &[String],
        scope_r: &[String],
    ) -> ExecResult<Dataset<RowEnv>> {
        let (strategy, bounds) = if self.profile.adaptive {
            let (strategy, bounds, reason) =
                self.choose_theta(hint, lds.count() as f64, rds.count() as f64);
            self.record_decision("theta", pred.to_string(), format!("{strategy:?}"), reason);
            (strategy, bounds)
        } else {
            self.record_decision(
                "theta",
                pred.to_string(),
                format!("{:?}", self.profile.theta),
                "fixed profile".to_string(),
            );
            (self.profile.theta, None)
        };
        // The predicate is compiled against the concatenated layout and
        // evaluated pair-wise — no merged environment is materialized per
        // candidate pair (previously two clones per comparison).
        let mut scope_both = scope_l.to_vec();
        scope_both.extend(scope_r.iter().cloned());
        let pred_rx = self.row_expr(pred, &scope_both);
        let lkey_rx = self.row_expr(&hint.left_key, scope_l);
        let rkey_rx = self.row_expr(&hint.right_key, scope_r);
        let eval_ctx = Arc::clone(&self.eval_ctx);

        // The cartesian path needs no key domain and no key values: run it
        // directly (it prunes nothing, so it is always correct).
        if strategy == ThetaStrategy::CartesianFilter {
            let predicate = move |l: &RowEnv, r: &RowEnv| {
                pred_rx
                    .eval_pair(l, r, &eval_ctx)
                    .map(|v| truthy(&v))
                    .unwrap_or(false)
            };
            let joined = theta::cartesian_filter(lds, rds, predicate)?;
            return joined.map(|(mut l, r)| {
                l.extend(r);
                l
            });
        }

        // Pruning strategies need each row's mapped join key *and* the key
        // domain classification. One keys-plus-flags probe per side
        // computes both together: text keys map through the
        // order-preserving prefix key (`cleanm_stats::string_key`), numeric
        // keys widen to f64, and the text/numeric flags fall out of the
        // same evaluation — previously a separate classification pass
        // evaluated every join key once and the pruning join evaluated it
        // all over again. The probe sees every key value (a sampled sniff
        // could miss strings deep in a partition and silently disable the
        // collision widening), and the evaluated keys are zipped back onto
        // the rows so the join never re-evaluates them.
        let (l_keys, l_text, l_num) = keys_and_flags(&lds, &lkey_rx, &eval_ctx)?;
        let (r_keys, r_text, r_num) = keys_and_flags(&rds, &rkey_rx, &eval_ctx)?;
        let mixed = (l_text && l_num) || (r_text && r_num) || (l_text != r_text);
        if mixed {
            // Mixed numeric/text keys have no common pruning domain — fall
            // back to the always-correct cartesian path.
            self.record_decision(
                "theta",
                pred.to_string(),
                format!("{:?}", ThetaStrategy::CartesianFilter),
                "mixed numeric/text join keys: no common pruning domain".to_string(),
            );
            let predicate = move |l: &RowEnv, r: &RowEnv| {
                pred_rx
                    .eval_pair(l, r, &eval_ctx)
                    .map(|v| truthy(&v))
                    .unwrap_or(false)
            };
            let joined = theta::cartesian_filter(lds, rds, predicate)?;
            return joined.map(|(mut l, r)| {
                l.extend(r);
                l
            });
        }

        let compat = hint.kind.compat_fn(theta_widen(l_text || r_text));
        let lk = lds.zip_parts(l_keys);
        let rk = rds.zip_parts(r_keys);
        let predicate = move |l: &(f64, RowEnv), r: &(f64, RowEnv)| {
            pred_rx
                .eval_pair(&l.1, &r.1, &eval_ctx)
                .map(|v| truthy(&v))
                .unwrap_or(false)
        };
        let key_of = |t: &(f64, RowEnv)| t.0;

        let joined: Dataset<((f64, RowEnv), (f64, RowEnv))> = match (strategy, bounds) {
            (ThetaStrategy::MinMaxBlocks, _) => {
                theta::minmax_block_join(lk, rk, key_of, key_of, compat, predicate)?
            }
            (ThetaStrategy::MBucket, Some(bounds)) => {
                theta::mbucket_join_with_bounds(lk, rk, key_of, key_of, compat, predicate, bounds)?
            }
            (ThetaStrategy::MBucket, None) => {
                theta::mbucket_join(lk, rk, key_of, key_of, compat, predicate, None)?
            }
            (ThetaStrategy::CartesianFilter, _) => unreachable!("handled above"),
        };
        joined.map(|((_, mut l), (_, r))| {
            l.extend(r);
            l
        })
    }
}

/// [`merge_values`] with the dominant numeric cases of the fused fold loop
/// inlined — a filtered row's `Null` is the identity and two numbers add
/// without the generic monoid dispatch. Semantics are identical;
/// `merge_values` remains the fallback (and the reference) for every other
/// case.
pub(crate) fn merge_scalar(m: &MonoidKind, acc: Value, v: Value) -> cleanm_values::Result<Value> {
    if matches!(m, MonoidKind::Sum) {
        match (&acc, &v) {
            (Value::Int(a), Value::Int(b)) => return Ok(Value::Int(a.wrapping_add(*b))),
            (Value::Float(a), Value::Float(b)) => return Ok(Value::Float(a + b)),
            (Value::Int(a), Value::Float(b)) => return Ok(Value::Float(*a as f64 + b)),
            (Value::Float(a), Value::Int(b)) => return Ok(Value::Float(a + *b as f64)),
            (_, Value::Null) => return Ok(acc),
            _ => {}
        }
    } else if v.is_null() && matches!(m, MonoidKind::Prod | MonoidKind::Min | MonoidKind::Max) {
        // merge_values keeps the non-null side for these monoids.
        return Ok(acc);
    }
    merge_values(m, acc, v)
}

/// Operator label and defining-expression detail of a plan node, as shown
/// in profile trees. `Select` details render the node's own predicate; a
/// collapsed chain's extra predicates show up in the node's fused count.
fn plan_label(plan: &Alg) -> (String, String) {
    match plan {
        Alg::Scan { table, var } => ("Scan".to_string(), clip(format!("{table} as {var}"))),
        Alg::Select { pred, .. } => ("Select".to_string(), clip(pred)),
        Alg::Unnest { path, var, .. } => ("Unnest".to_string(), clip(format!("{path} as {var}"))),
        Alg::Nest { key, .. } => ("Nest".to_string(), clip(format!("by {key}"))),
        Alg::Join {
            left_key,
            right_key,
            ..
        } => (
            "Join".to_string(),
            clip(format!("{left_key} = {right_key}")),
        ),
        Alg::ThetaJoin { pred, .. } => ("ThetaJoin".to_string(), clip(pred)),
        Alg::Reduce { monoid, head, .. } => (format!("Reduce[{monoid:?}]"), clip(head)),
    }
}

/// Conjoin a peeled Select chain left-to-right in evaluation order
/// (`(p1 and p2) and p3`): `and`'s short-circuit preserves exactly the
/// stacked-Select semantics (truthiness per stage, inner errors surface,
/// outer predicates unreached once an inner one rejects). `None` when the
/// chain is empty.
fn conjoin(preds: &[&CalcExpr]) -> Option<CalcExpr> {
    let (first, rest) = preds.split_first()?;
    Some(rest.iter().fold((*first).clone(), |acc, p| {
        CalcExpr::bin(crate::calculus::BinOp::And, acc, (*p).clone())
    }))
}

/// Evaluate a fused predicate chain (conjoined into one program by
/// [`Executor::compile_preds`], `None` = no filter) over one row
/// environment. An evaluation error is recorded and drops the row, exactly
/// as a standalone `Select` pass does (the recorded error fails the query
/// once the pass completes), and the conjunction's short-circuit preserves
/// chain order — an error a downstream filter would never have reached
/// stays unreached.
fn passes(
    pred_rx: &Option<Arc<RowExpr>>,
    env: &RowEnv,
    eval_ctx: &EvalCtx,
    errors: &Mutex<Vec<String>>,
) -> bool {
    match pred_rx {
        None => true,
        Some(rx) => match rx.eval_env(env, eval_ctx) {
            Ok(v) => truthy(&v),
            Err(e) => {
                errors.lock().push(e.to_string());
                false
            }
        },
    }
}

/// One probe pass over a theta side: every row's mapped f64 join key (in
/// partition structure, ready for [`Dataset::zip_parts`]) plus whether any
/// key evaluated to text / to a number.
fn keys_and_flags(
    ds: &Dataset<RowEnv>,
    rx: &Arc<RowExpr>,
    eval_ctx: &Arc<EvalCtx>,
) -> ExecResult<(Vec<Vec<f64>>, bool, bool)> {
    let parts = ds.probe_partitions(|part| {
        let mut keys = Vec::with_capacity(part.len());
        let (mut text, mut numeric) = (false, false);
        for env in part {
            let key = match rx.eval_env(env, eval_ctx) {
                Ok(Value::Str(s)) => {
                    text = true;
                    cleanm_stats::string_key(&s)
                }
                Ok(v) => {
                    if matches!(v, Value::Int(_) | Value::Float(_)) {
                        numeric = true;
                    }
                    v.as_float().unwrap_or(f64::NAN)
                }
                Err(_) => f64::NAN,
            };
            keys.push(key);
        }
        (keys, text, numeric)
    })?;
    let mut key_parts = Vec::with_capacity(parts.len());
    let (mut text, mut numeric) = (false, false);
    for (keys, t, n) in parts {
        key_parts.push(keys);
        text |= t;
        numeric |= n;
    }
    Ok((key_parts, text, numeric))
}

/// Does the expression contain a similarity call? (Phase attribution.)
fn expr_has_similarity(e: &CalcExpr) -> bool {
    e.any_node(&mut |n| {
        matches!(
            n,
            CalcExpr::Call(Func::Similar(..) | Func::Similarity(..), _)
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::lower_op;
    use crate::calculus::desugar::ROWID_FIELD;
    use crate::calculus::{desugar_query, BinOp};
    use crate::lang::parse_query;

    fn row(id: i64, addr: &str, nation: i64, name: &str) -> Value {
        Value::record([
            (ROWID_FIELD, Value::Int(id)),
            ("address", Value::str(addr)),
            ("nationkey", Value::Int(nation)),
            ("name", Value::str(name)),
        ])
    }

    fn catalog() -> HashMap<String, StoredTable> {
        let mut t = HashMap::new();
        t.insert(
            "customer".to_string(),
            StoredTable::from_rows(vec![
                row(0, "a st", 1, "anderson"),
                row(1, "a st", 2, "andersen"),
                row(2, "b st", 3, "zhang"),
                row(3, "b st", 3, "zhong"),
                row(4, "c st", 4, "miller"),
            ]),
        );
        t
    }

    fn exec_sql(sql: &str, profile: EngineProfile) -> Vec<Value> {
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plan = lower_op(&dq.ops[0].comp).unwrap();
        let tables = catalog();
        let mut eval_ctx = EvalCtx::new();
        eval_ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let ctx = ExecContext::new(2, 4);
        let mut executor = Executor::new(ctx, profile, &tables, Arc::new(eval_ctx));
        executor.run_reduce(&plan).unwrap()
    }

    #[test]
    fn fd_executes_identically_under_all_profiles() {
        let sql = "SELECT * FROM customer c FD(c.address, c.nationkey)";
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
        ] {
            let name = profile.name.clone();
            let out = exec_sql(sql, profile);
            assert_eq!(out.len(), 1, "{name}: only `a st` violates");
            assert_eq!(out[0].field("key").unwrap(), &Value::str("a st"));
        }
    }

    #[test]
    fn dedup_finds_similar_pair_distributed() {
        let sql = "SELECT * FROM customer c DEDUP(token_filtering(2), LD, 0.7, c.name)";
        let out = exec_sql(sql, EngineProfile::clean_db());
        // anderson/andersen are similar; pairs may appear once per shared
        // block, so dedup on the pair identity.
        let mut pair_ids: Vec<(i64, i64)> = out
            .iter()
            .map(|p| {
                (
                    p.field("left")
                        .unwrap()
                        .field(ROWID_FIELD)
                        .unwrap()
                        .as_int()
                        .unwrap(),
                    p.field("right")
                        .unwrap()
                        .field(ROWID_FIELD)
                        .unwrap()
                        .as_int()
                        .unwrap(),
                )
            })
            .collect();
        pair_ids.sort_unstable();
        pair_ids.dedup();
        assert!(pair_ids.contains(&(0, 1)), "{pair_ids:?}");
        assert!(!pair_ids.contains(&(2, 4)));
    }

    #[test]
    fn nest_strategies_agree_on_results() {
        let sql = "SELECT * FROM customer c DEDUP(exact, LD, 0.7, c.address, c.name)";
        let mut results: Vec<Vec<Value>> = Vec::new();
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
        ] {
            let mut out = exec_sql(sql, profile);
            out.sort();
            results.push(out);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn shared_plans_execute_nest_once() {
        // Two ops sharing a grouping: with share_plans the Nest's shuffle
        // runs once (visible in stage reports).
        let q = parse_query(
            "SELECT * FROM customer c \
             FD(c.address, c.nationkey) \
             DEDUP(exact, LD, 0.7, c.address, c.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plans: Vec<Arc<Alg>> = dq
            .ops
            .iter()
            .map(|op| lower_op(&op.comp).unwrap())
            .collect();
        let (shared, stats) = crate::algebra::rewrite_shared(&plans);
        assert_eq!(stats.shared_nests, 1);

        let tables = catalog();
        let count_group_stages = |profile: EngineProfile, plans: &[Arc<Alg>]| {
            let ctx = ExecContext::new(2, 4);
            let mut eval_ctx = EvalCtx::new();
            for op in &dq.ops {
                eval_ctx.prepare_blockers(&op.comp, &[]);
            }
            let mut ex = Executor::new(ctx.clone(), profile, &tables, Arc::new(eval_ctx));
            ex.register_plans(plans);
            for p in plans {
                ex.run_reduce(p).unwrap();
            }
            ctx.metrics()
                .snapshot()
                .stages
                .iter()
                .filter(|s| s.operator.contains("aggregate") || s.operator.contains("group"))
                .count()
        };
        let shared_runs = count_group_stages(EngineProfile::clean_db(), &shared);
        let unshared_runs = count_group_stages(EngineProfile::spark_sql_like(), &plans);
        assert_eq!(shared_runs, 1, "CleanDB: one aggregation for both ops");
        assert_eq!(unshared_runs, 2, "SparkSQL-like: one per op");
    }

    #[test]
    fn theta_join_via_plan() {
        // Manual ThetaJoin plan: pairs (l, r) with l.nationkey < r.nationkey.
        use crate::algebra::plan::{HintKind, ThetaHint};
        let scan_l = Arc::new(Alg::Scan {
            table: "customer".into(),
            var: "t1".into(),
        });
        let scan_r = Arc::new(Alg::Scan {
            table: "customer".into(),
            var: "t2".into(),
        });
        let pred = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("t1"), "nationkey"),
            CalcExpr::proj(CalcExpr::var("t2"), "nationkey"),
        );
        let plan = Arc::new(Alg::Reduce {
            input: Arc::new(Alg::ThetaJoin {
                left: scan_l,
                right: scan_r,
                pred: pred.clone(),
                hint: ThetaHint {
                    left_key: CalcExpr::proj(CalcExpr::var("t1"), "nationkey"),
                    right_key: CalcExpr::proj(CalcExpr::var("t2"), "nationkey"),
                    kind: HintKind::LeftLessThanRight,
                },
            }),
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![
                ("l", CalcExpr::proj(CalcExpr::var("t1"), ROWID_FIELD)),
                ("r", CalcExpr::proj(CalcExpr::var("t2"), ROWID_FIELD)),
            ]),
        });
        let tables = catalog();
        // nation keys: 1,2,3,3,4 -> pairs with l<r: (1,*4)=4? count manually:
        // 1<2,1<3,1<3,1<4; 2<3,2<3,2<4; 3<4,3<4 = 9
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
        ] {
            let ctx = ExecContext::new(2, 4);
            let mut ex = Executor::new(ctx, profile.clone(), &tables, Arc::new(EvalCtx::new()));
            let out = ex.run_reduce(&plan).unwrap();
            assert_eq!(out.len(), 9, "{}", profile.name);
        }
    }

    fn stats_for(tables: &HashMap<String, StoredTable>) -> StatsCatalog {
        let ctx = ExecContext::new(2, 4);
        tables
            .iter()
            .map(|(name, stored)| {
                (
                    name.clone(),
                    Arc::new(
                        cleanm_stats::collect_table_stats(
                            &ctx,
                            stored.merged_rows(),
                            cleanm_stats::StatsConfig::default(),
                        )
                        .unwrap(),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn adaptive_profile_records_stat_driven_decisions() {
        let sql = "SELECT * FROM customer c FD(c.address, c.nationkey)";
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plan = lower_op(&dq.ops[0].comp).unwrap();
        let tables = catalog();
        let mut eval_ctx = EvalCtx::new();
        eval_ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(ctx, EngineProfile::adaptive(), &tables, Arc::new(eval_ctx));
        ex.set_stats(stats_for(&tables));
        ex.register_plans(std::slice::from_ref(&plan));
        let out = ex.run_reduce(&plan).unwrap();
        assert_eq!(out.len(), 1, "same result as fixed profiles");
        let nest: Vec<_> = ex
            .decisions
            .iter()
            .filter(|d| d.operator == "nest")
            .collect();
        assert!(!nest.is_empty(), "nest decision must be recorded");
        assert_ne!(nest[0].reason, "fixed profile", "decision must cite stats");
    }

    #[test]
    fn adaptive_avoids_sort_shuffle_on_skewed_keys() {
        // 90% of rows share one address: top_share is high, so the planner
        // must not pick SortShuffle (the one-hot-worker pathology).
        let mut tables = HashMap::new();
        let rows: Vec<Value> = (0..1000)
            .map(|i| {
                row(
                    i,
                    if i % 10 == 0 { "rare st" } else { "main st" },
                    i % 25,
                    "name",
                )
            })
            .collect();
        tables.insert("customer".to_string(), StoredTable::from_rows(rows));
        let sql = "SELECT * FROM customer c FD(c.address, c.nationkey)";
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plan = lower_op(&dq.ops[0].comp).unwrap();
        let mut eval_ctx = EvalCtx::new();
        eval_ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(ctx, EngineProfile::adaptive(), &tables, Arc::new(eval_ctx));
        ex.set_stats(stats_for(&tables));
        ex.register_plans(std::slice::from_ref(&plan));
        ex.run_reduce(&plan).unwrap();
        let nest = ex
            .decisions
            .iter()
            .find(|d| d.operator == "nest")
            .expect("nest decision");
        assert_eq!(nest.strategy, "LocalAggregate", "{nest}");
        assert!(nest.reason.contains("skew"), "{nest}");
    }

    #[test]
    fn adaptive_theta_uses_histogram_bounds() {
        use crate::algebra::plan::{HintKind, ThetaHint};
        let tables = catalog();
        let pred = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("t1"), "nationkey"),
            CalcExpr::proj(CalcExpr::var("t2"), "nationkey"),
        );
        let plan = Arc::new(Alg::Reduce {
            input: Arc::new(Alg::ThetaJoin {
                left: Arc::new(Alg::Scan {
                    table: "customer".into(),
                    var: "t1".into(),
                }),
                right: Arc::new(Alg::Scan {
                    table: "customer".into(),
                    var: "t2".into(),
                }),
                pred: pred.clone(),
                hint: ThetaHint {
                    left_key: CalcExpr::proj(CalcExpr::var("t1"), "nationkey"),
                    right_key: CalcExpr::proj(CalcExpr::var("t2"), "nationkey"),
                    kind: HintKind::LeftLessThanRight,
                },
            }),
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![(
                "l",
                CalcExpr::proj(CalcExpr::var("t1"), crate::calculus::desugar::ROWID_FIELD),
            )]),
        });
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(
            ctx,
            EngineProfile::adaptive(),
            &tables,
            Arc::new(EvalCtx::new()),
        );
        ex.set_stats(stats_for(&tables));
        ex.register_plans(std::slice::from_ref(&plan));
        let out = ex.run_reduce(&plan).unwrap();
        assert_eq!(out.len(), 9, "same pairs as the fixed profiles");
        let theta = ex
            .decisions
            .iter()
            .find(|d| d.operator == "theta")
            .expect("theta decision");
        // 5 rows × 5 rows = 25 pairs: under the small-work threshold, so the
        // cost model must pick the overhead-free cartesian product.
        assert_eq!(theta.strategy, "CartesianFilter", "{theta}");
        assert!(theta.reason.contains("tiny input"), "{theta}");
    }

    #[test]
    fn adaptive_theta_cost_model_picks_by_prunable_work() {
        use crate::algebra::plan::{HintKind, ThetaHint};
        // 300×300 rows = 90k pairs: above the tiny-input threshold, so the
        // histogram cost model decides.
        let mut tables = HashMap::new();
        let rows: Vec<Value> = (0..300).map(|i| row(i, "a st", i % 100, "n")).collect();
        tables.insert("customer".to_string(), StoredTable::from_rows(rows));
        let stats = stats_for(&tables);
        let hint = |kind| ThetaHint {
            left_key: CalcExpr::proj(CalcExpr::var("t1"), "nationkey"),
            right_key: CalcExpr::proj(CalcExpr::var("t2"), "nationkey"),
            kind,
        };
        let executor_with = |tables| {
            let ctx = ExecContext::new(2, 4);
            let mut ex = Executor::new(
                ctx,
                EngineProfile::adaptive(),
                tables,
                Arc::new(EvalCtx::new()),
            );
            ex.set_stats(stats.clone());
            ex.scan_vars.insert("t1".into(), "customer".into());
            ex.scan_vars.insert("t2".into(), "customer".into());
            ex
        };
        let ex = executor_with(&tables);
        // HintKind::Any: nothing is prunable (frac = 1.0) — paying M-Bucket
        // setup buys zero saved comparisons, so cartesian wins.
        let (s, bounds, reason) = ex.choose_theta(&hint(HintKind::Any), 300.0, 300.0);
        assert_eq!(s, ThetaStrategy::CartesianFilter, "{reason}");
        assert!(bounds.is_none());
        assert!(reason.contains("prunable"), "{reason}");
        // LeftLessThanRight on a uniform key: ~half the matrix is prunable,
        // far more than the setup cost — M-Bucket with histogram bounds.
        let (s, bounds, reason) = ex.choose_theta(&hint(HintKind::LeftLessThanRight), 300.0, 300.0);
        assert_eq!(s, ThetaStrategy::MBucket, "{reason}");
        assert!(bounds.is_some());
    }

    #[test]
    fn adaptive_nest_prefers_hash_for_near_unique_composite_keys() {
        // Composite key (address, __rowid): address is heavily skewed but
        // __rowid is unique, so composite groups are singletons — the skew
        // signal must not force a futile map-side combine.
        let mut tables = HashMap::new();
        let rows: Vec<Value> = (0..1000).map(|i| row(i, "main st", 1, "n")).collect();
        tables.insert("customer".to_string(), StoredTable::from_rows(rows));
        let stats = stats_for(&tables);
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(
            ctx,
            EngineProfile::adaptive(),
            &tables,
            Arc::new(EvalCtx::new()),
        );
        ex.set_stats(stats);
        ex.scan_vars.insert("c".into(), "customer".into());
        let key = CalcExpr::record(vec![
            ("a", CalcExpr::proj(CalcExpr::var("c"), "address")),
            ("r", CalcExpr::proj(CalcExpr::var("c"), ROWID_FIELD)),
        ]);
        let (s, reason) = ex.choose_nest(&key, 1000.0);
        assert_eq!(s, NestStrategy::HashShuffle, "{reason}");
        assert!(reason.contains("nearly unique"), "{reason}");
    }

    #[test]
    fn adaptive_without_stats_falls_back_to_profile_defaults() {
        let sql = "SELECT * FROM customer c FD(c.address, c.nationkey)";
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plan = lower_op(&dq.ops[0].comp).unwrap();
        let tables = catalog();
        let mut eval_ctx = EvalCtx::new();
        eval_ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(ctx, EngineProfile::adaptive(), &tables, Arc::new(eval_ctx));
        ex.register_plans(std::slice::from_ref(&plan));
        let out = ex.run_reduce(&plan).unwrap();
        assert_eq!(out.len(), 1);
        let nest = ex.decisions.iter().find(|d| d.operator == "nest").unwrap();
        assert!(nest.reason.contains("no column statistics"), "{nest}");
    }

    #[test]
    fn hot_path_expressions_run_compiled() {
        // Every expression of the quickstart FD+DEDUP plan lowers to a
        // slot-resolved program — nothing silently falls back.
        let q = parse_query(
            "SELECT * FROM customer c \
             FD(c.address, c.nationkey) \
             DEDUP(token_filtering(2), LD, 0.7, c.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plans: Vec<Arc<Alg>> = dq
            .ops
            .iter()
            .map(|op| lower_op(&op.comp).unwrap())
            .collect();
        let tables = catalog();
        let mut eval_ctx = EvalCtx::new();
        for op in &dq.ops {
            eval_ctx.prepare_blockers(&op.comp, &[]);
        }
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(ctx, EngineProfile::clean_db(), &tables, Arc::new(eval_ctx));
        ex.register_plans(&plans);
        for p in &plans {
            ex.run_reduce(p).unwrap();
        }
        assert!(ex.compiled_exprs > 0, "compiled path must engage");
        assert_eq!(
            ex.interpreted_exprs, 0,
            "no interpreter fallback on the quickstart plans"
        );
    }

    #[test]
    fn select_chains_fuse_into_consumers() {
        // FD with a WHERE lowers to Reduce ← Select ← Nest ← Select ← Scan:
        // under a fusing profile both Selects run inside their consumers'
        // passes, and the result matches the operator-at-a-time baseline.
        let sql = "SELECT * FROM customer c WHERE c.nationkey > 0 FD(c.address, c.nationkey)";
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plan = lower_op(&dq.ops[0].comp).unwrap();
        let tables = catalog();
        let run_with = |profile: EngineProfile| {
            let mut eval_ctx = EvalCtx::new();
            eval_ctx.prepare_blockers(&dq.ops[0].comp, &[]);
            let ctx = ExecContext::new(2, 4);
            let mut ex = Executor::new(ctx, profile, &tables, Arc::new(eval_ctx));
            ex.register_plans(std::slice::from_ref(&plan));
            let mut out = ex.run_reduce(&plan).unwrap();
            out.sort();
            (out, ex.fused_selects)
        };
        let (fused_out, fused_count) = run_with(EngineProfile::clean_db());
        let (unfused_out, unfused_count) = run_with(EngineProfile::spark_sql_like());
        assert_eq!(fused_out, unfused_out, "fusion must not change results");
        assert_eq!(fused_count, 2, "both Selects fuse into Reduce and Nest");
        assert_eq!(unfused_count, 0, "operator-at-a-time profile fuses nothing");
    }

    #[test]
    fn fused_scalar_reduce_folds_on_workers() {
        // Select → Reduce(Sum) with fusion: one fused_filter_fold pass, no
        // per-row output materialization — and the same sum as unfused.
        let scan = Arc::new(Alg::Scan {
            table: "customer".into(),
            var: "c".into(),
        });
        let select = Arc::new(Alg::Select {
            input: scan,
            pred: CalcExpr::bin(
                BinOp::Gt,
                CalcExpr::proj(CalcExpr::var("c"), "nationkey"),
                CalcExpr::int(1),
            ),
        });
        let plan = Arc::new(Alg::Reduce {
            input: select,
            monoid: MonoidKind::Sum,
            head: CalcExpr::proj(CalcExpr::var("c"), "nationkey"),
        });
        let tables = catalog();
        let mut results = Vec::new();
        for profile in [EngineProfile::clean_db(), EngineProfile::spark_sql_like()] {
            let ctx = ExecContext::new(2, 4);
            let mut ex = Executor::new(ctx.clone(), profile, &tables, Arc::new(EvalCtx::new()));
            let out = ex.run_reduce(&plan).unwrap();
            if ex.fused_selects > 0 {
                let stages = ctx.metrics().snapshot().stages;
                assert!(
                    stages.iter().any(|s| s.operator == "fused_filter_fold"),
                    "{stages:?}"
                );
            }
            results.push(out);
        }
        // nationkeys 1,2,3,3,4 → keys > 1 sum to 12.
        assert_eq!(results[0], vec![Value::Int(12)]);
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn string_keyed_theta_join_prunes_soundly() {
        // Theta join on a *string* key: prefix-key pruning must not drop
        // pairs, whichever strategy runs.
        use crate::algebra::plan::{HintKind, ThetaHint};
        let mut tables = HashMap::new();
        let rows: Vec<Value> = (0..60)
            .map(|i| row(i, "a st", 1, &format!("n{:02}", i)))
            .collect();
        tables.insert("customer".to_string(), StoredTable::from_rows(rows));
        let pred = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("t1"), "name"),
            CalcExpr::proj(CalcExpr::var("t2"), "name"),
        );
        let plan = Arc::new(Alg::Reduce {
            input: Arc::new(Alg::ThetaJoin {
                left: Arc::new(Alg::Scan {
                    table: "customer".into(),
                    var: "t1".into(),
                }),
                right: Arc::new(Alg::Scan {
                    table: "customer".into(),
                    var: "t2".into(),
                }),
                pred: pred.clone(),
                hint: ThetaHint {
                    left_key: CalcExpr::proj(CalcExpr::var("t1"), "name"),
                    right_key: CalcExpr::proj(CalcExpr::var("t2"), "name"),
                    kind: HintKind::LeftLessThanRight,
                },
            }),
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![
                ("l", CalcExpr::proj(CalcExpr::var("t1"), ROWID_FIELD)),
                ("r", CalcExpr::proj(CalcExpr::var("t2"), ROWID_FIELD)),
            ]),
        });
        // 60 distinct names: l.name < r.name holds for 60*59/2 pairs.
        let expected = 60 * 59 / 2;
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
            EngineProfile::adaptive(),
        ] {
            let ctx = ExecContext::new(2, 4);
            let mut ex = Executor::new(ctx, profile.clone(), &tables, Arc::new(EvalCtx::new()));
            if profile.adaptive {
                ex.set_stats(stats_for(&tables));
            }
            ex.register_plans(std::slice::from_ref(&plan));
            let out = ex.run_reduce(&plan).unwrap();
            assert_eq!(out.len(), expected, "{}", profile.name);
        }
    }

    #[test]
    fn string_theta_join_survives_null_first_key() {
        // Regression: the widening must not be disabled by an
        // unrepresentative first row — here the first key value is NULL
        // while the rest are strings sharing a 6-byte prefix (all collide
        // onto one prefix key, so unwidened Lt pruning would drop every
        // block).
        use crate::algebra::plan::{HintKind, ThetaHint};
        let mut tables = HashMap::new();
        let mut rows = vec![Value::record([
            (ROWID_FIELD, Value::Int(0)),
            ("name", Value::Null),
        ])];
        rows.extend((1..40).map(|i| {
            Value::record([
                (ROWID_FIELD, Value::Int(i)),
                ("name", Value::str(format!("prefix{:03}", i))),
            ])
        }));
        tables.insert("customer".to_string(), StoredTable::from_rows(rows));
        let pred = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("t1"), "name"),
            CalcExpr::proj(CalcExpr::var("t2"), "name"),
        );
        let plan = Arc::new(Alg::Reduce {
            input: Arc::new(Alg::ThetaJoin {
                left: Arc::new(Alg::Scan {
                    table: "customer".into(),
                    var: "t1".into(),
                }),
                right: Arc::new(Alg::Scan {
                    table: "customer".into(),
                    var: "t2".into(),
                }),
                pred: pred.clone(),
                hint: ThetaHint {
                    left_key: CalcExpr::proj(CalcExpr::var("t1"), "name"),
                    right_key: CalcExpr::proj(CalcExpr::var("t2"), "name"),
                    kind: HintKind::LeftLessThanRight,
                },
            }),
            monoid: MonoidKind::Bag,
            head: CalcExpr::proj(CalcExpr::var("t1"), ROWID_FIELD),
        });
        // 39 distinct non-null names: 39*38/2 Lt pairs; NULL compares false.
        let expected = 39 * 38 / 2;
        for profile in [EngineProfile::big_dansing_like(), EngineProfile::clean_db()] {
            let ctx = ExecContext::new(2, 4);
            let mut ex = Executor::new(ctx, profile.clone(), &tables, Arc::new(EvalCtx::new()));
            let out = ex.run_reduce(&plan).unwrap();
            assert_eq!(out.len(), expected, "{}", profile.name);
        }
    }

    #[test]
    fn mixed_type_theta_keys_force_cartesian() {
        // Numeric and string keys have no common pruning domain (and
        // Value's cross-type order ranks every number below every string):
        // pruning strategies must be overridden to the cartesian path.
        use crate::algebra::plan::{HintKind, ThetaHint};
        let mut tables = HashMap::new();
        let rows: Vec<Value> = (0..30)
            .map(|i| {
                Value::record([
                    (ROWID_FIELD, Value::Int(i)),
                    (
                        "k",
                        // Large ints (above the 48-bit string-key range)
                        // first, strings only deep in the partitions — a
                        // windowed sniff would miss them.
                        if i < 15 {
                            Value::Int((1 << 50) + i)
                        } else {
                            Value::str(format!("s{:02}", i))
                        },
                    ),
                ])
            })
            .collect();
        // Reference count under Value's total order: int < string always.
        let mut expected = 0;
        for a in 0..30i64 {
            for b in 0..30i64 {
                let va = if a < 15 {
                    Value::Int((1 << 50) + a)
                } else {
                    Value::str(format!("s{:02}", a))
                };
                let vb = if b < 15 {
                    Value::Int((1 << 50) + b)
                } else {
                    Value::str(format!("s{:02}", b))
                };
                if va < vb {
                    expected += 1;
                }
            }
        }
        tables.insert("t".to_string(), StoredTable::from_rows(rows));
        let pred = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("t1"), "k"),
            CalcExpr::proj(CalcExpr::var("t2"), "k"),
        );
        let plan = Arc::new(Alg::Reduce {
            input: Arc::new(Alg::ThetaJoin {
                left: Arc::new(Alg::Scan {
                    table: "t".into(),
                    var: "t1".into(),
                }),
                right: Arc::new(Alg::Scan {
                    table: "t".into(),
                    var: "t2".into(),
                }),
                pred: pred.clone(),
                hint: ThetaHint {
                    left_key: CalcExpr::proj(CalcExpr::var("t1"), "k"),
                    right_key: CalcExpr::proj(CalcExpr::var("t2"), "k"),
                    kind: HintKind::LeftLessThanRight,
                },
            }),
            monoid: MonoidKind::Bag,
            head: CalcExpr::proj(CalcExpr::var("t1"), ROWID_FIELD),
        });
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(
            ctx,
            EngineProfile::big_dansing_like(),
            &tables,
            Arc::new(EvalCtx::new()),
        );
        let out = ex.run_reduce(&plan).unwrap();
        assert_eq!(out.len(), expected);
        assert!(
            ex.decisions
                .iter()
                .any(|d| d.reason.contains("mixed numeric/text")),
            "{:?}",
            ex.decisions
        );
    }

    #[test]
    fn adaptive_theta_reads_string_histograms() {
        // Text join keys + enough rows to clear the tiny-input threshold:
        // the cost model must consult the *string* histograms rather than
        // falling back to "no histograms".
        let mut tables = HashMap::new();
        let rows: Vec<Value> = (0..300)
            .map(|i| row(i, "a st", 1, &format!("name-{:04}", i)))
            .collect();
        tables.insert("customer".to_string(), StoredTable::from_rows(rows));
        let stats = stats_for(&tables);
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(
            ctx,
            EngineProfile::adaptive(),
            &tables,
            Arc::new(EvalCtx::new()),
        );
        ex.set_stats(stats);
        ex.scan_vars.insert("t1".into(), "customer".into());
        ex.scan_vars.insert("t2".into(), "customer".into());
        use crate::algebra::plan::{HintKind, ThetaHint};
        let hint = ThetaHint {
            left_key: CalcExpr::proj(CalcExpr::var("t1"), "name"),
            right_key: CalcExpr::proj(CalcExpr::var("t2"), "name"),
            kind: HintKind::LeftLessThanRight,
        };
        let (_, _, reason) = ex.choose_theta(&hint, 300.0, 300.0);
        assert!(
            !reason.contains("no histograms"),
            "string histograms must feed the cost model: {reason}"
        );
    }

    #[test]
    fn timings_attribute_phases() {
        let sql = "SELECT * FROM customer c DEDUP(token_filtering(2), LD, 0.7, c.name)";
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plan = lower_op(&dq.ops[0].comp).unwrap();
        let tables = catalog();
        let mut eval_ctx = EvalCtx::new();
        eval_ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(ctx, EngineProfile::clean_db(), &tables, Arc::new(eval_ctx));
        ex.run_reduce(&plan).unwrap();
        assert!(ex.timings.grouping > Duration::ZERO);
        assert!(ex.timings.total() > Duration::ZERO);
    }
}
