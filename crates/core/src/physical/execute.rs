//! The physical executor: algebra plans → `cleanm-exec` operators (Table 2).
//!
//! | Algebra node | Runtime operator (per profile) |
//! |---|---|
//! | `Scan`      | partitioned load |
//! | `Select`    | `filter` |
//! | `Unnest`    | `flat_map` |
//! | `Nest`      | `aggregate_by_key` \| sort-shuffle \| hash-shuffle, then `map_partitions` |
//! | `Join`      | hash equi-join |
//! | `ThetaJoin` | M-Bucket \| min-max blocks \| cartesian+filter |
//! | `Reduce`    | `map` → collect/fold |
//!
//! Rows travel as [`RowEnv`] — the variable environment of the
//! comprehension the plan was lowered from. The executor memoizes
//! materialized results per plan node (when the profile shares plans), which
//! turns the §5 DAG sharing into actual single execution, and it attributes
//! wall time to phases (scan / grouping / similarity) for Figure 3's
//! breakdown.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use cleanm_exec::{theta, Dataset, ExecContext, ExecError, ExecResult};
use cleanm_values::Value;

use crate::algebra::plan::Alg;
use crate::calculus::eval::{eval, merge_values, truthy, EvalCtx};
use crate::calculus::{CalcExpr, Func, MonoidKind};

use super::profile::{EngineProfile, NestStrategy, ThetaStrategy};

/// A row in flight: the comprehension environment (variable → value).
pub type RowEnv = Vec<(String, Value)>;

/// Wall-time attribution per operator family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    pub scan: Duration,
    pub grouping: Duration,
    pub similarity: Duration,
    pub other: Duration,
}

impl PhaseTimings {
    pub fn total(&self) -> Duration {
        self.scan + self.grouping + self.similarity + self.other
    }

    pub fn add(&mut self, other: &PhaseTimings) {
        self.scan += other.scan;
        self.grouping += other.grouping;
        self.similarity += other.similarity;
        self.other += other.other;
    }
}

/// Executes algebra plans against a table catalog.
pub struct Executor<'a> {
    ctx: Arc<ExecContext>,
    profile: EngineProfile,
    tables: &'a HashMap<String, Arc<Vec<Value>>>,
    eval_ctx: Arc<EvalCtx>,
    cache: HashMap<usize, Dataset<RowEnv>>,
    /// Plan nodes referenced more than once across the registered plans —
    /// the only ones worth materializing into the cache (caching a node
    /// with a single consumer would deep-copy its dataset for nothing).
    shared_nodes: std::collections::HashSet<usize>,
    errors: Arc<Mutex<Vec<String>>>,
    pub timings: PhaseTimings,
}

impl<'a> Executor<'a> {
    pub fn new(
        ctx: Arc<ExecContext>,
        profile: EngineProfile,
        tables: &'a HashMap<String, Arc<Vec<Value>>>,
        eval_ctx: Arc<EvalCtx>,
    ) -> Self {
        Executor {
            ctx,
            profile,
            tables,
            eval_ctx,
            cache: HashMap::new(),
            shared_nodes: std::collections::HashSet::new(),
            errors: Arc::new(Mutex::new(Vec::new())),
            timings: PhaseTimings::default(),
        }
    }

    /// Inspect the full set of plans this executor will run and record the
    /// DAG nodes that appear more than once (directly, or via the sharing
    /// rewrite). Only those results are memoized.
    pub fn register_plans(&mut self, plans: &[Arc<Alg>]) {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        fn visit(plan: &Arc<Alg>, counts: &mut HashMap<usize, usize>) {
            let key = Arc::as_ptr(plan) as usize;
            let n = counts.entry(key).or_insert(0);
            *n += 1;
            if *n > 1 {
                return; // children already counted through the first visit
            }
            match &**plan {
                Alg::Scan { .. } => {}
                Alg::Select { input, .. }
                | Alg::Nest { input, .. }
                | Alg::Unnest { input, .. }
                | Alg::Reduce { input, .. } => visit(input, counts),
                Alg::Join { left, right, .. } | Alg::ThetaJoin { left, right, .. } => {
                    visit(left, counts);
                    visit(right, counts);
                }
            }
        }
        for plan in plans {
            visit(plan, &mut counts);
        }
        self.shared_nodes = counts
            .into_iter()
            .filter(|(_, n)| *n > 1)
            .map(|(k, _)| k)
            .collect();
    }

    /// Execute a full per-operator plan (must be a `Reduce` root) and return
    /// the reduced output collection.
    pub fn run_reduce(&mut self, plan: &Arc<Alg>) -> ExecResult<Vec<Value>> {
        let Alg::Reduce {
            input,
            monoid,
            head,
        } = &**plan
        else {
            return Err(ExecError::Other(format!(
                "operator plan must end in Reduce, got:\n{}",
                plan.explain()
            )));
        };
        let ds = self.run(input)?;
        let start = Instant::now();
        let eval_ctx = Arc::clone(&self.eval_ctx);
        let errors = Arc::clone(&self.errors);
        let head_cl = head.clone();
        let outputs: Vec<Value> = ds
            .map(move |env| match eval(&head_cl, &env, &eval_ctx) {
                Ok(v) => v,
                Err(e) => {
                    errors.lock().push(e.to_string());
                    Value::Null
                }
            })
            .collect();
        self.check_errors()?;
        let result = match monoid {
            MonoidKind::Bag | MonoidKind::List => outputs,
            MonoidKind::Set => {
                let mut o = outputs;
                o.sort();
                o.dedup();
                o
            }
            prim => {
                let mut acc = prim.zero();
                for v in outputs {
                    acc = merge_values(prim, acc, v)
                        .map_err(|e| ExecError::Value(e.to_string()))?;
                }
                vec![acc]
            }
        };
        self.timings.other += start.elapsed();
        Ok(result)
    }

    fn check_errors(&self) -> ExecResult<()> {
        let mut errs = self.errors.lock();
        if let Some(first) = errs.first() {
            let e = ExecError::Value(first.clone());
            errs.clear();
            return Err(e);
        }
        Ok(())
    }

    fn run(&mut self, plan: &Arc<Alg>) -> ExecResult<Dataset<RowEnv>> {
        let key = Arc::as_ptr(plan) as usize;
        let memoize = self.profile.share_plans && self.shared_nodes.contains(&key);
        if memoize {
            if let Some(cached) = self.cache.get(&key) {
                return Ok(cached.clone());
            }
        }
        let result = self.run_uncached(plan)?;
        if memoize {
            self.cache.insert(key, result.clone());
        }
        Ok(result)
    }

    fn run_uncached(&mut self, plan: &Arc<Alg>) -> ExecResult<Dataset<RowEnv>> {
        match &**plan {
            Alg::Scan { table, var } => {
                let start = Instant::now();
                let rows = self.tables.get(table).ok_or_else(|| {
                    ExecError::Other(format!("unknown table `{table}`"))
                })?;
                let envs: Vec<RowEnv> = rows
                    .iter()
                    .map(|r| vec![(var.clone(), r.clone())])
                    .collect();
                let ds = Dataset::from_vec(&self.ctx, envs);
                self.timings.scan += start.elapsed();
                Ok(ds)
            }
            Alg::Select { input, pred } => {
                let ds = self.run(input)?;
                let start = Instant::now();
                let eval_ctx = Arc::clone(&self.eval_ctx);
                let errors = Arc::clone(&self.errors);
                let pred_cl = pred.clone();
                let out = ds.filter(move |env| match eval(&pred_cl, env, &eval_ctx) {
                    Ok(v) => truthy(&v),
                    Err(e) => {
                        errors.lock().push(e.to_string());
                        false
                    }
                });
                self.check_errors()?;
                if expr_has_similarity(pred) {
                    self.timings.similarity += start.elapsed();
                } else {
                    self.timings.other += start.elapsed();
                }
                Ok(out)
            }
            Alg::Unnest { input, path, var } => {
                let ds = self.run(input)?;
                let start = Instant::now();
                let eval_ctx = Arc::clone(&self.eval_ctx);
                let errors = Arc::clone(&self.errors);
                let path_cl = path.clone();
                let var_cl = var.clone();
                let out = ds.flat_map(move |env| {
                    let coll = match eval(&path_cl, &env, &eval_ctx) {
                        Ok(v) => v,
                        Err(e) => {
                            errors.lock().push(e.to_string());
                            return Vec::new();
                        }
                    };
                    match coll {
                        Value::List(items) => items
                            .iter()
                            .map(|item| {
                                let mut e = env.clone();
                                e.push((var_cl.clone(), item.clone()));
                                e
                            })
                            .collect(),
                        Value::Null => Vec::new(),
                        other => {
                            errors
                                .lock()
                                .push(format!("unnest over non-list `{other}`"));
                            Vec::new()
                        }
                    }
                });
                self.check_errors()?;
                self.timings.similarity += start.elapsed();
                Ok(out)
            }
            Alg::Nest {
                input,
                key,
                item,
                group_var,
                ..
            } => {
                let ds = self.run(input)?;
                let start = Instant::now();
                let out = self.exec_nest(ds, key, item, group_var)?;
                self.timings.grouping += start.elapsed();
                Ok(out)
            }
            Alg::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let lds = self.run(left)?;
                let rds = self.run(right)?;
                let start = Instant::now();
                let keyed = |ds: Dataset<RowEnv>, key_expr: &CalcExpr| {
                    let eval_ctx = Arc::clone(&self.eval_ctx);
                    let errors = Arc::clone(&self.errors);
                    let key_cl = key_expr.clone();
                    ds.map(move |env| {
                        let k = match eval(&key_cl, &env, &eval_ctx) {
                            Ok(v) => v,
                            Err(e) => {
                                errors.lock().push(e.to_string());
                                Value::Null
                            }
                        };
                        (k, env)
                    })
                };
                let lk = keyed(lds, left_key);
                let rk = keyed(rds, right_key);
                self.check_errors()?;
                let joined = lk.join_hash(rk);
                let out = joined.map(|(_, mut lenv, renv)| {
                    lenv.extend(renv);
                    lenv
                });
                self.timings.grouping += start.elapsed();
                Ok(out)
            }
            Alg::ThetaJoin {
                left,
                right,
                pred,
                hint,
            } => {
                let lds = self.run(left)?;
                let rds = self.run(right)?;
                let start = Instant::now();
                let out = self.exec_theta(lds, rds, pred, hint)?;
                self.timings.similarity += start.elapsed();
                Ok(out)
            }
            Alg::Reduce { .. } => Err(ExecError::Other(
                "nested Reduce must be consumed via run_reduce".to_string(),
            )),
        }
    }

    /// The Nest translation of Table 2, by profile strategy.
    fn exec_nest(
        &self,
        ds: Dataset<RowEnv>,
        key: &CalcExpr,
        item: &CalcExpr,
        group_var: &str,
    ) -> ExecResult<Dataset<RowEnv>> {
        let eval_ctx = Arc::clone(&self.eval_ctx);
        let errors = Arc::clone(&self.errors);
        let key_cl = key.clone();
        let item_cl = item.clone();
        // Emit (block key, item) pairs; a list key multi-assigns (token
        // filtering / k-means with delta).
        let pairs: Dataset<(Value, Value)> = ds.flat_map(move |env| {
            let k = match eval(&key_cl, &env, &eval_ctx) {
                Ok(v) => v,
                Err(e) => {
                    errors.lock().push(e.to_string());
                    return Vec::new();
                }
            };
            let it = match eval(&item_cl, &env, &eval_ctx) {
                Ok(v) => v,
                Err(e) => {
                    errors.lock().push(e.to_string());
                    return Vec::new();
                }
            };
            match k {
                Value::List(keys) => keys
                    .iter()
                    .map(|kk| (kk.clone(), it.clone()))
                    .collect(),
                scalar => vec![(scalar, it)],
            }
        });
        self.check_errors()?;
        let grouped: Dataset<(Value, Vec<Value>)> = match self.profile.nest {
            NestStrategy::LocalAggregate => pairs.group_by_key_local(),
            NestStrategy::SortShuffle => pairs.group_by_key_sorted(),
            NestStrategy::HashShuffle => pairs.group_by_key_hash(),
        };
        let gv = group_var.to_string();
        // `mapPartitions`-style finishing: wrap each group as {key, partition}.
        Ok(grouped.map(move |(k, members)| {
            vec![(
                gv.clone(),
                Value::record([("key", k), ("partition", Value::list(members))]),
            )]
        }))
    }

    /// The theta-join translation of §6, by profile strategy.
    fn exec_theta(
        &self,
        lds: Dataset<RowEnv>,
        rds: Dataset<RowEnv>,
        pred: &CalcExpr,
        hint: &crate::algebra::plan::ThetaHint,
    ) -> ExecResult<Dataset<RowEnv>> {
        let eval_ctx = Arc::clone(&self.eval_ctx);
        let pred_cl = pred.clone();
        let predicate = {
            let eval_ctx = Arc::clone(&eval_ctx);
            move |l: &RowEnv, r: &RowEnv| {
                let mut env = l.clone();
                env.extend(r.iter().cloned());
                eval(&pred_cl, &env, &eval_ctx).map(|v| truthy(&v)).unwrap_or(false)
            }
        };
        let key_fn = |expr: &CalcExpr| {
            let eval_ctx = Arc::clone(&eval_ctx);
            let e = expr.clone();
            move |env: &RowEnv| -> f64 {
                eval(&e, env, &eval_ctx)
                    .ok()
                    .and_then(|v| v.as_float().ok())
                    .unwrap_or(f64::NAN)
            }
        };
        let kind = hint.kind;
        let compat = move |l: (f64, f64), r: (f64, f64)| kind.compatible(l, r);

        let joined: Dataset<(RowEnv, RowEnv)> = match self.profile.theta {
            ThetaStrategy::CartesianFilter => theta::cartesian_filter(lds, rds, predicate)?,
            ThetaStrategy::MinMaxBlocks => theta::minmax_block_join(
                lds,
                rds,
                key_fn(&hint.left_key),
                key_fn(&hint.right_key),
                compat,
                predicate,
            )?,
            ThetaStrategy::MBucket => theta::mbucket_join(
                lds,
                rds,
                key_fn(&hint.left_key),
                key_fn(&hint.right_key),
                compat,
                predicate,
                None,
            )?,
        };
        Ok(joined.map(|(mut l, r)| {
            l.extend(r);
            l
        }))
    }
}

/// Does the expression contain a similarity call? (Phase attribution.)
fn expr_has_similarity(e: &CalcExpr) -> bool {
    match e {
        CalcExpr::Call(Func::Similar(..) | Func::Similarity(..), _) => true,
        CalcExpr::Call(_, args) => args.iter().any(expr_has_similarity),
        CalcExpr::BinOp(_, l, r) | CalcExpr::Merge(_, l, r) => {
            expr_has_similarity(l) || expr_has_similarity(r)
        }
        CalcExpr::Not(x) | CalcExpr::Exists(x) | CalcExpr::Proj(x, _) => expr_has_similarity(x),
        CalcExpr::If(c, t, f) => {
            expr_has_similarity(c) || expr_has_similarity(t) || expr_has_similarity(f)
        }
        CalcExpr::Record(fields) => fields.iter().any(|(_, x)| expr_has_similarity(x)),
        CalcExpr::Comp(c) => {
            expr_has_similarity(&c.head)
                || c.quals.iter().any(|q| match q {
                    crate::calculus::Qual::Gen(_, x)
                    | crate::calculus::Qual::Bind(_, x)
                    | crate::calculus::Qual::Pred(x) => expr_has_similarity(x),
                })
        }
        CalcExpr::Const(_) | CalcExpr::Var(_) | CalcExpr::TableRef(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::lower_op;
    use crate::calculus::desugar::ROWID_FIELD;
    use crate::calculus::{desugar_query, BinOp};
    use crate::lang::parse_query;

    fn row(id: i64, addr: &str, nation: i64, name: &str) -> Value {
        Value::record([
            (ROWID_FIELD, Value::Int(id)),
            ("address", Value::str(addr)),
            ("nationkey", Value::Int(nation)),
            ("name", Value::str(name)),
        ])
    }

    fn catalog() -> HashMap<String, Arc<Vec<Value>>> {
        let mut t = HashMap::new();
        t.insert(
            "customer".to_string(),
            Arc::new(vec![
                row(0, "a st", 1, "anderson"),
                row(1, "a st", 2, "andersen"),
                row(2, "b st", 3, "zhang"),
                row(3, "b st", 3, "zhong"),
                row(4, "c st", 4, "miller"),
            ]),
        );
        t
    }

    fn exec_sql(sql: &str, profile: EngineProfile) -> Vec<Value> {
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plan = lower_op(&dq.ops[0].comp).unwrap();
        let tables = catalog();
        let mut eval_ctx = EvalCtx::new();
        eval_ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let ctx = ExecContext::new(2, 4);
        let mut executor = Executor::new(ctx, profile, &tables, Arc::new(eval_ctx));
        executor.run_reduce(&plan).unwrap()
    }

    #[test]
    fn fd_executes_identically_under_all_profiles() {
        let sql = "SELECT * FROM customer c FD(c.address, c.nationkey)";
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
        ] {
            let name = profile.name.clone();
            let out = exec_sql(sql, profile);
            assert_eq!(out.len(), 1, "{name}: only `a st` violates");
            assert_eq!(out[0].field("key").unwrap(), &Value::str("a st"));
        }
    }

    #[test]
    fn dedup_finds_similar_pair_distributed() {
        let sql = "SELECT * FROM customer c DEDUP(token_filtering(2), LD, 0.7, c.name)";
        let out = exec_sql(sql, EngineProfile::clean_db());
        // anderson/andersen are similar; pairs may appear once per shared
        // block, so dedup on the pair identity.
        let mut pair_ids: Vec<(i64, i64)> = out
            .iter()
            .map(|p| {
                (
                    p.field("left")
                        .unwrap()
                        .field(ROWID_FIELD)
                        .unwrap()
                        .as_int()
                        .unwrap(),
                    p.field("right")
                        .unwrap()
                        .field(ROWID_FIELD)
                        .unwrap()
                        .as_int()
                        .unwrap(),
                )
            })
            .collect();
        pair_ids.sort_unstable();
        pair_ids.dedup();
        assert!(pair_ids.contains(&(0, 1)), "{pair_ids:?}");
        assert!(!pair_ids.contains(&(2, 4)));
    }

    #[test]
    fn nest_strategies_agree_on_results() {
        let sql = "SELECT * FROM customer c DEDUP(exact, LD, 0.7, c.address, c.name)";
        let mut results: Vec<Vec<Value>> = Vec::new();
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
        ] {
            let mut out = exec_sql(sql, profile);
            out.sort();
            results.push(out);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn shared_plans_execute_nest_once() {
        // Two ops sharing a grouping: with share_plans the Nest's shuffle
        // runs once (visible in stage reports).
        let q = parse_query(
            "SELECT * FROM customer c \
             FD(c.address, c.nationkey) \
             DEDUP(exact, LD, 0.7, c.address, c.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plans: Vec<Arc<Alg>> = dq
            .ops
            .iter()
            .map(|op| lower_op(&op.comp).unwrap())
            .collect();
        let (shared, stats) = crate::algebra::rewrite_shared(&plans);
        assert_eq!(stats.shared_nests, 1);

        let tables = catalog();
        let count_group_stages = |profile: EngineProfile, plans: &[Arc<Alg>]| {
            let ctx = ExecContext::new(2, 4);
            let mut eval_ctx = EvalCtx::new();
            for op in &dq.ops {
                eval_ctx.prepare_blockers(&op.comp, &[]);
            }
            let mut ex = Executor::new(ctx.clone(), profile, &tables, Arc::new(eval_ctx));
            ex.register_plans(plans);
            for p in plans {
                ex.run_reduce(p).unwrap();
            }
            ctx.metrics()
                .snapshot()
                .stages
                .iter()
                .filter(|s| s.operator.contains("aggregate") || s.operator.contains("group"))
                .count()
        };
        let shared_runs = count_group_stages(EngineProfile::clean_db(), &shared);
        let unshared_runs = count_group_stages(EngineProfile::spark_sql_like(), &plans);
        assert_eq!(shared_runs, 1, "CleanDB: one aggregation for both ops");
        assert_eq!(unshared_runs, 2, "SparkSQL-like: one per op");
    }

    #[test]
    fn theta_join_via_plan() {
        // Manual ThetaJoin plan: pairs (l, r) with l.nationkey < r.nationkey.
        use crate::algebra::plan::{ThetaHint, HintKind};
        let scan_l = Arc::new(Alg::Scan {
            table: "customer".into(),
            var: "t1".into(),
        });
        let scan_r = Arc::new(Alg::Scan {
            table: "customer".into(),
            var: "t2".into(),
        });
        let pred = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("t1"), "nationkey"),
            CalcExpr::proj(CalcExpr::var("t2"), "nationkey"),
        );
        let plan = Arc::new(Alg::Reduce {
            input: Arc::new(Alg::ThetaJoin {
                left: scan_l,
                right: scan_r,
                pred: pred.clone(),
                hint: ThetaHint {
                    left_key: CalcExpr::proj(CalcExpr::var("t1"), "nationkey"),
                    right_key: CalcExpr::proj(CalcExpr::var("t2"), "nationkey"),
                    kind: HintKind::LeftLessThanRight,
                },
            }),
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![
                ("l", CalcExpr::proj(CalcExpr::var("t1"), ROWID_FIELD)),
                ("r", CalcExpr::proj(CalcExpr::var("t2"), ROWID_FIELD)),
            ]),
        });
        let tables = catalog();
        // nation keys: 1,2,3,3,4 -> pairs with l<r: (1,*4)=4? count manually:
        // 1<2,1<3,1<3,1<4; 2<3,2<3,2<4; 3<4,3<4 = 9
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
        ] {
            let ctx = ExecContext::new(2, 4);
            let mut ex =
                Executor::new(ctx, profile.clone(), &tables, Arc::new(EvalCtx::new()));
            let out = ex.run_reduce(&plan).unwrap();
            assert_eq!(out.len(), 9, "{}", profile.name);
        }
    }

    #[test]
    fn timings_attribute_phases() {
        let sql = "SELECT * FROM customer c DEDUP(token_filtering(2), LD, 0.7, c.name)";
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plan = lower_op(&dq.ops[0].comp).unwrap();
        let tables = catalog();
        let mut eval_ctx = EvalCtx::new();
        eval_ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let ctx = ExecContext::new(2, 4);
        let mut ex = Executor::new(ctx, EngineProfile::clean_db(), &tables, Arc::new(eval_ctx));
        ex.run_reduce(&plan).unwrap();
        assert!(ex.timings.grouping > Duration::ZERO);
        assert!(ex.timings.total() > Duration::ZERO);
    }
}
