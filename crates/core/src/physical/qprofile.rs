//! Per-plan-node execution profiles — the data behind `EXPLAIN ANALYZE`.
//!
//! When tracing is enabled, the executor wraps every plan node it runs in a
//! profiling frame and assembles a [`ProfileNode`] tree mirroring the plan
//! shape actually executed: fused `Select` chains collapse into their
//! consumer, a recognized group-fold collapses `Nest`+`Reduce` into one
//! `GroupFold` root, and memoized DAG nodes appear as `cached` leaves at
//! every reuse site. Each node folds in the [`StageReport`]s its own
//! execution pushed (shuffle volume, worker-busy time, imbalance, idle
//! fraction), the adaptive strategy decisions made at that node, and the
//! expression-compilation counts it contributed — so a regression localizes
//! to a node, not a number.
//!
//! [`StageReport`]: cleanm_exec::StageReport

use std::time::Duration;

use cleanm_trace::json;

/// One executed plan node with its measured behaviour. Children are the
/// node's data inputs in plan order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    /// Operator kind: `Scan`, `Select`, `Unnest`, `Nest`, `Join`,
    /// `ThetaJoin`, `Reduce[...]`, or `GroupFold` (a collapsed
    /// `Nest`+`Reduce`).
    pub op: String,
    /// Short rendering of the node's defining expression (key, predicate,
    /// head, or table), truncated for display.
    pub detail: String,
    /// Rows entering the node (its children's combined output; for a leaf,
    /// its own output).
    pub rows_in: u64,
    /// Rows the node produced.
    pub rows_out: u64,
    /// Wall-clock time for the node *including* its children.
    pub wall_ns: u64,
    /// Worker-busy nanoseconds summed over the exec stages attributed to
    /// this node alone (children excluded).
    pub busy_ns: u64,
    /// Records this node's own stages physically moved between partitions.
    pub shuffled: u64,
    /// Worst max/mean load imbalance among this node's own stages
    /// (1.0 = balanced; see `StageReport::imbalance`).
    pub max_imbalance: f64,
    /// Worst idle fraction among this node's own stages (0.0 = all workers
    /// busy for the whole stage; see `StageReport::idle_fraction`).
    pub idle_fraction: f64,
    /// Plan-node expressions this node compiled to slot-resolved programs.
    pub compiled_exprs: usize,
    /// Plan-node expressions that fell back to the tree interpreter here.
    pub interpreted_exprs: usize,
    /// `Select` passes fused into this node's sweep (never materialized).
    pub fused_selects: usize,
    /// Rows this node processed through columnar kernels (whole-column
    /// sweeps over typed batches) instead of row-at-a-time evaluation.
    pub vectorized_rows: u64,
    /// Execution flags: `cached` (reused a memoized result), `shared`
    /// (materialized for multiple consumers), `fold-groups` (streaming
    /// grouped aggregation), `materialize-groups` (group lists built),
    /// `vectorized` (columnar kernel sweep).
    pub flags: Vec<String>,
    /// Adaptive strategy decisions made at this node, as
    /// `"Strategy (reason)"` strings.
    pub strategies: Vec<String>,
    /// Labels of the exec stages attributed to this node, in push order.
    pub stage_ops: Vec<String>,
    /// Input nodes, in plan order.
    pub children: Vec<ProfileNode>,
    /// Half-open index range of this node's execution in the run's stage
    /// log (used for parent/child stage attribution).
    pub(crate) stage_range: (usize, usize),
    /// Half-open index range of this node's execution in the run's
    /// decision log.
    pub(crate) decision_range: (usize, usize),
}

impl ProfileNode {
    /// Wall-clock time including children.
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_ns)
    }

    /// Total nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProfileNode::size).sum::<usize>()
    }

    /// `(compiled, interpreted, fused)` totals over the subtree.
    pub fn subtree_exprs(&self) -> (usize, usize, usize) {
        let mut t = (
            self.compiled_exprs,
            self.interpreted_exprs,
            self.fused_selects,
        );
        for c in &self.children {
            let s = c.subtree_exprs();
            t.0 += s.0;
            t.1 += s.1;
            t.2 += s.2;
        }
        t
    }

    /// Vectorized-row total over the subtree.
    pub fn subtree_vectorized(&self) -> u64 {
        self.vectorized_rows
            + self
                .children
                .iter()
                .map(ProfileNode::subtree_vectorized)
                .sum::<u64>()
    }

    /// Shuffled-record total over the subtree.
    pub fn subtree_shuffled(&self) -> u64 {
        self.shuffled
            + self
                .children
                .iter()
                .map(ProfileNode::subtree_shuffled)
                .sum::<u64>()
    }

    /// Depth-first search for the first node whose `op` equals `op`.
    pub fn find(&self, op: &str) -> Option<&ProfileNode> {
        if self.op == op {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(op))
    }

    fn render_into(&self, out: &mut String, prefix: &str, is_last: bool, is_root: bool) {
        if !is_root {
            out.push_str(prefix);
            out.push_str(if is_last { "└─ " } else { "├─ " });
        }
        out.push_str(&self.op);
        if !self.detail.is_empty() {
            out.push(' ');
            out.push_str(&self.detail);
        }
        out.push_str(&format!(
            "  rows {}→{}  {:.3}ms",
            self.rows_in,
            self.rows_out,
            self.wall_ns as f64 / 1e6
        ));
        if self.busy_ns > 0 {
            out.push_str(&format!("  busy {:.3}ms", self.busy_ns as f64 / 1e6));
        }
        if self.shuffled > 0 {
            out.push_str(&format!("  shuffle {}", self.shuffled));
        }
        if self.max_imbalance > 1.0 {
            out.push_str(&format!("  imb {:.2}x", self.max_imbalance));
        }
        if self.idle_fraction > 0.0 {
            out.push_str(&format!("  idle {:.0}%", self.idle_fraction * 100.0));
        }
        let (c, i, f) = (
            self.compiled_exprs,
            self.interpreted_exprs,
            self.fused_selects,
        );
        if c + i + f > 0 {
            let mut parts = Vec::new();
            if c > 0 {
                parts.push(format!("{c} compiled"));
            }
            if i > 0 {
                parts.push(format!("{i} interpreted"));
            }
            if f > 0 {
                parts.push(format!("{f} fused"));
            }
            out.push_str(&format!("  exprs[{}]", parts.join(", ")));
        }
        if self.vectorized_rows > 0 {
            out.push_str(&format!("  vec {}", self.vectorized_rows));
        }
        let mut tags: Vec<String> = self.flags.clone();
        tags.extend(self.strategies.iter().cloned());
        if !tags.is_empty() {
            out.push_str(&format!("  [{}]", tags.join("; ")));
        }
        if !self.stage_ops.is_empty() {
            out.push_str(&format!("  via {}", self.stage_ops.join(", ")));
        }
        out.push('\n');
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            c.render_into(out, &child_prefix, i + 1 == n, false);
        }
    }

    /// JSON object for this subtree (hand-rolled; the workspace serde shim
    /// is a no-op).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"op\": {}, \"detail\": {}, \"rows_in\": {}, \"rows_out\": {}, \
             \"wall_ns\": {}, \"busy_ns\": {}, \"shuffled\": {}, \
             \"max_imbalance\": {}, \"idle_fraction\": {}, \
             \"compiled_exprs\": {}, \"interpreted_exprs\": {}, \
             \"fused_selects\": {}, \"vectorized_rows\": {}",
            json::string(&self.op),
            json::string(&self.detail),
            self.rows_in,
            self.rows_out,
            self.wall_ns,
            self.busy_ns,
            self.shuffled,
            json::num(self.max_imbalance),
            json::num(self.idle_fraction),
            self.compiled_exprs,
            self.interpreted_exprs,
            self.fused_selects,
            self.vectorized_rows,
        );
        let str_list = |items: &[String]| {
            items
                .iter()
                .map(|s| json::string(s))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(", \"flags\": [{}]", str_list(&self.flags)));
        out.push_str(&format!(
            ", \"strategies\": [{}]",
            str_list(&self.strategies)
        ));
        out.push_str(&format!(", \"stages\": [{}]", str_list(&self.stage_ops)));
        out.push_str(", \"children\": [");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&c.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The execution profile of one cleaning operator's plan: an
/// `EXPLAIN ANALYZE`-style tree rooted at the operator's reduce.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// The cleaning operator the plan belongs to (e.g. `"FD
    /// [orderkey,linenumber] -> [suppkey]"`).
    pub op: String,
    /// Root of the executed-plan tree.
    pub root: ProfileNode,
}

impl QueryProfile {
    /// Render the tree, one line per node, children indented under parents.
    pub fn render(&self) -> String {
        let mut out = format!("-- {}\n", self.op);
        self.root.render_into(&mut out, "", true, true);
        out
    }

    /// JSON object `{"op": ..., "root": {...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"op\": {}, \"root\": {}}}",
            json::string(&self.op),
            self.root.to_json()
        )
    }
}

/// Truncate a plan-expression rendering for one-line display.
pub(crate) fn clip(s: impl ToString) -> String {
    let s = s.to_string();
    const MAX: usize = 56;
    if s.chars().count() <= MAX {
        return s;
    }
    let mut out: String = s.chars().take(MAX).collect();
    out.push('…');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(op: &str, rows: u64) -> ProfileNode {
        ProfileNode {
            op: op.to_string(),
            rows_in: rows,
            rows_out: rows,
            max_imbalance: 1.0,
            ..ProfileNode::default()
        }
    }

    #[test]
    fn render_nests_children() {
        let mut root = leaf("Reduce[bag]", 3);
        root.rows_in = 10;
        let mut select = leaf("Select", 10);
        select.children.push(leaf("Scan", 100));
        root.children.push(select);
        let p = QueryProfile {
            op: "test".into(),
            root,
        };
        let text = p.render();
        assert!(text.contains("-- test"));
        assert!(text.contains("Reduce[bag]"));
        assert!(text.contains("└─ Select"));
        assert!(text.contains("   └─ Scan"));
    }

    #[test]
    fn json_is_nested_and_escaped() {
        let mut root = leaf("Join", 5);
        root.detail = "a\"b".into();
        root.children.push(leaf("Scan", 5));
        root.children.push(leaf("Scan", 5));
        let js = root.to_json();
        assert!(js.contains("\"op\": \"Join\""));
        assert!(js.contains("a\\\"b"));
        assert_eq!(js.matches("\"op\": \"Scan\"").count(), 2);
    }

    #[test]
    fn subtree_rollups() {
        let mut root = leaf("Nest", 4);
        root.shuffled = 10;
        root.compiled_exprs = 2;
        let mut child = leaf("Scan", 8);
        child.shuffled = 3;
        child.interpreted_exprs = 1;
        root.children.push(child);
        assert_eq!(root.subtree_shuffled(), 13);
        assert_eq!(root.subtree_exprs(), (2, 1, 0));
        assert_eq!(root.size(), 2);
        assert!(root.find("Scan").is_some());
        assert!(root.find("Join").is_none());
    }

    #[test]
    fn clip_truncates_long_expressions() {
        assert_eq!(clip("short"), "short");
        let long = "x".repeat(200);
        let clipped = clip(&long);
        assert!(clipped.chars().count() <= 57);
        assert!(clipped.ends_with('…'));
    }
}
