//! Column-at-a-time kernels compiled from the fused instruction forms of
//! [`Program`].
//!
//! The row machine already collapses the hot cleaning shapes into fused
//! instructions — a predicate tree ([`Instr::Pred`]), a three-address
//! comparison ([`Instr::BinFused`]), a record of projections
//! ([`Instr::RecordFused`]), a single-builtin call ([`Instr::CallFused`]).
//! This module recognizes exactly those shapes and lowers them once more,
//! against a *concrete* [`ColumnBatch`] schema, into kernels that sweep
//! whole typed columns: a predicate refines a selection vector over
//! `i64`/`f64`/`Arc<str>` slices, a projection produces output columns, a
//! grouping key hashes raw cells and materializes one key `Value` per
//! *distinct group* instead of one per row.
//!
//! **Safety contract (what keeps columnar ≡ row byte-identical):** a
//! kernel compiles only when per-row evaluation provably cannot error —
//! comparisons are total, arithmetic is restricted to numeric/NULL typed
//! columns (where `eval_binop`'s only non-value outcomes are NULL
//! propagation and divide-by-zero → NULL), and string builtins are
//! restricted to the four total ones (`lower`/`upper`/`trim`/`prefix`)
//! over string columns. Everything else — interpreter islands, `Val`
//! fallback columns, cross-type comparisons, shuffled schemas — returns
//! `None` from the kernel compiler and the caller keeps the row path. The
//! differential tests in `tests/columnar_agree.rs` pin the equivalence.

use std::sync::Arc;

use cleanm_values::{Column, ColumnBatch, FxHashMap, NullMask, Value};

use crate::calculus::compile::{BoolExpr, Instr, Operand, Program};
use crate::calculus::eval::{lowercase_is_identity, prefix_end, uppercase_is_identity};
use crate::calculus::{BinOp, Func};

/// A resolved column reference: a flat index into the kernel's typed bind
/// list. The `(slot, column)` pair it came from lives in the bind list, so
/// the runtime reference is just the flat index.
#[derive(Debug, Clone, Copy)]
struct ColRef {
    col: u32,
}

/// Static cell type of a referenced column, fixed at kernel-compile time
/// from the actual batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellType {
    Int,
    Float,
    Str,
}

fn column_type(c: &Column) -> Option<CellType> {
    match c {
        Column::Int { .. } => Some(CellType::Int),
        Column::Float { .. } => Some(CellType::Float),
        Column::Str { .. } => Some(CellType::Str),
        // Bool columns never appear in fused comparisons (predicates
        // compare numbers/strings); Val columns are the row-path fallback.
        Column::Bool { .. } | Column::Val(_) => None,
    }
}

/// A numeric scalar expression over columns: the columnar lowering of an
/// [`Operand`] tree whose leaves are numeric columns or constants.
/// `Int`-kinded nodes evaluate in wrapping `i64` exactly like
/// [`eval_binop`]; everything else widens to `f64`. `None` is NULL.
#[derive(Debug)]
enum NumExpr {
    IntCol(ColRef),
    FloatCol(ColRef),
    IntConst(i64),
    FloatConst(f64),
    Bin {
        op: BinOp,
        /// Does this node produce an `Int` (both sides Int, op ∈ {+,-,*})?
        int: bool,
        l: Box<NumExpr>,
        r: Box<NumExpr>,
    },
}

impl NumExpr {
    fn is_int(&self) -> bool {
        match self {
            NumExpr::IntCol(_) | NumExpr::IntConst(_) => true,
            NumExpr::FloatCol(_) | NumExpr::FloatConst(_) => false,
            NumExpr::Bin { int, .. } => *int,
        }
    }

    /// Evaluate as `i64` (valid only when [`NumExpr::is_int`]); `None` is
    /// NULL. Mirrors `eval_binop`'s wrapping integer arithmetic.
    #[inline]
    fn eval_i(&self, cols: &Bound<'_>, i: usize) -> Option<i64> {
        match self {
            NumExpr::IntCol(r) => cols.int(*r, i),
            NumExpr::IntConst(v) => Some(*v),
            NumExpr::Bin { op, l, r, .. } => {
                let a = l.eval_i(cols, i)?;
                let b = r.eval_i(cols, i)?;
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    _ => unreachable!("int-kinded arithmetic"),
                })
            }
            NumExpr::FloatCol(_) | NumExpr::FloatConst(_) => {
                unreachable!("float node in int context")
            }
        }
    }

    /// Evaluate as `f64`, widening like `eval_binop` (`i as f64`); `None`
    /// is NULL (including division by zero).
    #[inline]
    fn eval_f(&self, cols: &Bound<'_>, i: usize) -> Option<f64> {
        match self {
            NumExpr::IntCol(r) => cols.int(*r, i).map(|v| v as f64),
            NumExpr::FloatCol(r) => cols.float(*r, i),
            NumExpr::IntConst(v) => Some(*v as f64),
            NumExpr::FloatConst(v) => Some(*v),
            NumExpr::Bin { int: true, .. } => self.eval_i(cols, i).map(|v| v as f64),
            NumExpr::Bin { op, l, r, .. } => {
                let a = l.eval_f(cols, i)?;
                let b = r.eval_f(cols, i)?;
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    // Both the int and float division rules of `eval_binop`
                    // collapse to this: zero divisor → NULL, else f64.
                    BinOp::Div => (b != 0.0).then(|| a / b),
                    _ => unreachable!("arithmetic op"),
                }
            }
        }
    }
}

/// A string side of a comparison: a string column or constant.
#[derive(Debug)]
enum StrOperand {
    Col(ColRef),
    Const(Arc<str>),
}

impl StrOperand {
    #[inline]
    fn get<'a>(&'a self, cols: &Bound<'a>, i: usize) -> Option<&'a str> {
        match self {
            StrOperand::Col(r) => cols.str(*r, i),
            StrOperand::Const(s) => Some(s),
        }
    }
}

/// `eval_binop`'s NULL comparison rule: `Eq` ⇔ both NULL, `Ne` ⇔ exactly
/// one NULL, every other comparison is false.
#[inline]
fn null_cmp(op: BinOp, ln: bool, rn: bool) -> bool {
    match op {
        BinOp::Eq => ln && rn,
        BinOp::Ne => ln != rn,
        _ => false,
    }
}

#[inline]
fn ord_cmp(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("comparison op"),
    }
}

/// Float comparison with `eval_binop`'s exact semantics: IEEE comparison
/// when neither side is NaN, the canonical total order otherwise.
#[inline]
fn float_cmp_total(op: BinOp, a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return ord_cmp(op, Value::float_key(a).cmp(&Value::float_key(b)));
    }
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("comparison op"),
    }
}

/// One vectorized comparison atom.
#[derive(Debug)]
enum CmpAtom {
    /// Both sides `Int`-kinded: exact `i64` comparison (no widening — a
    /// 64-bit int does not round-trip through `f64`).
    IntInt { op: BinOp, l: NumExpr, r: NumExpr },
    /// At least one side float: widen and compare with NaN total order.
    Num { op: BinOp, l: NumExpr, r: NumExpr },
    /// Both sides strings: lexicographic byte order (`str::cmp`).
    Str {
        op: BinOp,
        l: StrOperand,
        r: StrOperand,
    },
}

impl CmpAtom {
    #[inline]
    fn eval(&self, cols: &Bound<'_>, i: usize) -> bool {
        match self {
            CmpAtom::IntInt { op, l, r } => match (l.eval_i(cols, i), r.eval_i(cols, i)) {
                (Some(a), Some(b)) => ord_cmp(*op, a.cmp(&b)),
                (a, b) => null_cmp(*op, a.is_none(), b.is_none()),
            },
            CmpAtom::Num { op, l, r } => match (l.eval_f(cols, i), r.eval_f(cols, i)) {
                (Some(a), Some(b)) => float_cmp_total(*op, a, b),
                (a, b) => null_cmp(*op, a.is_none(), b.is_none()),
            },
            CmpAtom::Str { op, l, r } => match (l.get(cols, i), r.get(cols, i)) {
                (Some(a), Some(b)) => ord_cmp(*op, a.cmp(b)),
                (a, b) => null_cmp(*op, a.is_none(), b.is_none()),
            },
        }
    }
}

/// A vectorized boolean tree — the columnar twin of [`BoolExpr`]. Atoms
/// are error-free, so evaluation order inside a row is unobservable and
/// conjunctions may run as successive selection-vector refinements.
#[derive(Debug)]
enum BoolKernel {
    Cmp(CmpAtom),
    Not(Box<BoolKernel>),
    AllOf(Vec<BoolKernel>),
    AnyOf(Vec<BoolKernel>),
}

impl BoolKernel {
    #[inline]
    fn eval_row(&self, cols: &Bound<'_>, i: usize) -> bool {
        match self {
            BoolKernel::Cmp(a) => a.eval(cols, i),
            BoolKernel::Not(k) => !k.eval_row(cols, i),
            BoolKernel::AllOf(ks) => ks.iter().all(|k| k.eval_row(cols, i)),
            BoolKernel::AnyOf(ks) => ks.iter().any(|k| k.eval_row(cols, i)),
        }
    }

    /// Refine `sel` to the rows where the kernel holds. A conjunction runs
    /// atom-by-atom over the shrinking selection, a disjunction runs
    /// branch-by-branch over the shrinking *undecided* set (each branch
    /// only sees rows no earlier branch accepted) — so every comparison
    /// atom is one tight `retain` loop over its columns, never a per-row
    /// recursive tree walk. Atoms are total, so decomposition order is
    /// unobservable.
    fn filter(&self, cols: &Bound<'_>, sel: &mut Vec<u32>) {
        match self {
            BoolKernel::AllOf(ks) => {
                for k in ks {
                    if sel.is_empty() {
                        return;
                    }
                    k.filter(cols, sel);
                }
            }
            BoolKernel::AnyOf(ks) => {
                let mut pending = std::mem::take(sel);
                let mut accepted: Vec<u32> = Vec::new();
                for k in ks {
                    if pending.is_empty() {
                        break;
                    }
                    let mut pass = pending.clone();
                    k.filter(cols, &mut pass);
                    if pass.len() == pending.len() {
                        // Branch accepted everything: done.
                        accepted.extend_from_slice(&pass);
                        pending.clear();
                        break;
                    }
                    // pending := pending \ pass (both sorted ascending).
                    let mut it = pass.iter().copied().peekable();
                    pending.retain(|&i| {
                        if it.peek() == Some(&i) {
                            it.next();
                            false
                        } else {
                            true
                        }
                    });
                    accepted.extend_from_slice(&pass);
                }
                // Branches accept disjoint sorted runs; restore row order.
                accepted.sort_unstable();
                *sel = accepted;
            }
            BoolKernel::Cmp(a) => sel.retain(|&i| a.eval(cols, i as usize)),
            other => sel.retain(|&i| other.eval_row(cols, i as usize)),
        }
    }
}

/// Typed column slices resolved once per sweep: kernels index these
/// directly, so the per-row cost is a slice load plus a null-bit test.
struct Bound<'a> {
    ints: Vec<(&'a [i64], Option<&'a NullMask>)>,
    floats: Vec<(&'a [f64], Option<&'a NullMask>)>,
    strs: Vec<(&'a [Arc<str>], Option<&'a NullMask>)>,
}

impl<'a> Bound<'a> {
    #[inline]
    fn int(&self, r: ColRef, i: usize) -> Option<i64> {
        let (data, nulls) = self.ints[r.col as usize];
        match nulls {
            Some(m) if m.is_null(i) => None,
            _ => Some(data[i]),
        }
    }

    #[inline]
    fn float(&self, r: ColRef, i: usize) -> Option<f64> {
        let (data, nulls) = self.floats[r.col as usize];
        match nulls {
            Some(m) if m.is_null(i) => None,
            _ => Some(data[i]),
        }
    }

    #[inline]
    fn str(&self, r: ColRef, i: usize) -> Option<&'a str> {
        let (data, nulls) = self.strs[r.col as usize];
        match nulls {
            Some(m) if m.is_null(i) => None,
            _ => Some(data[i].as_ref()),
        }
    }
}

/// Shared compile-time state: maps `(slot, field)` references onto typed
/// bind lists, validating against the concrete batch schemas.
struct KernelCx<'a> {
    batches: &'a [&'a ColumnBatch],
    /// `(slot, col, type)` of every reference, in bind order per type.
    ints: Vec<(u8, u32)>,
    floats: Vec<(u8, u32)>,
    strs: Vec<(u8, u32)>,
}

impl<'a> KernelCx<'a> {
    fn new(batches: &'a [&'a ColumnBatch]) -> Self {
        KernelCx {
            batches,
            ints: Vec::new(),
            floats: Vec::new(),
            strs: Vec::new(),
        }
    }

    /// Resolve `slot.field` to a typed reference, registering the column
    /// for binding. `None` when out of range or the column is untyped.
    fn resolve(&mut self, slot: u16, field: &str) -> Option<(ColRef, CellType)> {
        let batch = self.batches.get(slot as usize)?;
        let col = batch.column_index(field)? as u32;
        let ty = column_type(batch.column(col as usize))?;
        let list = match ty {
            CellType::Int => &mut self.ints,
            CellType::Float => &mut self.floats,
            CellType::Str => &mut self.strs,
        };
        let idx = match list.iter().position(|&(s, c)| s == slot as u8 && c == col) {
            Some(i) => i as u32,
            None => {
                list.push((slot as u8, col));
                (list.len() - 1) as u32
            }
        };
        Some((ColRef { col: idx }, ty))
    }

    fn num_operand(&mut self, op: &Operand) -> Option<NumExpr> {
        match op {
            Operand::Const(Value::Int(i)) => Some(NumExpr::IntConst(*i)),
            Operand::Const(Value::Float(f)) => Some(NumExpr::FloatConst(*f)),
            Operand::SlotField { slot, field, .. } => match self.resolve(*slot, field)? {
                (r, CellType::Int) => Some(NumExpr::IntCol(r)),
                (r, CellType::Float) => Some(NumExpr::FloatCol(r)),
                _ => None,
            },
            Operand::Bin { op, l, r } => {
                if !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div) {
                    return None;
                }
                let l = self.num_operand(l)?;
                let r = self.num_operand(r)?;
                let int = l.is_int() && r.is_int() && *op != BinOp::Div;
                Some(NumExpr::Bin {
                    op: *op,
                    int,
                    l: Box::new(l),
                    r: Box::new(r),
                })
            }
            // Whole-row slots and non-scalar constants stay on the row path.
            _ => None,
        }
    }

    fn str_operand(&mut self, op: &Operand) -> Option<StrOperand> {
        match op {
            Operand::Const(Value::Str(s)) => Some(StrOperand::Const(Arc::clone(s))),
            Operand::SlotField { slot, field, .. } => match self.resolve(*slot, field)? {
                (r, CellType::Str) => Some(StrOperand::Col(r)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Lower one comparison. Numeric×numeric and string×string compile;
    /// cross-type comparisons (rank order) stay on the row path.
    fn cmp(&mut self, op: BinOp, lhs: &Operand, rhs: &Operand) -> Option<CmpAtom> {
        if !op.is_comparison() {
            return None;
        }
        // Try strings first (a Str constant can only compare stringly).
        if let (Some(l), Some(r)) = (self.try_str(lhs), self.try_str(rhs)) {
            return Some(CmpAtom::Str { op, l, r });
        }
        let l = self.num_operand(lhs)?;
        let r = self.num_operand(rhs)?;
        if l.is_int() && r.is_int() {
            Some(CmpAtom::IntInt { op, l, r })
        } else {
            Some(CmpAtom::Num { op, l, r })
        }
    }

    /// `str_operand` without registering bindings on failure — probe-only.
    fn try_str(&mut self, op: &Operand) -> Option<StrOperand> {
        match op {
            Operand::Const(Value::Str(_)) | Operand::SlotField { .. } => self.str_operand(op),
            _ => None,
        }
    }

    fn bool_kernel(&mut self, e: &BoolExpr) -> Option<BoolKernel> {
        match e {
            BoolExpr::Cmp { op, lhs, rhs } => self.cmp(*op, lhs, rhs).map(BoolKernel::Cmp),
            BoolExpr::Not(inner) => Some(BoolKernel::Not(Box::new(self.bool_kernel(inner)?))),
            BoolExpr::AllOf(xs) => xs
                .iter()
                .map(|x| self.bool_kernel(x))
                .collect::<Option<Vec<_>>>()
                .map(BoolKernel::AllOf),
            BoolExpr::AnyOf(xs) => xs
                .iter()
                .map(|x| self.bool_kernel(x))
                .collect::<Option<Vec<_>>>()
                .map(BoolKernel::AnyOf),
            BoolExpr::AllCmp(cmps) => cmps
                .iter()
                .map(|(op, l, r)| self.cmp(*op, l, r).map(BoolKernel::Cmp))
                .collect::<Option<Vec<_>>>()
                .map(BoolKernel::AllOf),
        }
    }

    /// Bind the registered references against `batches` (the same schemas
    /// the kernel compiled against).
    fn bind_lists(
        ints: &[(u8, u32)],
        floats: &[(u8, u32)],
        strs: &[(u8, u32)],
        batches: &[&'a ColumnBatch],
    ) -> Option<Bound<'a>> {
        let mut b = Bound {
            ints: Vec::with_capacity(ints.len()),
            floats: Vec::with_capacity(floats.len()),
            strs: Vec::with_capacity(strs.len()),
        };
        for &(slot, col) in ints {
            match batches.get(slot as usize)?.column(col as usize) {
                Column::Int { data, nulls } => b.ints.push((data.as_slice(), nulls.as_ref())),
                _ => return None,
            }
        }
        for &(slot, col) in floats {
            match batches.get(slot as usize)?.column(col as usize) {
                Column::Float { data, nulls } => b.floats.push((data.as_slice(), nulls.as_ref())),
                _ => return None,
            }
        }
        for &(slot, col) in strs {
            match batches.get(slot as usize)?.column(col as usize) {
                Column::Str { data, nulls } => b.strs.push((data.as_slice(), nulls.as_ref())),
                _ => return None,
            }
        }
        Some(b)
    }
}

/// A compiled columnar predicate: refines a selection vector over whole
/// typed columns. Compile with the concrete batch(es) the program's slots
/// bind to — one batch per environment variable, two for a theta pair
/// (both sides indexed by the same row position).
pub struct PredKernel {
    root: BoolKernel,
    ints: Vec<(u8, u32)>,
    floats: Vec<(u8, u32)>,
    strs: Vec<(u8, u32)>,
}

impl PredKernel {
    /// Lower `program` against the concrete `batches` (one per slot).
    /// `None` when the program is not a single fused predicate, or any
    /// reference fails to resolve to a typed column.
    pub fn compile(program: &Program, batches: &[&ColumnBatch]) -> Option<PredKernel> {
        if program.scope_len() != batches.len() {
            return None;
        }
        let mut cx = KernelCx::new(batches);
        let root = match program.instrs() {
            [Instr::Pred(p)] => cx.bool_kernel(p)?,
            [Instr::BinFused { op, lhs, rhs }] => BoolKernel::Cmp(cx.cmp(*op, lhs, rhs)?),
            _ => return None,
        };
        Some(PredKernel {
            root,
            ints: cx.ints,
            floats: cx.floats,
            strs: cx.strs,
        })
    }

    /// Refine `sel` to the rows where the predicate is truthy. `batches`
    /// must have the schemas the kernel compiled against (returns `false`
    /// untouched otherwise, so the caller can fall back).
    pub fn filter(&self, batches: &[&ColumnBatch], sel: &mut Vec<u32>) -> bool {
        let Some(bound) = KernelCx::bind_lists(&self.ints, &self.floats, &self.strs, batches)
        else {
            return false;
        };
        self.root.filter(&bound, sel);
        true
    }
}

/// One output field of a projection kernel.
enum FieldExpr {
    /// Copy a source column (gathered by refcount bump / scalar copy).
    Copy(usize),
    /// A constant repeated per row.
    ConstV(Value),
    /// One of the four total string builtins over a string column.
    StrFunc { func: StrFuncKind, col: usize },
}

#[derive(Debug, Clone, Copy)]
enum StrFuncKind {
    Lower,
    Upper,
    Trim,
    Prefix,
}

impl StrFuncKind {
    fn of(f: &Func) -> Option<StrFuncKind> {
        match f {
            Func::Lower => Some(StrFuncKind::Lower),
            Func::Upper => Some(StrFuncKind::Upper),
            Func::Trim => Some(StrFuncKind::Trim),
            Func::Prefix => Some(StrFuncKind::Prefix),
            _ => None,
        }
    }

    /// Apply to one non-NULL cell, with exactly `eval_func`'s allocation
    /// discipline: identity results share the source `Arc`, changed
    /// results pay one allocation.
    #[inline]
    fn apply(self, s: &Arc<str>) -> Arc<str> {
        match self {
            StrFuncKind::Lower => {
                if lowercase_is_identity(s) {
                    Arc::clone(s)
                } else {
                    Arc::from(s.to_lowercase().as_str())
                }
            }
            StrFuncKind::Upper => {
                if uppercase_is_identity(s) {
                    Arc::clone(s)
                } else {
                    Arc::from(s.to_uppercase().as_str())
                }
            }
            StrFuncKind::Trim => {
                let t = s.trim();
                if t.len() == s.len() {
                    Arc::clone(s)
                } else {
                    Arc::from(t)
                }
            }
            StrFuncKind::Prefix => {
                let end = prefix_end(s);
                if end == s.len() {
                    Arc::clone(s)
                } else {
                    Arc::from(&s[..end])
                }
            }
        }
    }
}

/// A compiled columnar projection: the `transform` shape — a record whose
/// fields are column copies, constants, and single-builtin string calls —
/// or a bare single-builtin head. Produces an output [`ColumnBatch`]
/// without materializing a struct per row.
pub struct MapKernel {
    names: Vec<Arc<str>>,
    fields: Vec<FieldExpr>,
    /// Source columns referenced by index into the bound batch.
    refs: Vec<u32>,
}

impl MapKernel {
    /// Lower `program` against a single-slot `batch`. Recognized shapes:
    /// `[RecordFused]`, `[CallFused]` (bare builtin head, one unnamed
    /// output column `"value"`), and `[field…, Record]` where every field
    /// instruction is a fused call / slot-field / constant.
    pub fn compile(program: &Program, batch: &ColumnBatch) -> Option<MapKernel> {
        if program.scope_len() != 1 {
            return None;
        }
        let mut k = MapKernel {
            names: Vec::new(),
            fields: Vec::new(),
            refs: Vec::new(),
        };
        let add_ref = |col: u32, refs: &mut Vec<u32>| -> usize {
            match refs.iter().position(|&c| c == col) {
                Some(i) => i,
                None => {
                    refs.push(col);
                    refs.len() - 1
                }
            }
        };
        let field_of = |instr: &Instr, refs: &mut Vec<u32>| -> Option<FieldExpr> {
            match instr {
                Instr::Const(v) => Some(FieldExpr::ConstV(v.clone())),
                Instr::SlotField { slot: 0, field, .. } => {
                    let col = batch.column_index(field)? as u32;
                    Some(FieldExpr::Copy(add_ref(col, refs)))
                }
                Instr::CallFused { func, arg } => {
                    let func = StrFuncKind::of(func)?;
                    let Operand::SlotField { slot: 0, field, .. } = arg else {
                        return None;
                    };
                    let col = batch.column_index(field)? as u32;
                    // Builtin kernels require a string column: non-string
                    // cells would route through `to_text`, which the row
                    // path handles — keep it there.
                    if !matches!(batch.column(col as usize), Column::Str { .. }) {
                        return None;
                    }
                    Some(FieldExpr::StrFunc {
                        func,
                        col: add_ref(col, refs),
                    })
                }
                _ => None,
            }
        };
        match program.instrs() {
            [Instr::RecordFused { names, ops }] => {
                for (name, op) in names.iter().zip(ops.iter()) {
                    let fe = match op {
                        Operand::Const(v) => FieldExpr::ConstV(v.clone()),
                        Operand::SlotField { slot: 0, field, .. } => {
                            let col = batch.column_index(field)? as u32;
                            FieldExpr::Copy(add_ref(col, &mut k.refs))
                        }
                        _ => return None,
                    };
                    k.names.push(Arc::clone(name));
                    k.fields.push(fe);
                }
            }
            [single @ Instr::CallFused { .. }] => {
                k.names.push(Arc::from("value"));
                k.fields.push(field_of(single, &mut k.refs)?);
            }
            [fields @ .., Instr::Record(names)] if fields.len() == names.len() => {
                for (name, instr) in names.iter().zip(fields.iter()) {
                    k.names.push(Arc::clone(name));
                    let fe = field_of(instr, &mut k.refs)?;
                    k.fields.push(fe);
                }
            }
            _ => return None,
        }
        Some(k)
    }

    /// Apply to the rows selected by `sel`, producing one output column
    /// per field. `None` when `batch` no longer matches the compiled
    /// schema.
    pub fn apply(&self, batch: &ColumnBatch, sel: &[u32]) -> Option<ColumnBatch> {
        let srcs: Vec<&Column> = self
            .refs
            .iter()
            .map(|&c| batch.column(c as usize))
            .collect();
        let mut cols = Vec::with_capacity(self.fields.len());
        for fe in &self.fields {
            let col = match fe {
                FieldExpr::Copy(r) => srcs[*r].gather(sel),
                FieldExpr::ConstV(v) => {
                    Column::from_values(sel.iter().map(|_| v.clone()).collect())
                }
                FieldExpr::StrFunc { func, col } => {
                    let Column::Str { data, nulls } = srcs[*col] else {
                        return None;
                    };
                    let mut out: Vec<Arc<str>> = Vec::with_capacity(sel.len());
                    let mut out_nulls: Option<NullMask> = None;
                    let empty: Arc<str> = Arc::from("");
                    for (j, &i) in sel.iter().enumerate() {
                        let i = i as usize;
                        if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                            out.push(Arc::clone(&empty));
                            out_nulls
                                .get_or_insert_with(|| NullMask::new(sel.len()))
                                .set_null(j);
                        } else {
                            out.push(func.apply(&data[i]));
                        }
                    }
                    Column::Str {
                        data: out,
                        nulls: out_nulls,
                    }
                }
            };
            cols.push(col);
        }
        ColumnBatch::from_columns(self.names.clone(), cols).ok()
    }
}

/// A compiled grouping-key kernel: the `tuple_key` shape (a fused record
/// of column projections). Groups rows by hashing raw cells — the key
/// `Value` is materialized once per *distinct group*, not once per row.
pub struct GroupKeyKernel {
    names: Vec<Arc<str>>,
    /// Key columns by index into the bound batch (`None` = constant).
    keys: Vec<KeyCol>,
}

enum KeyCol {
    Col(u32),
    Const(Value),
}

impl GroupKeyKernel {
    /// Lower a `[RecordFused]` key program against `batch`.
    pub fn compile(program: &Program, batch: &ColumnBatch) -> Option<GroupKeyKernel> {
        if program.scope_len() != 1 {
            return None;
        }
        let [Instr::RecordFused { names, ops }] = program.instrs() else {
            return None;
        };
        let mut keys = Vec::with_capacity(ops.len());
        for op in ops.iter() {
            match op {
                Operand::Const(v) => keys.push(KeyCol::Const(v.clone())),
                Operand::SlotField { slot: 0, field, .. } => {
                    let col = batch.column_index(field)? as u32;
                    // Typed or not: grouping hashes cells via `Value`
                    // semantics, but `Val` columns would re-box anyway —
                    // require typed columns so the sweep stays flat.
                    column_type(batch.column(col as usize))?;
                    keys.push(KeyCol::Col(col));
                }
                _ => return None,
            }
        }
        Some(GroupKeyKernel {
            names: names.iter().map(Arc::clone).collect(),
            keys,
        })
    }

    /// Group the selected rows, returning `(key, count)` per distinct
    /// group in first-appearance order. Cells hash and compare with
    /// `Value` semantics (canonical float bits, NULL = NULL).
    pub fn group_counts(&self, batch: &ColumnBatch, sel: &[u32]) -> Option<Vec<(Value, u64)>> {
        use std::hash::Hasher;
        let cols: Vec<Option<&Column>> = self
            .keys
            .iter()
            .map(|k| match k {
                KeyCol::Col(c) => Some(batch.column(*c as usize)),
                KeyCol::Const(_) => None,
            })
            .collect();

        #[inline]
        fn hash_cell(h: &mut cleanm_values::FxHasher, col: &Column, i: usize) {
            if col.is_null(i) {
                h.write_u8(0);
                return;
            }
            match col {
                Column::Int { data, .. } => {
                    h.write_u8(2);
                    h.write_u64(Value::float_key(data[i] as f64));
                }
                Column::Float { data, .. } => {
                    h.write_u8(2);
                    h.write_u64(Value::float_key(data[i]));
                }
                Column::Bool { data, .. } => {
                    h.write_u8(1);
                    h.write_u8(data[i] as u8);
                }
                Column::Str { data, .. } => {
                    h.write_u8(3);
                    h.write(data[i].as_bytes());
                }
                Column::Val(_) => unreachable!("typed columns only"),
            }
        }

        #[inline]
        fn cells_eq(cols: &[Option<&Column>], a: usize, b: usize) -> bool {
            cols.iter().all(|c| {
                let Some(col) = c else { return true };
                match (col.is_null(a), col.is_null(b)) {
                    (true, true) => true,
                    (false, false) => match col {
                        Column::Int { data, .. } => data[a] == data[b],
                        Column::Float { data, .. } => {
                            Value::float_key(data[a]) == Value::float_key(data[b])
                        }
                        Column::Bool { data, .. } => data[a] == data[b],
                        Column::Str { data, .. } => data[a] == data[b],
                        Column::Val(_) => unreachable!("typed columns only"),
                    },
                    _ => false,
                }
            })
        }

        // hash → first group with that hash; same-hash groups chain
        // through `next` (no per-bucket allocation). Collisions resolve
        // by raw-cell comparison against each group's first row.
        const NONE: u32 = u32::MAX;
        let mut table: FxHashMap<u64, u32> = FxHashMap::default();
        // (first row, running count, next group in hash chain)
        let mut groups: Vec<(u32, u64, u32)> = Vec::new();
        for &i in sel {
            let i = i as usize;
            let mut h = cleanm_values::FxHasher::default();
            for c in &cols {
                if let Some(col) = c {
                    hash_cell(&mut h, col, i);
                } else {
                    h.write_u8(9); // constant field: same for every row
                }
            }
            let hash = h.finish();
            match table.entry(hash) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(groups.len() as u32);
                    groups.push((i as u32, 1, NONE));
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let mut g = *e.get() as usize;
                    loop {
                        if cells_eq(&cols, groups[g].0 as usize, i) {
                            groups[g].1 += 1;
                            break;
                        }
                        if groups[g].2 == NONE {
                            groups[g].2 = groups.len() as u32;
                            groups.push((i as u32, 1, NONE));
                            break;
                        }
                        g = groups[g].2 as usize;
                    }
                }
            }
        }

        // Materialize one key Value per distinct group.
        Some(
            groups
                .into_iter()
                .map(|(first, count, _)| {
                    let fields: Arc<[(Arc<str>, Value)]> = self
                        .names
                        .iter()
                        .zip(&self.keys)
                        .map(|(n, k)| {
                            let v = match k {
                                KeyCol::Col(c) => batch.column(*c as usize).value(first as usize),
                                KeyCol::Const(v) => v.clone(),
                            };
                            (Arc::clone(n), v)
                        })
                        .collect();
                    (Value::Struct(fields), count)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::eval::{eval, truthy, EvalCtx};
    use crate::calculus::CalcExpr;

    fn rows() -> Vec<Value> {
        (0..200i64)
            .map(|i| {
                Value::record([
                    ("id", Value::Int(i)),
                    (
                        "bal",
                        if i % 7 == 0 {
                            Value::Null
                        } else {
                            Value::Float(i as f64 * 1.25 - 50.0)
                        },
                    ),
                    ("seg", Value::str(if i % 3 == 0 { "A" } else { "B" })),
                ])
            })
            .collect()
    }

    fn pred_expr() -> CalcExpr {
        use crate::calculus::BinOp::*;
        // (bal * 1.5 > id and seg != "A") or id <= 3
        CalcExpr::bin(
            Or,
            CalcExpr::bin(
                And,
                CalcExpr::bin(
                    Gt,
                    CalcExpr::bin(
                        Mul,
                        CalcExpr::proj(CalcExpr::var("c"), "bal"),
                        CalcExpr::Const(Value::Float(1.5)),
                    ),
                    CalcExpr::proj(CalcExpr::var("c"), "id"),
                ),
                CalcExpr::bin(
                    Ne,
                    CalcExpr::proj(CalcExpr::var("c"), "seg"),
                    CalcExpr::Const(Value::str("A")),
                ),
            ),
            CalcExpr::bin(
                Le,
                CalcExpr::proj(CalcExpr::var("c"), "id"),
                CalcExpr::Const(Value::Int(3)),
            ),
        )
    }

    #[test]
    fn pred_kernel_matches_row_evaluation() {
        let ctx = EvalCtx::new();
        let rows = rows();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let scope = vec!["c".to_string()];
        let prog = Program::compile(&pred_expr(), &scope, &ctx).unwrap();
        let kernel = PredKernel::compile(&prog, &[&batch]).expect("fused predicate vectorizes");
        let mut sel = cleanm_values::sel_all(rows.len());
        assert!(kernel.filter(&[&batch], &mut sel));

        let survivors: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                let env = vec![("c".to_string(), (*r).clone())];
                truthy(&eval(&pred_expr(), &env, &ctx).unwrap())
            })
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel, survivors);
        assert!(!sel.is_empty() && sel.len() < rows.len(), "non-trivial");
    }

    #[test]
    fn nan_comparisons_follow_total_order() {
        let rows = vec![
            Value::record([("f", Value::Float(f64::NAN))]),
            Value::record([("f", Value::Float(1e300))]),
            Value::record([("f", Value::Null)]),
        ];
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let ctx = EvalCtx::new();
        let scope = vec!["c".to_string()];
        for (op, konst) in [
            (BinOp::Eq, Value::Float(f64::NAN)),
            (BinOp::Lt, Value::Float(f64::NAN)),
            (BinOp::Ge, Value::Float(2.0)),
            (BinOp::Ne, Value::Null),
        ] {
            let e = CalcExpr::bin(
                op,
                CalcExpr::proj(CalcExpr::var("c"), "f"),
                CalcExpr::Const(konst.clone()),
            );
            let prog = Program::compile(&e, &scope, &ctx).unwrap();
            // `x != null` style predicates may constant-fold differently;
            // only check when the kernel compiles.
            let Some(kernel) = PredKernel::compile(&prog, &[&batch]) else {
                continue;
            };
            let mut sel = cleanm_values::sel_all(rows.len());
            kernel.filter(&[&batch], &mut sel);
            let want: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    let env = vec![("c".to_string(), (*r).clone())];
                    truthy(&eval(&e, &env, &ctx).unwrap())
                })
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(sel, want, "{op:?} vs {konst:?}");
        }
    }

    #[test]
    fn map_kernel_matches_row_builtins() {
        let rows: Vec<Value> = (0..50)
            .map(|i| {
                Value::record([
                    (
                        "phone",
                        if i % 9 == 0 {
                            Value::Null
                        } else {
                            Value::str(format!("{i:03}-555"))
                        },
                    ),
                    ("name", Value::str(format!("  Name-{i} "))),
                ])
            })
            .collect();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let ctx = EvalCtx::new();
        let scope = vec!["c".to_string()];
        let e = CalcExpr::Record(vec![
            (
                "area".to_string(),
                CalcExpr::call(
                    Func::Prefix,
                    vec![CalcExpr::proj(CalcExpr::var("c"), "phone")],
                ),
            ),
            (
                "lo".to_string(),
                CalcExpr::call(
                    Func::Lower,
                    vec![CalcExpr::proj(CalcExpr::var("c"), "name")],
                ),
            ),
            (
                "t".to_string(),
                CalcExpr::call(Func::Trim, vec![CalcExpr::proj(CalcExpr::var("c"), "name")]),
            ),
        ]);
        let prog = Program::compile(&e, &scope, &ctx).unwrap();
        let kernel = MapKernel::compile(&prog, &batch).expect("builtin projection vectorizes");
        let sel = cleanm_values::sel_all(rows.len());
        let out = kernel.apply(&batch, &sel).unwrap();
        for (i, r) in rows.iter().enumerate() {
            let env = vec![("c".to_string(), r.clone())];
            assert_eq!(out.row(i), eval(&e, &env, &ctx).unwrap(), "row {i}");
        }
    }

    #[test]
    fn group_kernel_counts_match_row_grouping() {
        let rows = rows();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let ctx = EvalCtx::new();
        let scope = vec!["c".to_string()];
        let e = CalcExpr::Record(vec![
            ("k0".to_string(), CalcExpr::proj(CalcExpr::var("c"), "seg")),
            ("k1".to_string(), CalcExpr::proj(CalcExpr::var("c"), "bal")),
        ]);
        let prog = Program::compile(&e, &scope, &ctx).unwrap();
        let kernel = GroupKeyKernel::compile(&prog, &batch).expect("tuple key vectorizes");
        let sel = cleanm_values::sel_all(rows.len());
        let groups = kernel.group_counts(&batch, &sel).unwrap();

        let mut want: FxHashMap<Value, u64> = FxHashMap::default();
        for r in &rows {
            let env = vec![("c".to_string(), r.clone())];
            *want.entry(eval(&e, &env, &ctx).unwrap()).or_insert(0) += 1;
        }
        assert_eq!(groups.len(), want.len());
        for (k, n) in &groups {
            assert_eq!(want.get(k), Some(n), "group {k}");
        }
    }

    #[test]
    fn untyped_columns_refuse_to_compile() {
        let rows = vec![
            Value::record([("a", Value::Int(1))]),
            Value::record([("a", Value::str("x"))]),
        ];
        let batch = ColumnBatch::from_rows(&rows).unwrap(); // Val column
        let ctx = EvalCtx::new();
        let e = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("c"), "a"),
            CalcExpr::Const(Value::Int(5)),
        );
        let prog = Program::compile(&e, &["c".to_string()], &ctx).unwrap();
        assert!(PredKernel::compile(&prog, &[&batch]).is_none());
    }

    #[test]
    fn theta_pair_kernel_matches_eval_pair() {
        let left: Vec<Value> = (0..100i64)
            .map(|i| Value::record([("bal", Value::Float(i as f64)), ("nk", Value::Int(i % 25))]))
            .collect();
        let right: Vec<Value> = (0..100i64)
            .map(|i| {
                Value::record([
                    ("bal", Value::Float(((i * 31 + 7) % 100) as f64)),
                    ("nk", Value::Int((i * 3) % 25)),
                ])
            })
            .collect();
        let lb = ColumnBatch::from_rows(&left).unwrap();
        let rb = ColumnBatch::from_rows(&right).unwrap();
        let ctx = EvalCtx::new();
        let scope = vec!["t1".to_string(), "t2".to_string()];
        let e = CalcExpr::bin(
            BinOp::And,
            CalcExpr::bin(
                BinOp::Lt,
                CalcExpr::proj(CalcExpr::var("t1"), "bal"),
                CalcExpr::proj(CalcExpr::var("t2"), "bal"),
            ),
            CalcExpr::bin(
                BinOp::Ge,
                CalcExpr::proj(CalcExpr::var("t1"), "nk"),
                CalcExpr::proj(CalcExpr::var("t2"), "nk"),
            ),
        );
        let prog = Program::compile(&e, &scope, &ctx).unwrap();
        let kernel = PredKernel::compile(&prog, &[&lb, &rb]).expect("pair predicate vectorizes");
        let mut sel = cleanm_values::sel_all(left.len());
        assert!(kernel.filter(&[&lb, &rb], &mut sel));

        let mut scratch = Vec::new();
        let want: Vec<u32> = (0..left.len())
            .filter(|&i| {
                let l = vec![("t1".to_string(), left[i].clone())];
                let r = vec![("t2".to_string(), right[i].clone())];
                truthy(&prog.eval_pair(&l, &r, &ctx, &mut scratch).unwrap())
            })
            .map(|i| i as u32)
            .collect();
        assert_eq!(sel, want);
    }
}
