//! Fold-shape analysis for grouped consumers: when everything above a
//! `Nest` consumes the group variable only through monoid reductions, the
//! executor can skip `(key, Vec<member>)` materialization entirely and fold
//! each row straight into per-key accumulators (the streaming grouped
//! aggregation of the paper's monoid framing — a group *is* a fold).
//!
//! Two recognized consumer families:
//!
//! * **Grouped aggregates** ([`AggFoldShape`]) — the Reduce head (and any
//!   HAVING-style Selects between Reduce and Nest) reference the group
//!   only via `g.key` and aggregate comprehensions over `g.partition`
//!   (`Sum/Prod/Min/Max/Any/All`, `count_distinct(bag{…})`,
//!   `avg(bag{…})`). The whole consumer compiles to a fused group-fold
//!   program: one *key* program and one composed *item* program per
//!   aggregate slot evaluated per input row, per-key accumulator folds, a
//!   mergeable partial per key, and a *finish* program that rebuilds the
//!   head over the accumulated slot values.
//! * **Group filters** ([`AggFoldShape`] with [`AggFoldShape::keeps_groups`])
//!   — the head is the group variable itself (the FD shape: violating
//!   groups are the output) while the predicates are all aggregate-foldable.
//!   Phase one folds only the tiny accumulators (for FD's
//!   `count_distinct(…) > 1`, a distinct-RHS set capped at two values) and
//!   decides which keys pass; phase two materializes only those keys'
//!   groups — non-violating rows never shuffle.
//!
//! DEDUP's pairwise comparison and CLUSTER BY genuinely consume members
//! (`Unnest` over `g.partition`), so their plans never match and keep the
//! materialized path.

use cleanm_values::{FxHashSet, Value};

use crate::calculus::eval::merge_values;
use crate::calculus::subst::{free_vars, substitute};
use crate::calculus::{CalcExpr, Comprehension, Func, MonoidKind, Qual};

/// The variable the group key is bound to in finish-program scope.
pub(crate) const KEY_SLOT_VAR: &str = "__gkey";

/// The finish-scope variable of aggregate slot `i`.
pub(crate) fn agg_slot_var(i: usize) -> String {
    format!("__agg{i}")
}

/// What one aggregate slot accumulates.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AggKind {
    /// A primitive-monoid fold (`Sum{h(x) | x ← g.partition}` …).
    Monoid(MonoidKind),
    /// `count_distinct(bag{h(x) | x ← g.partition})`: the distinct set of
    /// head values, finished to its size. `cap` bounds the set when every
    /// consumer only tests `count > k` (the FD shape): beyond `cap`
    /// distinct values the verdict cannot change, so the accumulator stays
    /// O(1) per group.
    CountDistinct { cap: Option<usize> },
    /// `avg(bag{h(x) | x ← g.partition})`: running (sum, non-null count),
    /// finished to `sum / n` (NULL for an empty/all-null group) — the
    /// reference [`Func::Avg`] semantics.
    Avg,
}

/// One aggregate reduction a grouped consumer performs per group.
#[derive(Debug, Clone)]
pub(crate) struct AggSlot {
    pub kind: AggKind,
    /// The aggregate's member-head expression with the member variable
    /// substituted by the Nest's item expression — i.e. composed down to
    /// the *producer's* row scope, so folding evaluates one compiled
    /// program per row with no member environment in between.
    pub row_expr: CalcExpr,
}

/// A grouped consumer recognized as fully foldable.
#[derive(Debug, Clone)]
pub(crate) struct AggFoldShape {
    /// The aggregate slots, in discovery order.
    pub slots: Vec<AggSlot>,
    /// Group-level predicates (Selects between Reduce and Nest), rewritten
    /// over the finish scope, in evaluation order.
    pub preds: Vec<CalcExpr>,
    /// The Reduce head rewritten over the finish scope; `None` when the
    /// head is the group variable itself (the output keeps whole groups).
    pub head: Option<CalcExpr>,
    /// Finish-program scope: `__gkey` then one `__agg{i}` per slot.
    pub scope: Vec<String>,
}

impl AggFoldShape {
    /// Does the output keep the `{key, partition}` groups themselves
    /// (two-phase execution: fold first, materialize only passing keys)?
    pub fn keeps_groups(&self) -> bool {
        self.head.is_none()
    }
}

/// Try to recognize the consumer side of a grouped plan: the Reduce `head`
/// plus the `preds` of any Selects between Reduce and Nest, all over
/// `group_var`, with group members produced by the Nest's `item`
/// expression binding `member uses` through comprehension variables.
///
/// Returns `None` when any use of the group variable falls outside the
/// foldable forms — the caller keeps the materialized path.
pub(crate) fn recognize(
    group_var: &str,
    item: &CalcExpr,
    head: &CalcExpr,
    preds: &[&CalcExpr],
) -> Option<AggFoldShape> {
    let mut rw = Rewriter {
        group_var,
        item,
        slots: Vec::new(),
    };
    let head = match head {
        // The FD family: the head is the group itself; only the
        // predicates must fold.
        CalcExpr::Var(v) if v == group_var => None,
        other => Some(rw.rewrite(other)?),
    };
    let preds: Vec<CalcExpr> = preds.iter().map(|p| rw.rewrite(p)).collect::<Option<_>>()?;
    if head.is_none() && rw.slots.is_empty() {
        // A bare `Reduce{g | g ← Nest}` with no group predicate has
        // nothing to fold — the materialized path is already minimal.
        return None;
    }
    let mut slots = rw.slots;
    apply_distinct_caps(&mut slots, head.as_ref(), &preds);
    let mut scope = vec![KEY_SLOT_VAR.to_string()];
    scope.extend((0..slots.len()).map(agg_slot_var));
    Some(AggFoldShape {
        slots,
        preds,
        head,
        scope,
    })
}

struct Rewriter<'a> {
    group_var: &'a str,
    item: &'a CalcExpr,
    slots: Vec<AggSlot>,
}

impl Rewriter<'_> {
    /// Rewrite `e` over the finish scope, extracting aggregate slots.
    /// `None` when the group variable is used outside a foldable form.
    fn rewrite(&mut self, e: &CalcExpr) -> Option<CalcExpr> {
        // Aggregate forms first: they swallow the `g.partition` reference.
        if let Some((kind, member_var, member_head)) = self.match_aggregate(e) {
            let row_expr = compose_member(&member_head, &member_var, self.item)?;
            // Identical aggregates share one slot (e.g. `sum(x)/count(*)`
            // next to `HAVING count(*) > 1`).
            let slot = AggSlot { kind, row_expr };
            let idx = match self
                .slots
                .iter()
                .position(|s| s.kind == slot.kind && s.row_expr == slot.row_expr)
            {
                Some(i) => i,
                None => {
                    self.slots.push(slot);
                    self.slots.len() - 1
                }
            };
            return Some(CalcExpr::Var(agg_slot_var(idx)));
        }
        match e {
            CalcExpr::Proj(base, field)
                if field == "key" && matches!(&**base, CalcExpr::Var(v) if v == self.group_var) =>
            {
                Some(CalcExpr::var(KEY_SLOT_VAR))
            }
            // Any other reach into the group (bare `g`, `g.partition`
            // outside an aggregate) is not foldable.
            _ if mentions_var(e, self.group_var) => match e {
                CalcExpr::Record(fields) => Some(CalcExpr::Record(
                    fields
                        .iter()
                        .map(|(n, f)| Some((n.clone(), self.rewrite(f)?)))
                        .collect::<Option<_>>()?,
                )),
                CalcExpr::Proj(base, f) => {
                    Some(CalcExpr::Proj(Box::new(self.rewrite(base)?), f.clone()))
                }
                CalcExpr::BinOp(op, l, r) => Some(CalcExpr::BinOp(
                    *op,
                    Box::new(self.rewrite(l)?),
                    Box::new(self.rewrite(r)?),
                )),
                CalcExpr::Not(x) => Some(CalcExpr::Not(Box::new(self.rewrite(x)?))),
                CalcExpr::If(c, t, f) => Some(CalcExpr::If(
                    Box::new(self.rewrite(c)?),
                    Box::new(self.rewrite(t)?),
                    Box::new(self.rewrite(f)?),
                )),
                CalcExpr::Call(func, args) => Some(CalcExpr::Call(
                    func.clone(),
                    args.iter()
                        .map(|a| self.rewrite(a))
                        .collect::<Option<_>>()?,
                )),
                // Vars (= bare g), comprehensions, merges, exists over the
                // group: give up.
                _ => None,
            },
            // Group-free subtrees pass through untouched.
            _ => Some(e.clone()),
        }
    }

    /// Match one aggregate form over `g.partition`, returning the slot
    /// kind, the member variable, and the member-head expression.
    fn match_aggregate(&self, e: &CalcExpr) -> Option<(AggKind, String, CalcExpr)> {
        match e {
            CalcExpr::Comp(c) => {
                let (var, head) = self.partition_comp(c)?;
                match c.monoid {
                    MonoidKind::Sum
                    | MonoidKind::Prod
                    | MonoidKind::Min
                    | MonoidKind::Max
                    | MonoidKind::Any
                    | MonoidKind::All => Some((AggKind::Monoid(c.monoid.clone()), var, head)),
                    _ => None,
                }
            }
            CalcExpr::Call(Func::CountDistinct, args) => {
                let [CalcExpr::Comp(c)] = args.as_slice() else {
                    return None;
                };
                if c.monoid != MonoidKind::Bag {
                    return None;
                }
                let (var, head) = self.partition_comp(c)?;
                Some((AggKind::CountDistinct { cap: None }, var, head))
            }
            CalcExpr::Call(Func::Avg, args) => {
                let [CalcExpr::Comp(c)] = args.as_slice() else {
                    return None;
                };
                if c.monoid != MonoidKind::Bag {
                    return None;
                }
                let (var, head) = self.partition_comp(c)?;
                Some((AggKind::Avg, var, head))
            }
            _ => None,
        }
    }

    /// A comprehension whose single qualifier generates over
    /// `g.partition`, with a member head referencing only the member
    /// variable — the shape `⊕{h(x) | x ← g.partition}`.
    fn partition_comp(&self, c: &Comprehension) -> Option<(String, CalcExpr)> {
        let [Qual::Gen(var, source)] = c.quals.as_slice() else {
            return None;
        };
        let CalcExpr::Proj(base, field) = source else {
            return None;
        };
        if field != "partition" || !matches!(&**base, CalcExpr::Var(v) if v == self.group_var) {
            return None;
        }
        let head = (*c.head).clone();
        let mut frees = free_vars(&head);
        frees.remove(var);
        if !frees.is_empty() {
            return None; // head reaches outside the member (e.g. back to g)
        }
        Some((var.clone(), head))
    }
}

/// Compose a member-head expression down to the producer's row scope by
/// substituting the Nest's item expression for the member variable.
fn compose_member(head: &CalcExpr, member_var: &str, item: &CalcExpr) -> Option<CalcExpr> {
    Some(substitute(head, member_var, item))
}

fn mentions_var(e: &CalcExpr, var: &str) -> bool {
    free_vars(e).contains(var)
}

/// Bound the distinct sets of `count_distinct` slots whose value is only
/// ever compared as `count > k` (with constant integer `k`): past `k + 1`
/// distinct values the comparison cannot change, so the accumulator need
/// not grow further. This is what keeps the FD fold O(1) per group —
/// `count_distinct(rhs) > 1` caps the set at two values.
fn apply_distinct_caps(slots: &mut [AggSlot], head: Option<&CalcExpr>, preds: &[CalcExpr]) {
    for (i, slot) in slots.iter_mut().enumerate() {
        let AggKind::CountDistinct { cap } = &mut slot.kind else {
            continue;
        };
        let var = agg_slot_var(i);
        let mut max_k: Option<i64> = Some(-1);
        let mut scan = |e: &CalcExpr| scan_uses(e, &var, &mut max_k);
        if let Some(h) = head {
            scan(h);
        }
        for p in preds {
            scan(p);
        }
        if let Some(k) = max_k {
            if (0..=64).contains(&k) {
                *cap = Some(k as usize + 1);
            }
        }
    }
}

/// Walk `e` looking at every use of `var`: a use inside
/// `var > Const(Int(k))` raises the running bound, any other use clears it
/// (the exact count is observable, so no cap is sound).
fn scan_uses(e: &CalcExpr, var: &str, max_k: &mut Option<i64>) {
    if let CalcExpr::BinOp(crate::calculus::BinOp::Gt, l, r) = e {
        if let (CalcExpr::Var(v), CalcExpr::Const(Value::Int(k))) = (&**l, &**r) {
            if v == var {
                if let Some(m) = max_k {
                    *m = (*m).max(*k);
                }
                return;
            }
        }
    }
    if let CalcExpr::Var(v) = e {
        if v == var {
            *max_k = None; // observed outside the capped comparison
            return;
        }
    }
    e.for_each_child(&mut |child| scan_uses(child, var, max_k));
}

// ---------------------------------------------------------------------
// Accumulators
// ---------------------------------------------------------------------

/// One group's accumulator vector — `Data`-compatible so it can ride
/// through the runtime's fold drivers and shuffles.
pub(crate) type GroupAcc = Vec<SlotAcc>;

/// The running state of one aggregate slot.
#[derive(Debug, Clone)]
pub(crate) enum SlotAcc {
    /// A primitive monoid value (starts at the monoid's zero).
    Monoid(Value),
    /// Distinct head values, optionally capped (see
    /// [`AggKind::CountDistinct`]).
    Distinct(FxHashSet<Value>),
    /// Running sum and non-null count for `avg`.
    Avg { sum: f64, n: u64 },
}

impl AggSlot {
    /// The slot's fold identity.
    pub fn zero(&self) -> SlotAcc {
        match &self.kind {
            AggKind::Monoid(m) => SlotAcc::Monoid(m.zero()),
            AggKind::CountDistinct { .. } => SlotAcc::Distinct(FxHashSet::default()),
            AggKind::Avg => SlotAcc::Avg { sum: 0.0, n: 0 },
        }
    }

    /// Absorb one member's head value.
    pub fn fold(&self, acc: &mut SlotAcc, v: Value) -> cleanm_values::Result<()> {
        match (&self.kind, acc) {
            (AggKind::Monoid(m), SlotAcc::Monoid(a)) => {
                *a = super::execute::merge_scalar(m, std::mem::take(a), v)?;
            }
            (AggKind::CountDistinct { cap }, SlotAcc::Distinct(set)) => {
                if cap.is_none_or(|c| set.len() < c) {
                    set.insert(v);
                }
            }
            (AggKind::Avg, SlotAcc::Avg { sum, n }) => {
                if !v.is_null() {
                    *sum += v.as_float()?;
                    *n += 1;
                }
            }
            _ => unreachable!("slot/accumulator kinds diverged"),
        }
        Ok(())
    }

    /// Merge another partial into `acc` (both produced by this slot).
    pub fn merge(&self, acc: &mut SlotAcc, other: SlotAcc) -> cleanm_values::Result<()> {
        match (&self.kind, acc, other) {
            (AggKind::Monoid(m), SlotAcc::Monoid(a), SlotAcc::Monoid(b)) => {
                *a = merge_values(m, std::mem::take(a), b)?;
            }
            (AggKind::CountDistinct { cap }, SlotAcc::Distinct(set), SlotAcc::Distinct(other)) => {
                for v in other {
                    if cap.is_none_or(|c| set.len() < c) {
                        set.insert(v);
                    } else {
                        break;
                    }
                }
            }
            (AggKind::Avg, SlotAcc::Avg { sum, n }, SlotAcc::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            _ => unreachable!("slot/accumulator kinds diverged"),
        }
        Ok(())
    }

    /// Finish the accumulator into the value the rewritten consumer sees.
    pub fn finish(&self, acc: SlotAcc) -> Value {
        match acc {
            SlotAcc::Monoid(v) => v,
            SlotAcc::Distinct(set) => Value::Int(set.len() as i64),
            SlotAcc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::BinOp;

    fn partition_comp(m: MonoidKind, head: CalcExpr) -> CalcExpr {
        CalcExpr::comp(
            m,
            head,
            vec![Qual::Gen(
                "x0".into(),
                CalcExpr::proj(CalcExpr::var("g"), "partition"),
            )],
        )
    }

    fn fd_pred() -> CalcExpr {
        CalcExpr::bin(
            BinOp::Gt,
            CalcExpr::call(
                Func::CountDistinct,
                vec![partition_comp(
                    MonoidKind::Bag,
                    CalcExpr::proj(CalcExpr::var("x0"), "nationkey"),
                )],
            ),
            CalcExpr::int(1),
        )
    }

    #[test]
    fn fd_consumer_recognized_with_capped_distinct() {
        let pred = fd_pred();
        let shape =
            recognize("g", &CalcExpr::var("d"), &CalcExpr::var("g"), &[&pred]).expect("FD folds");
        assert!(shape.keeps_groups());
        assert_eq!(shape.slots.len(), 1);
        assert_eq!(
            shape.slots[0].kind,
            AggKind::CountDistinct { cap: Some(2) },
            "count_distinct > 1 needs at most two witnesses"
        );
        // The member head composed down to the scan variable.
        assert_eq!(
            shape.slots[0].row_expr,
            CalcExpr::proj(CalcExpr::var("d"), "nationkey")
        );
    }

    #[test]
    fn group_by_aggregate_head_recognized() {
        // SELECT g.key, count(*), avg(x.acctbal) … shapes.
        let head = CalcExpr::Record(vec![
            ("addr".into(), CalcExpr::proj(CalcExpr::var("g"), "key")),
            (
                "n".into(),
                partition_comp(MonoidKind::Sum, CalcExpr::int(1)),
            ),
            (
                "bal".into(),
                CalcExpr::call(
                    Func::Avg,
                    vec![partition_comp(
                        MonoidKind::Bag,
                        CalcExpr::proj(CalcExpr::var("x0"), "acctbal"),
                    )],
                ),
            ),
        ]);
        let shape = recognize("g", &CalcExpr::var("d"), &head, &[]).expect("aggregate head folds");
        assert!(!shape.keeps_groups());
        assert_eq!(shape.slots.len(), 2);
        assert_eq!(shape.scope, vec!["__gkey", "__agg0", "__agg1"]);
        let rewritten = shape.head.unwrap();
        let CalcExpr::Record(fields) = rewritten else {
            panic!("head stays a record");
        };
        assert_eq!(fields[0].1, CalcExpr::var(KEY_SLOT_VAR));
        assert_eq!(fields[1].1, CalcExpr::var("__agg0"));
    }

    #[test]
    fn identical_aggregates_share_a_slot() {
        let count = partition_comp(MonoidKind::Sum, CalcExpr::int(1));
        let head = CalcExpr::Record(vec![("n".into(), count.clone())]);
        let having = CalcExpr::bin(BinOp::Gt, count, CalcExpr::int(1));
        let shape = recognize("g", &CalcExpr::var("d"), &head, &[&having]).unwrap();
        assert_eq!(shape.slots.len(), 1, "count(*) appears once");
        // Observed in the head too: the cap must stay off.
        assert_eq!(shape.slots[0].kind, AggKind::Monoid(MonoidKind::Sum));
    }

    #[test]
    fn member_reaching_consumers_are_rejected() {
        // DEDUP-style: the head carries the group itself inside a record.
        let head = CalcExpr::Record(vec![("g".into(), CalcExpr::var("g"))]);
        assert!(recognize("g", &CalcExpr::var("d"), &head, &[]).is_none());
        // A predicate over the raw partition list.
        let pred = CalcExpr::call(
            Func::Count,
            vec![CalcExpr::proj(CalcExpr::var("g"), "partition")],
        );
        assert!(recognize("g", &CalcExpr::var("d"), &CalcExpr::var("g"), &[&pred]).is_none());
    }

    #[test]
    fn distinct_cap_cleared_when_count_is_observable() {
        // The exact distinct count is projected out: no cap is sound.
        let head = CalcExpr::Record(vec![(
            "d".into(),
            CalcExpr::call(
                Func::CountDistinct,
                vec![partition_comp(
                    MonoidKind::Bag,
                    CalcExpr::proj(CalcExpr::var("x0"), "nationkey"),
                )],
            ),
        )]);
        let shape = recognize("g", &CalcExpr::var("d"), &head, &[]).unwrap();
        assert_eq!(shape.slots[0].kind, AggKind::CountDistinct { cap: None });
    }
}
