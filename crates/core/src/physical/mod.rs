//! Physical level — translation of algebra plans to runtime operators
//! (Table 2) under an [`EngineProfile`].
//!
//! The profile is the experimental control knob of §8: the *same* logical
//! plan executes under `CleanDb` (local-aggregate Nest, M-Bucket theta
//! join, shared plan DAG), `SparkSqlLike` (sort-shuffle Nest, cartesian
//! theta join, no cross-operator sharing), or `BigDansingLike` (hash-shuffle
//! Nest, min-max block theta join, one operation at a time), so measured
//! differences are attributable to exactly the paper's claims.

pub mod execute;
mod groupfold;
pub mod kernel;
pub mod profile;
pub mod program;
pub mod qprofile;

pub use execute::{Executor, PhaseTimings, PlanDecision, RowEnv};
pub use profile::{EngineProfile, NestStrategy, ThetaStrategy};
pub use program::{env_layout, ProgramCache, RowExpr};
pub use qprofile::{ProfileNode, QueryProfile};
