//! Engine profiles: the physical policies of the three compared systems.

use serde::{Deserialize, Serialize};

/// How a `Nest` (grouping) operator shuffles data — §6 "Handling data skew".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NestStrategy {
    /// CleanDB: `aggregateByKey` — combine locally per partition, shuffle
    /// only partial groups, merge. Skew-resilient, minimal traffic.
    LocalAggregate,
    /// Spark SQL: sort-based aggregation — range-partition on sampled key
    /// quantiles, sort, group runs. Heavy keys overload single workers.
    SortShuffle,
    /// BigDansing: hash-based shuffling of every record.
    HashShuffle,
}

/// How a theta join executes — §6 "Handling theta joins".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThetaStrategy {
    /// CleanDB: statistics-aware matrix partitioning (Okcan & Riedewald).
    MBucket,
    /// BigDansing: per-block min/max pruning on the existing partitioning.
    MinMaxBlocks,
    /// Spark SQL: cartesian product followed by a filter.
    CartesianFilter,
}

/// A complete physical policy. Construct via [`EngineProfile::clean_db`],
/// [`EngineProfile::spark_sql_like`], [`EngineProfile::big_dansing_like`],
/// or [`EngineProfile::adaptive`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    pub name: String,
    pub nest: NestStrategy,
    pub theta: ThetaStrategy,
    /// Apply the §5 sharing rewrites (plan hash-consing + result memoing).
    /// Spark SQL "is unable to detect the opportunity to group the tasks
    /// into one"; BigDansing "can only apply one operation at a time".
    pub share_plans: bool,
    /// Push single-table selective predicates below expensive joins — the
    /// monoid-level filter pushdown. Spark SQL's plan for rule ψ
    /// "involv\[es\] a cartesian product followed by a filter condition"
    /// (§6), i.e. the filter stays above the product; BigDansing treats the
    /// DC as a black-box pairwise UDF.
    pub push_selective_filters: bool,
    /// Fuse `Select` chains into their downstream consumer (Nest pair
    /// emission, Reduce head evaluation, Join keying, Unnest expansion):
    /// the executor evaluates filter+consume in **one pass** over each
    /// partition instead of materializing the filtered intermediate
    /// collection first — the §5 pipelined-operator fusion the paper's
    /// code-generating backend performs. Baselines keep the operator-at-a-
    /// time execution their systems exhibit.
    pub fuse_selects: bool,
    /// Compile grouped consumers into streaming fold-into-hash grouping:
    /// when every use of a Nest's group variable is a monoid reduction
    /// (counts, sums, min/max, FD distinct-RHS tests), the executor folds
    /// values straight into per-key accumulators instead of materializing
    /// `(key, Vec<value>)` groups, and only `(key, partial)` pairs cross
    /// the shuffle. The §5 monoid-comprehension fusion applied to the wide
    /// operator; baselines keep the materialize-then-reduce execution their
    /// systems exhibit. Consumers that genuinely need the members (DEDUP
    /// pairwise comparison, CLUSTER BY) keep the materialized path either
    /// way.
    pub fold_groups: bool,
    /// Execute eligible plan nodes column-at-a-time: scans decode into
    /// typed column batches and compiled predicates / projections /
    /// grouping keys re-lower into whole-column kernels
    /// ([`crate::physical::kernel`]) that sweep `i64`/`f64`/`Arc<str>`
    /// slices behind a selection vector. Nodes whose programs do not
    /// vectorize (interpreter islands, mixed-type columns) fall back to
    /// the row path — semantics are identical either way (pinned by the
    /// `columnar_agree` differential tests). Baselines keep the row-at-a-
    /// time Volcano-style execution their systems exhibit.
    pub vectorize: bool,
    /// Cost-based mode: `nest`/`theta` above are only *defaults*, and the
    /// executor re-decides the strategy per plan node from the session's
    /// [`cleanm_stats::TableStats`] (group cardinality and skew for Nest,
    /// histogram pair-pruning estimates for ThetaJoin). Decisions are
    /// recorded per node in the report.
    pub adaptive: bool,
}

impl EngineProfile {
    /// The paper's system: all three optimization levels on.
    pub fn clean_db() -> Self {
        EngineProfile {
            name: "CleanDB".to_string(),
            nest: NestStrategy::LocalAggregate,
            theta: ThetaStrategy::MBucket,
            share_plans: true,
            push_selective_filters: true,
            fuse_selects: true,
            fold_groups: true,
            vectorize: true,
            adaptive: false,
        }
    }

    /// The Spark SQL baseline of §8.
    pub fn spark_sql_like() -> Self {
        EngineProfile {
            name: "SparkSQL".to_string(),
            nest: NestStrategy::SortShuffle,
            theta: ThetaStrategy::CartesianFilter,
            share_plans: false,
            push_selective_filters: false,
            fuse_selects: false,
            fold_groups: false,
            vectorize: false,
            adaptive: false,
        }
    }

    /// The BigDansing baseline of §8.
    pub fn big_dansing_like() -> Self {
        EngineProfile {
            name: "BigDansing".to_string(),
            nest: NestStrategy::HashShuffle,
            theta: ThetaStrategy::MinMaxBlocks,
            share_plans: false,
            push_selective_filters: false,
            fuse_selects: false,
            fold_groups: false,
            vectorize: false,
            adaptive: false,
        }
    }

    /// Cost-based profile: all cross-operator rewrites on (like
    /// [`EngineProfile::clean_db`]), but physical strategies are chosen per
    /// node from collected table statistics instead of being fixed. The
    /// `nest`/`theta` fields hold the fallback used when no statistics cover
    /// a node (e.g. a grouping key that is not a simple column).
    pub fn adaptive() -> Self {
        EngineProfile {
            name: "Adaptive".to_string(),
            nest: NestStrategy::LocalAggregate,
            theta: ThetaStrategy::MBucket,
            share_plans: true,
            push_selective_filters: true,
            fuse_selects: true,
            fold_groups: true,
            vectorize: true,
            adaptive: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_along_the_papers_axes() {
        let c = EngineProfile::clean_db();
        let s = EngineProfile::spark_sql_like();
        let b = EngineProfile::big_dansing_like();
        assert_eq!(c.nest, NestStrategy::LocalAggregate);
        assert_eq!(s.nest, NestStrategy::SortShuffle);
        assert_eq!(b.nest, NestStrategy::HashShuffle);
        assert!(c.share_plans && !s.share_plans && !b.share_plans);
        assert!(c.push_selective_filters);
        assert_eq!(s.theta, ThetaStrategy::CartesianFilter);
        assert_eq!(b.theta, ThetaStrategy::MinMaxBlocks);
    }
}
