//! Compiled row-expression evaluation for the physical executor.
//!
//! The executor knows, statically per plan node, the exact layout of the
//! row environments flowing through it ([`env_layout`] mirrors how each
//! operator constructs its `RowEnv`s). That is what makes ahead-of-time
//! compilation safe: every plan-node expression is lowered **once** via
//! [`Program::compile`] against that layout, and partitions are then
//! evaluated by the flat register machine with a per-worker reusable
//! scratch stack — no string-keyed environment scans, no per-row
//! environment allocation, no `Value` clones beyond the leaves.
//!
//! [`RowExpr`] packages a compiled program with the tree-walking
//! interpreter as reference fallback: expressions the compiler cannot
//! lower (unknown tables, variables outside the layout) keep the exact
//! interpreted semantics, and `Executor` counts both outcomes so tests can
//! pin that the hot paths really run compiled.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use cleanm_values::{Result, Value};

use crate::algebra::plan::Alg;
use crate::calculus::compile::Program;
use crate::calculus::eval::{eval, EvalCtx};
use crate::calculus::CalcExpr;

use super::execute::RowEnv;

thread_local! {
    /// Per-worker scratch stack shared by every compiled evaluation on this
    /// thread: the batch entry points clear it between rows, so the inner
    /// loop performs no stack allocation at all.
    static SCRATCH: RefCell<Vec<Value>> = const { RefCell::new(Vec::new()) };
}

/// A row-level expression as the executor runs it: compiled to a
/// slot-resolved [`Program`] when the expression lowers cleanly, with the
/// tree-walking interpreter kept as the reference fallback.
pub struct RowExpr {
    program: Option<Program>,
    expr: CalcExpr,
}

impl RowExpr {
    /// Compile `expr` against the plan node's environment layout `scope`.
    /// Compilation failure is not an error — the interpreter remains the
    /// semantics of record.
    pub fn compile(expr: &CalcExpr, scope: &[String], ctx: &EvalCtx) -> RowExpr {
        RowExpr {
            program: Program::compile(expr, scope, ctx).ok(),
            expr: expr.clone(),
        }
    }

    /// Did compilation succeed (vs. interpreter fallback)?
    pub fn is_compiled(&self) -> bool {
        self.program.is_some()
    }

    /// The compiled program, when compilation succeeded — handed to the
    /// columnar kernel compiler ([`crate::physical::kernel`]) to try a
    /// second lowering against a concrete column batch.
    pub(crate) fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// Evaluate one row environment.
    pub fn eval_env(&self, env: &RowEnv, ctx: &EvalCtx) -> Result<Value> {
        match &self.program {
            Some(p) if p.scope_len() == env.len() => {
                SCRATCH.with(|s| p.eval_with(env, ctx, &mut s.borrow_mut()))
            }
            _ => eval(&self.expr, env, ctx),
        }
    }

    /// Evaluate over a concatenated `(left, right)` environment pair
    /// without materializing the merged environment — the theta-join inner
    /// loop, which previously cloned both sides per candidate pair.
    pub fn eval_pair(&self, left: &RowEnv, right: &RowEnv, ctx: &EvalCtx) -> Result<Value> {
        match &self.program {
            Some(p) if p.scope_len() == left.len() + right.len() => {
                SCRATCH.with(|s| p.eval_pair(left, right, ctx, &mut s.borrow_mut()))
            }
            _ => {
                let mut env = left.clone();
                env.extend(right.iter().cloned());
                eval(&self.expr, &env, ctx)
            }
        }
    }
}

/// Compiled row programs shared **across executor runs** of one cached
/// plan. Keyed by the expression's rendering plus its environment layout —
/// stable identities for a given plan — so a plan-cache hit reuses every
/// program the first execution compiled instead of re-lowering them.
/// All entries are compiled against the same [`EvalCtx`] (the cached
/// plan's), which is what makes reuse sound.
#[derive(Default)]
pub struct ProgramCache {
    programs: Mutex<HashMap<(String, String), Arc<RowExpr>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ProgramCache {
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Number of cached programs (diagnostics).
    pub fn len(&self) -> usize {
        self.programs.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` of [`get_or_compile`] lookups — the
    /// program-cache hit ratio the session metrics registry reports.
    ///
    /// [`get_or_compile`]: ProgramCache::get_or_compile
    pub fn counters(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// The cached program for `(expr, scope)`, compiling and inserting it
    /// on first request.
    pub fn get_or_compile(&self, expr: &CalcExpr, scope: &[String], ctx: &EvalCtx) -> Arc<RowExpr> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = (expr.to_string(), scope.join("\u{1f}"));
        let mut map = self.programs.lock();
        if let Some(rx) = map.get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return Arc::clone(rx);
        }
        self.misses.fetch_add(1, Relaxed);
        let rx = Arc::new(RowExpr::compile(expr, scope, ctx));
        map.insert(key, Arc::clone(&rx));
        rx
    }
}

/// The ordered variable names of the row environments `plan` produces.
/// This mirrors exactly how the executor constructs `RowEnv`s: `Scan`
/// binds its variable, `Select` passes through, `Unnest` appends its
/// variable, `Nest` rebinds to the group variable, and both joins
/// concatenate left-then-right.
pub fn env_layout(plan: &Alg) -> Vec<String> {
    match plan {
        Alg::Scan { var, .. } => vec![var.clone()],
        Alg::Select { input, .. } | Alg::Reduce { input, .. } => env_layout(input),
        Alg::Unnest { input, var, .. } => {
            let mut layout = env_layout(input);
            layout.push(var.clone());
            layout
        }
        Alg::Nest { group_var, .. } => vec![group_var.clone()],
        Alg::Join { left, right, .. } | Alg::ThetaJoin { left, right, .. } => {
            let mut layout = env_layout(left);
            layout.extend(env_layout(right));
            layout
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::BinOp;
    use std::sync::Arc;

    #[test]
    fn env_layout_mirrors_operator_construction() {
        let scan = Arc::new(Alg::Scan {
            table: "t".into(),
            var: "c".into(),
        });
        let select = Arc::new(Alg::Select {
            input: Arc::clone(&scan),
            pred: CalcExpr::boolean(true),
        });
        let unnest = Arc::new(Alg::Unnest {
            input: Arc::clone(&select),
            path: CalcExpr::var("c"),
            var: "e".into(),
        });
        assert_eq!(env_layout(&unnest), vec!["c".to_string(), "e".to_string()]);
        let nest = Arc::new(Alg::Nest {
            input: Arc::clone(&unnest),
            algo: crate::calculus::FilterAlgo::Exact,
            key: CalcExpr::var("e"),
            item: CalcExpr::var("e"),
            group_var: "g".into(),
        });
        assert_eq!(env_layout(&nest), vec!["g".to_string()]);
        let join = Alg::ThetaJoin {
            left: Arc::clone(&scan),
            right: Arc::new(Alg::Scan {
                table: "t".into(),
                var: "d".into(),
            }),
            pred: CalcExpr::boolean(true),
            hint: crate::algebra::plan::ThetaHint {
                left_key: CalcExpr::var("c"),
                right_key: CalcExpr::var("d"),
                kind: crate::algebra::plan::HintKind::Any,
            },
        };
        assert_eq!(env_layout(&join), vec!["c".to_string(), "d".to_string()]);
    }

    #[test]
    fn row_expr_falls_back_when_uncompilable() {
        let ctx = EvalCtx::new();
        // References a table the context does not know: compile fails, the
        // interpreter fallback reports the same runtime error.
        let expr = CalcExpr::Exists(Box::new(CalcExpr::TableRef("missing".into())));
        let rx = RowExpr::compile(&expr, &[], &ctx);
        assert!(!rx.is_compiled());
        assert!(rx.eval_env(&Vec::new(), &ctx).is_err());
    }

    #[test]
    fn row_expr_pair_matches_merged_eval() {
        let ctx = EvalCtx::new();
        let scope = vec!["a".to_string(), "b".to_string()];
        let expr = CalcExpr::bin(BinOp::Lt, CalcExpr::var("a"), CalcExpr::var("b"));
        let rx = RowExpr::compile(&expr, &scope, &ctx);
        assert!(rx.is_compiled());
        let l = vec![("a".to_string(), Value::Int(1))];
        let r = vec![("b".to_string(), Value::Int(2))];
        assert_eq!(rx.eval_pair(&l, &r, &ctx).unwrap(), Value::Bool(true));
    }
}
