//! The CleanM language frontend.
//!
//! Listing 1 of the paper:
//!
//! ```text
//! SELECT [ALL|DISTINCT] <SELECTLIST> <FROMCLAUSE>
//! [WHERECLAUSE][GBCLAUSE[HCLAUSE]][FD|DEDUP|CLUSTER BY]*
//! FD       = FD(attributesLHS, attributesRHS)
//! DEDUP    = DEDUP(<op>[, <metric>, <theta>][, <attributes>])
//! CLUSTERBY= CLUSTER BY(<op>[, <metric>, <theta>], <term>)
//! ```
//!
//! [`lexer`] tokenizes, [`parser`] builds the [`ast`], and
//! [`crate::calculus::desugar`] (the Monoid Rewriter) lowers the AST into
//! monoid comprehensions.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{CleanOp, Expr, Query, SelectItem};
pub use parser::parse_query;
