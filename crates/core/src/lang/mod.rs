//! The CleanM language frontend.
//!
//! Listing 1 of the paper:
//!
//! ```text
//! SELECT [ALL|DISTINCT] <SELECTLIST> <FROMCLAUSE>
//! [WHERECLAUSE][GBCLAUSE[HCLAUSE]][FD|DEDUP|CLUSTER BY|DC]*
//! FD       = FD(attributesLHS, attributesRHS)
//! DEDUP    = DEDUP(<op>[, <metric>, <theta>][, <attributes>])
//! CLUSTERBY= CLUSTER BY(<op>[, <metric>, <theta>], <term>)
//! DC       = DC(<pred over t1/t2>)
//! ```
//!
//! [`lexer`] tokenizes, [`parser`] builds the [`ast`], and
//! [`crate::calculus::desugar`] (the Monoid Rewriter) lowers the AST into
//! monoid comprehensions. Every error along the way is a span-carrying
//! [`diag::Diagnostic`]; [`frontend::analyze`] runs the whole pipeline and
//! collects them, and [`pretty::pretty_query`] renders ASTs back to
//! canonical query text.

pub mod ast;
pub mod diag;
pub mod frontend;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use ast::{CleanOp, Expr, ExprKind, Query, SelectItem};
pub use diag::{Diagnostic, Phase, Span};
pub use frontend::{analyze, Analysis};
pub use parser::{parse_program, parse_query, ParseOutcome};
pub use pretty::{pretty_expr, pretty_query};
