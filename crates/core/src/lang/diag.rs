//! Span-tracked diagnostics for the CleanM frontend.
//!
//! Every lexer, parser, and desugar error carries a byte-offset [`Span`]
//! into the original query text plus a stable error [`code`], so tooling
//! (the `cleanm` CLI, golden diagnostic fixtures, editors) can pin exact
//! locations. [`Diagnostic::render`] produces the human rendering with a
//! caret underline:
//!
//! ```text
//! error[E102]: expected `)`, found keyword `FROM`
//!  --> query.cm:1:27
//!   |
//! 1 | SELECT a FROM t FD(a, b FROM
//!   |                         ^^^^
//!   = note: FD arguments must be a parenthesized expression list
//! ```
//!
//! [`code`]: Diagnostic::code

use std::fmt;

/// A half-open byte range `[start, end)` into the query source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: u32,
    /// Byte offset one past the last byte.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start: start as u32,
            end: end.max(start) as u32,
        }
    }

    /// A zero-width span at `at` (end-of-input, insertion points).
    pub fn point(at: usize) -> Self {
        Span::new(at, at)
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Byte length (zero for point spans).
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Is this a zero-width (point) span?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Which phase of the frontend produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization (E0xx codes).
    Lex,
    /// Parsing (E1xx codes).
    Parse,
    /// Desugaring / semantic lowering (E2xx codes).
    Desugar,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Desugar => write!(f, "desugar"),
        }
    }
}

// Stable diagnostic codes. Lexer errors are E0xx, parser errors E1xx,
// desugar/semantic errors E2xx. Codes are part of the tool surface (golden
// fixtures pin them); never renumber, only append.
/// Unexpected character in the input.
pub const E001_UNEXPECTED_CHAR: &str = "E001";
/// String literal not closed before end of input.
pub const E002_UNTERMINATED_STRING: &str = "E002";
/// Numeric literal that does not parse.
pub const E003_BAD_NUMBER: &str = "E003";
/// A token other than the expected one.
pub const E101_UNEXPECTED_TOKEN: &str = "E101";
/// Expected an identifier.
pub const E102_EXPECTED_IDENT: &str = "E102";
/// Input continues after a complete query without a `;` separator.
pub const E103_TRAILING_TOKENS: &str = "E103";
/// Unknown blocking operator in DEDUP/CLUSTER BY.
pub const E104_UNKNOWN_BLOCKER: &str = "E104";
/// Similarity threshold outside [0, 1].
pub const E105_BAD_THRESHOLD: &str = "E105";
/// FD without at least one LHS and one RHS attribute.
pub const E106_FD_ARITY: &str = "E106";
/// Empty statement or missing clause body.
pub const E107_EMPTY_CLAUSE: &str = "E107";
/// Unknown table alias in a column reference.
pub const E201_UNKNOWN_ALIAS: &str = "E201";
/// Unknown builtin function.
pub const E202_UNKNOWN_FUNCTION: &str = "E202";
/// `*` used where a scalar expression is required.
pub const E203_MISPLACED_STAR: &str = "E203";
/// GROUP BY combined with cleaning operators.
pub const E204_GROUP_BY_WITH_CLEANING: &str = "E204";
/// Cleaning operator missing a required argument/table.
pub const E205_OPERATOR_SHAPE: &str = "E205";
/// DC predicate must relate the two tuple variables t1/t2.
pub const E206_DC_VARS: &str = "E206";

/// One frontend error: a stable code, the source span it points at, the
/// message, and an optional note with recovery/usage guidance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable error code (`E001`…); see the module constants.
    pub code: &'static str,
    /// Which frontend phase raised it.
    pub phase: Phase,
    /// Byte span into the source text.
    pub span: Span,
    /// Primary message ("expected `)`, found keyword `FROM`").
    pub message: String,
    /// Optional secondary guidance line.
    pub note: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic without a note.
    pub fn new(code: &'static str, phase: Phase, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            phase,
            span,
            message: message.into(),
            note: None,
        }
    }

    /// Attach a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// One-line rendering: `error[E101] at 1:27: expected ...`.
    pub fn one_line(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start as usize);
        format!("error[{}] at {line}:{col}: {}", self.code, self.message)
    }

    /// Full rendering with the offending source line and a caret underline.
    /// `origin` names the source (file path or `<query>`).
    pub fn render(&self, source: &str, origin: &str) -> String {
        let start = (self.span.start as usize).min(source.len());
        let (line_no, col) = line_col(source, start);
        let line_text = source.lines().nth(line_no - 1).unwrap_or("");
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        let mut out = format!(
            "error[{}]: {}\n{pad}--> {origin}:{line_no}:{col}\n{pad} |\n{gutter} | {line_text}\n",
            self.code, self.message
        );
        // Underline: clamp the span to the rendered line, at least one caret.
        let line_start = start - (col - 1);
        let span_chars = {
            let in_line_end = (self.span.end as usize)
                .min(line_start + line_text.len())
                .max(start);
            source
                .get(start..in_line_end)
                .map(|s| s.chars().count())
                .unwrap_or(0)
                .max(1)
        };
        let lead = col - 1;
        out.push_str(&format!(
            "{pad} | {}{}\n",
            " ".repeat(lead),
            "^".repeat(span_chars)
        ));
        if let Some(note) = &self.note {
            out.push_str(&format!("{pad} = note: {note}\n"));
        }
        out
    }
}

/// 1-based (line, column) of a byte offset. Columns count characters, not
/// bytes, so caret alignment survives multi-byte input.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let before = &source[..floor_char_boundary(source, offset)];
    let line = before.matches('\n').count() + 1;
    let col = before
        .rsplit('\n')
        .next()
        .map(|l| l.chars().count())
        .unwrap_or(0)
        + 1;
    (line, col)
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Render a batch of diagnostics against one source, separated by blank
/// lines, with a trailing error count — the `cleanm check` stderr format
/// (and the golden `expected.stderr` format).
pub fn render_all(diagnostics: &[Diagnostic], source: &str, origin: &str) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.render(source, origin));
        out.push('\n');
    }
    if !diagnostics.is_empty() {
        out.push_str(&format!(
            "{} error{} emitted\n",
            diagnostics.len(),
            if diagnostics.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.join(b), Span::new(3, 12));
        assert_eq!(a.len(), 4);
        assert!(Span::point(5).is_empty());
        assert_eq!(Span::new(9, 4), Span::new(9, 9), "end clamps to start");
    }

    #[test]
    fn line_col_counts_chars() {
        let src = "ab\ncdé f";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        // 'é' is two bytes; the char after it is column 4.
        assert_eq!(line_col(src, 7), (2, 4));
        assert_eq!(line_col(src, 999), (2, 6));
    }

    #[test]
    fn render_underlines_the_span() {
        let src = "SELECT a FRM t";
        let d = Diagnostic::new(
            E101_UNEXPECTED_TOKEN,
            Phase::Parse,
            Span::new(9, 12),
            "expected FROM, found identifier `FRM`",
        )
        .with_note("did you mean `FROM`?");
        let r = d.render(src, "query.cm");
        assert!(r.contains("error[E101]"), "{r}");
        assert!(r.contains("--> query.cm:1:10"), "{r}");
        assert!(r.contains("1 | SELECT a FRM t"), "{r}");
        assert!(r.contains("|          ^^^"), "{r}");
        assert!(r.contains("= note: did you mean `FROM`?"), "{r}");
    }

    #[test]
    fn render_handles_point_span_at_eof() {
        let src = "SELECT * FROM";
        let d = Diagnostic::new(
            E107_EMPTY_CLAUSE,
            Phase::Parse,
            Span::point(src.len()),
            "expected a table name",
        );
        let r = d.render(src, "<query>");
        assert!(r.contains("^"), "{r}");
        assert!(r.ends_with('\n'), "{r:?}");
    }

    #[test]
    fn render_all_counts() {
        let src = "x";
        let d = Diagnostic::new(E001_UNEXPECTED_CHAR, Phase::Lex, Span::new(0, 1), "boom");
        let out = render_all(&[d.clone(), d], src, "f");
        assert!(out.contains("2 errors emitted"), "{out}");
        assert!(render_all(&[], src, "f").is_empty());
    }
}
