//! Recursive-descent parser for CleanM (Listing 1, plus the `DC` clause).
//!
//! The parser is *recoverable*: instead of bailing on the first error it
//! records a span-carrying [`Diagnostic`] and synchronizes at the nearest
//! statement or clause boundary (`;`, `FROM`, `WHERE`, `GROUP`, `HAVING`,
//! `FD`, `DEDUP`, `CLUSTER`, `DC`, or a list comma), so one pass over a
//! broken file reports every error. [`parse_program`] handles
//! `;`-separated multi-statement sources; [`parse_query`] is the strict
//! single-statement wrapper the engine uses.

use cleanm_text::Metric;
use cleanm_values::{Error, Result, Value};

use super::ast::{BlockSpec, CleanOp, Expr, ExprKind, Query, SelectItem, TableRef};
use super::diag::{
    Diagnostic, Phase, Span, E101_UNEXPECTED_TOKEN, E102_EXPECTED_IDENT, E103_TRAILING_TOKENS,
    E104_UNKNOWN_BLOCKER, E105_BAD_THRESHOLD, E106_FD_ARITY, E107_EMPTY_CLAUSE,
};
use super::lexer::{lex, Tok, Token};

/// The parse of one `;`-separated statement: the best-effort query (absent
/// when the statement was too broken to shape) plus its source span.
#[derive(Debug, Clone)]
pub struct Statement {
    pub query: Option<Query>,
    pub span: Span,
}

impl Statement {
    /// Did this statement parse without errors? (A `Some` query may still
    /// be a partial recovery; callers that need a trustworthy AST should
    /// also check that no diagnostics overlap [`Statement::span`].)
    pub fn is_complete(&self) -> bool {
        self.query.is_some()
    }
}

/// The outcome of parsing a whole source text.
#[derive(Debug, Clone, Default)]
pub struct ParseOutcome {
    pub statements: Vec<Statement>,
    pub diagnostics: Vec<Diagnostic>,
}

impl ParseOutcome {
    /// True when no lexical or syntactic error was recorded.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Parse a (possibly multi-statement) source text, recovering at statement
/// and clause boundaries. Never fails; inspect
/// [`ParseOutcome::diagnostics`].
pub fn parse_program(input: &str) -> ParseOutcome {
    let (tokens, mut diagnostics) = lex(input);
    let mut p = Parser {
        tokens,
        pos: 0,
        diags: Vec::new(),
        src_len: input.len(),
    };
    let mut statements = Vec::new();
    while !p.at_end() {
        if p.eat_symbol(';').is_some() {
            continue; // empty statement
        }
        let start = p.here().start as usize;
        let query = p.statement();
        let end = p.prev_end();
        statements.push(Statement {
            query,
            span: Span::new(start, end),
        });
        // Consume the separator (statement() synchronized up to it).
        let _ = p.eat_symbol(';');
    }
    diagnostics.append(&mut p.diags);
    diagnostics.sort_by_key(|d| (d.span.start, d.span.end));
    ParseOutcome {
        statements,
        diagnostics,
    }
}

/// Parse exactly one CleanM query string into its AST (strict: the first
/// diagnostic becomes an error).
pub fn parse_query(input: &str) -> Result<Query> {
    let outcome = parse_program(input);
    if let Some(d) = outcome.diagnostics.first() {
        return Err(Error::Parse(d.one_line(input)));
    }
    match outcome.statements.len() {
        0 => Err(Error::Parse("empty query".to_string())),
        1 => outcome
            .statements
            .into_iter()
            .next()
            .unwrap()
            .query
            .ok_or_else(|| Error::Parse("statement did not form a query".to_string())),
        n => Err(Error::Parse(format!(
            "expected one statement, found {n}; use run/check on multi-statement files"
        ))),
    }
}

/// Recovery signal: a diagnostic has already been recorded; unwind to the
/// nearest synchronization point.
#[derive(Debug)]
struct Recovery;

type PResult<T> = std::result::Result<T, Recovery>;

/// Keywords that open a clause — synchronization targets for recovery.
const CLAUSE_KEYWORDS: &[&str] = &[
    "FROM", "WHERE", "GROUP", "HAVING", "FD", "DEDUP", "CLUSTER", "DC",
];

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
    diags: Vec<Diagnostic>,
    src_len: usize,
}

impl Parser {
    // ------------------------------------------------------------ plumbing

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    /// Span of the current token, or a point span at end of input.
    fn here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| Span::point(self.src_len))
    }

    /// End offset of the previously consumed token.
    fn prev_end(&self) -> usize {
        self.pos
            .checked_sub(1)
            .and_then(|i| self.tokens.get(i))
            .map(|t| t.span.end as usize)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(t) => t.describe(),
            None => "end of input".to_string(),
        }
    }

    fn error(&mut self, code: &'static str, span: Span, message: String) -> Recovery {
        self.diags
            .push(Diagnostic::new(code, Phase::Parse, span, message));
        Recovery
    }

    fn error_note(
        &mut self,
        code: &'static str,
        span: Span,
        message: String,
        note: String,
    ) -> Recovery {
        self.diags
            .push(Diagnostic::new(code, Phase::Parse, span, message).with_note(note));
        Recovery
    }

    fn eat_keyword(&mut self, kw: &str) -> Option<Span> {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            let span = self.here();
            self.pos += 1;
            Some(span)
        } else {
            None
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<Span> {
        match self.eat_keyword(kw) {
            Some(s) => Ok(s),
            None => {
                let (span, found) = (self.here(), self.describe_here());
                Err(self.error(
                    E101_UNEXPECTED_TOKEN,
                    span,
                    format!("expected `{kw}`, found {found}"),
                ))
            }
        }
    }

    fn eat_symbol(&mut self, s: char) -> Option<Span> {
        if matches!(self.peek(), Some(Token::Symbol(c)) if *c == s) {
            let span = self.here();
            self.pos += 1;
            Some(span)
        } else {
            None
        }
    }

    fn expect_symbol(&mut self, s: char) -> PResult<Span> {
        match self.eat_symbol(s) {
            Some(sp) => Ok(sp),
            None => {
                let (span, found) = (self.here(), self.describe_here());
                Err(self.error(
                    E101_UNEXPECTED_TOKEN,
                    span,
                    format!("expected `{s}`, found {found}"),
                ))
            }
        }
    }

    fn ident(&mut self) -> PResult<(String, Span)> {
        match self.peek() {
            Some(Token::Ident(_)) => {
                let t = self.next().unwrap();
                match t.token {
                    Token::Ident(s) => Ok((s, t.span)),
                    _ => unreachable!(),
                }
            }
            _ => {
                let (span, found) = (self.here(), self.describe_here());
                Err(self.error(
                    E102_EXPECTED_IDENT,
                    span,
                    format!("expected an identifier, found {found}"),
                ))
            }
        }
    }

    /// Is the current token a top-level synchronization point?
    fn at_sync_point(&self, stop_at_comma: bool) -> bool {
        match self.peek() {
            None => true,
            Some(Token::Symbol(';')) => true,
            Some(Token::Symbol(',')) if stop_at_comma => true,
            Some(Token::Keyword(k)) => CLAUSE_KEYWORDS.contains(&k.as_str()),
            _ => false,
        }
    }

    /// Skip tokens until a clause keyword, `;`, or end of input —
    /// balancing parentheses so a sync point inside an argument list is
    /// not mistaken for a clause boundary. With `stop_at_comma`, a
    /// top-level `,` also stops the skip (list-element recovery).
    fn sync(&mut self, stop_at_comma: bool) {
        let mut depth: u32 = 0;
        while let Some(t) = self.peek() {
            if depth == 0 && self.at_sync_point(stop_at_comma) {
                return;
            }
            match t {
                Token::Symbol('(') => depth += 1,
                Token::Symbol(')') => depth = depth.saturating_sub(1),
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skip to the closing `)` of an already-open group (or a clause
    /// boundary if the parens never close) and consume it.
    fn sync_close_paren(&mut self) {
        let mut depth: u32 = 0;
        while let Some(t) = self.peek() {
            match t {
                Token::Symbol('(') => depth += 1,
                Token::Symbol(')') => {
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                    depth -= 1;
                }
                Token::Symbol(';') => return,
                Token::Keyword(k) if depth == 0 && CLAUSE_KEYWORDS.contains(&k.as_str()) => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    // ------------------------------------------------------------- grammar

    /// One statement, recovering at clause boundaries. Returns the
    /// best-effort query, or `None` when it did not even start like one.
    fn statement(&mut self) -> Option<Query> {
        if self.eat_keyword("SELECT").is_none() {
            let (span, found) = (self.here(), self.describe_here());
            self.error(
                E101_UNEXPECTED_TOKEN,
                span,
                format!("expected `SELECT` at the start of a statement, found {found}"),
            );
            self.sync(false);
            // Skip any stray clause tokens too: resync until `;`/EOF.
            while !self.at_end() && !matches!(self.peek(), Some(Token::Symbol(';'))) {
                self.pos += 1;
                self.sync(false);
            }
            return None;
        }
        let distinct = if self.eat_keyword("DISTINCT").is_some() {
            true
        } else {
            let _ = self.eat_keyword("ALL");
            false
        };
        let select = self.select_list();
        let from = if self.expect_keyword("FROM").is_ok() {
            self.table_list()
        } else {
            self.sync(false);
            // A `FROM` may still be ahead (e.g. a stray token before it).
            if self.eat_keyword("FROM").is_some() {
                self.table_list()
            } else {
                Vec::new()
            }
        };
        let mut where_clause = None;
        if self.eat_keyword("WHERE").is_some() {
            match self.expr() {
                Ok(e) => where_clause = Some(e),
                Err(Recovery) => self.sync(false),
            }
        }
        let mut group_by = Vec::new();
        let mut having = None;
        if self.eat_keyword("GROUP").is_some() {
            if self.expect_keyword("BY").is_err() {
                self.sync(false);
            } else {
                loop {
                    match self.expr() {
                        Ok(e) => group_by.push(e),
                        Err(Recovery) => {
                            self.sync(true);
                        }
                    }
                    if self.eat_symbol(',').is_none() {
                        break;
                    }
                }
            }
            if self.eat_keyword("HAVING").is_some() {
                match self.expr() {
                    Ok(e) => having = Some(e),
                    Err(Recovery) => self.sync(false),
                }
            }
        }
        let mut clean_ops = Vec::new();
        loop {
            if let Some(kw) = self.eat_keyword("FD") {
                match self.fd_op(kw) {
                    Ok(op) => clean_ops.push(op),
                    Err(Recovery) => self.sync_close_paren(),
                }
            } else if let Some(kw) = self.eat_keyword("DEDUP") {
                match self.dedup_op(kw) {
                    Ok(op) => clean_ops.push(op),
                    Err(Recovery) => self.sync_close_paren(),
                }
            } else if let Some(kw) = self.eat_keyword("CLUSTER") {
                let parsed = self
                    .expect_keyword("BY")
                    .and_then(|_| self.cluster_by_op(kw));
                match parsed {
                    Ok(op) => clean_ops.push(op),
                    Err(Recovery) => self.sync_close_paren(),
                }
            } else if let Some(kw) = self.eat_keyword("DC") {
                match self.dc_op(kw) {
                    Ok(op) => clean_ops.push(op),
                    Err(Recovery) => self.sync_close_paren(),
                }
            } else {
                break;
            }
        }
        if !self.at_end() && !matches!(self.peek(), Some(Token::Symbol(';'))) {
            let (span, found) = (self.here(), self.describe_here());
            self.error_note(
                E103_TRAILING_TOKENS,
                span,
                format!("unexpected {found} after the end of the query"),
                "statements are separated by `;`".to_string(),
            );
            self.sync(false);
            while !self.at_end() && !matches!(self.peek(), Some(Token::Symbol(';'))) {
                self.pos += 1;
                self.sync(false);
            }
        }
        Some(Query {
            distinct,
            select,
            from,
            where_clause,
            group_by,
            having,
            clean_ops,
        })
    }

    fn select_list(&mut self) -> Vec<SelectItem> {
        let mut items = Vec::new();
        loop {
            let item = (|| -> PResult<SelectItem> {
                let expr = if let Some(star) = self.eat_symbol('*') {
                    Expr::new(ExprKind::Star, star)
                } else {
                    self.expr()?
                };
                let alias = if self.eat_keyword("AS").is_some() {
                    Some(self.ident()?.0)
                } else {
                    None
                };
                Ok(SelectItem { expr, alias })
            })();
            match item {
                Ok(i) => items.push(i),
                Err(Recovery) => self.sync(true),
            }
            if self.eat_symbol(',').is_none() {
                break;
            }
        }
        items
    }

    fn table_list(&mut self) -> Vec<TableRef> {
        let mut tables = Vec::new();
        loop {
            match self.ident() {
                Ok((name, span)) => {
                    // Optional alias: a bare identifier not followed by `.`.
                    let alias = match self.peek() {
                        Some(Token::Ident(_)) => {
                            let (a, a_span) = self.ident().expect("peeked ident");
                            tables.push(TableRef {
                                name,
                                alias: Some(a),
                                span: span.join(a_span),
                            });
                            if self.eat_symbol(',').is_none() {
                                break;
                            }
                            continue;
                        }
                        _ => None,
                    };
                    tables.push(TableRef { name, alias, span });
                }
                Err(Recovery) => self.sync(true),
            }
            if self.eat_symbol(',').is_none() {
                break;
            }
        }
        tables
    }

    // FD(lhs…, rhs…): with multi-attribute sides the last argument is the
    // RHS unless a `|` separator splits them; the common two-argument form
    // FD(a, b) reads as lhs=[a], rhs=[b].
    fn fd_op(&mut self, kw: Span) -> PResult<CleanOp> {
        self.expect_symbol('(')?;
        let mut exprs = vec![self.expr()?];
        let mut split_at = None;
        loop {
            if self.eat_symbol('|').is_some() {
                split_at = Some(exprs.len());
                exprs.push(self.expr()?);
                continue;
            }
            if self.eat_symbol(',').is_some() {
                exprs.push(self.expr()?);
                continue;
            }
            break;
        }
        let close = self.expect_symbol(')')?;
        let span = kw.join(close);
        let split = split_at.unwrap_or(exprs.len().saturating_sub(1).max(1));
        if split >= exprs.len() {
            return Err(self.error_note(
                E106_FD_ARITY,
                span,
                "FD needs at least one LHS and one RHS attribute".to_string(),
                "write FD(lhs, rhs) or FD(a, b | c) for multi-attribute sides".to_string(),
            ));
        }
        let rhs = exprs.split_off(split);
        Ok(CleanOp::Fd {
            lhs: exprs,
            rhs,
            span,
        })
    }

    // DEDUP(op[, metric, theta][, attributes…])
    fn dedup_op(&mut self, kw: Span) -> PResult<CleanOp> {
        self.expect_symbol('(')?;
        let op = self.block_spec()?;
        let (metric, theta) = self.optional_metric_theta()?;
        let mut attributes = Vec::new();
        while self.eat_symbol(',').is_some() {
            attributes.push(self.expr()?);
        }
        let close = self.expect_symbol(')')?;
        Ok(CleanOp::Dedup {
            op,
            metric,
            theta,
            attributes,
            span: kw.join(close),
        })
    }

    // CLUSTER BY(op[, metric, theta], term)
    fn cluster_by_op(&mut self, kw: Span) -> PResult<CleanOp> {
        self.expect_symbol('(')?;
        let op = self.block_spec()?;
        let (metric, theta) = self.optional_metric_theta()?;
        self.expect_symbol(',')?;
        let term = self.expr()?;
        let close = self.expect_symbol(')')?;
        Ok(CleanOp::ClusterBy {
            op,
            metric,
            theta,
            term,
            span: kw.join(close),
        })
    }

    // DC(pred) — two-tuple denial constraint over `t1`/`t2`.
    fn dc_op(&mut self, kw: Span) -> PResult<CleanOp> {
        self.expect_symbol('(')?;
        let pred = self.expr()?;
        let close = self.expect_symbol(')')?;
        Ok(CleanOp::Dc {
            pred,
            span: kw.join(close),
        })
    }

    fn block_spec(&mut self) -> PResult<BlockSpec> {
        let (raw, span) = self.ident()?;
        let name = raw.to_lowercase();
        // Optional parameter: token_filtering(3), kmeans(10).
        let param = if self.eat_symbol('(').is_some() {
            let v = match self.peek() {
                Some(Token::Int(i)) if *i > 0 => {
                    let v = *i as usize;
                    self.pos += 1;
                    v
                }
                _ => {
                    let (span, found) = (self.here(), self.describe_here());
                    return Err(self.error(
                        E101_UNEXPECTED_TOKEN,
                        span,
                        format!("expected a positive integer parameter, found {found}"),
                    ));
                }
            };
            self.expect_symbol(')')?;
            Some(v)
        } else {
            None
        };
        match name.as_str() {
            "token_filtering" | "tf" => Ok(BlockSpec::TokenFiltering {
                q: param.unwrap_or(3),
            }),
            "kmeans" | "k_means" => Ok(BlockSpec::KMeans {
                k: param.unwrap_or(10),
            }),
            "exact" => Ok(BlockSpec::Exact),
            "length_band" => Ok(BlockSpec::LengthBand {
                width: param.unwrap_or(4),
            }),
            other => Err(self.error_note(
                E104_UNKNOWN_BLOCKER,
                span,
                format!("unknown blocking op `{other}`"),
                "one of: exact, token_filtering(q), kmeans(k), length_band(w)".to_string(),
            )),
        }
    }

    /// `, metric, theta` — optional; defaults are Levenshtein / 0.8.
    fn optional_metric_theta(&mut self) -> PResult<(Metric, f64)> {
        let save = self.pos;
        if self.eat_symbol(',').is_some() {
            if let Some(Token::Ident(name)) = self.peek().cloned() {
                if let Some(metric) = Metric::parse(&name) {
                    self.pos += 1;
                    self.expect_symbol(',')?;
                    let (theta, theta_span) = match self.peek() {
                        Some(Token::Float(f)) => {
                            let (f, s) = (*f, self.here());
                            self.pos += 1;
                            (f, s)
                        }
                        Some(Token::Int(i)) => {
                            let (f, s) = (*i as f64, self.here());
                            self.pos += 1;
                            (f, s)
                        }
                        _ => {
                            let (span, found) = (self.here(), self.describe_here());
                            return Err(self.error(
                                E101_UNEXPECTED_TOKEN,
                                span,
                                format!("expected a similarity threshold, found {found}"),
                            ));
                        }
                    };
                    if !(0.0..=1.0).contains(&theta) {
                        return Err(self.error(
                            E105_BAD_THRESHOLD,
                            theta_span,
                            format!("similarity threshold {theta} outside [0, 1]"),
                        ));
                    }
                    return Ok((metric, theta));
                }
            }
            // Not a metric: rewind, the comma belongs to the attribute list.
            self.pos = save;
        }
        Ok((Metric::Levenshtein, 0.8))
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn bin(op: &str, left: Expr, right: Expr) -> Expr {
        let span = left.span.join(right.span);
        Expr::new(
            ExprKind::BinOp {
                op: op.to_string(),
                left: Box::new(left),
                right: Box::new(right),
            },
            span,
        )
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR").is_some() {
            let right = self.and_expr()?;
            left = Self::bin("OR", left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND").is_some() {
            let right = self.not_expr()?;
            left = Self::bin("AND", left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> PResult<Expr> {
        if let Some(kw) = self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            let span = kw.join(inner.span);
            Ok(Expr::new(ExprKind::Not(Box::new(inner)), span))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> PResult<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Symbol('=')) => Some("=".to_string()),
            Some(Token::Symbol('<')) => Some("<".to_string()),
            Some(Token::Symbol('>')) => Some(">".to_string()),
            Some(Token::Op(o)) => Some(o.clone()),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            Ok(Self::bin(&op, left, right))
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol('+')) => "+",
                Some(Token::Symbol('-')) => "-",
                _ => break,
            }
            .to_string();
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Self::bin(&op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol('*')) => "*",
                Some(Token::Symbol('/')) => "/",
                _ => break,
            }
            .to_string();
            self.pos += 1;
            let right = self.primary()?;
            left = Self::bin(&op, left, right);
        }
        Ok(left)
    }

    fn primary(&mut self) -> PResult<Expr> {
        // Peek, don't consume: a token that cannot start an expression must
        // stay put so recovery can synchronize on it (`;`, clause keywords).
        let Some(tok) = self.tokens.get(self.pos).cloned() else {
            let span = Span::point(self.src_len);
            return Err(self.error(
                E107_EMPTY_CLAUSE,
                span,
                "expected an expression, found end of input".to_string(),
            ));
        };
        let span = tok.span;
        match tok.token {
            Token::Op(_) | Token::Symbol(_) if !matches!(tok.token, Token::Symbol('(')) => {
                return Err(self.error(
                    E101_UNEXPECTED_TOKEN,
                    span,
                    format!("expected an expression, found {}", tok.token.describe()),
                ));
            }
            Token::Keyword(ref k) if !matches!(k.as_str(), "NULL" | "TRUE" | "FALSE") => {
                return Err(self.error(
                    E101_UNEXPECTED_TOKEN,
                    span,
                    format!("expected an expression, found {}", tok.token.describe()),
                ));
            }
            _ => {}
        }
        self.pos += 1;
        match tok.token {
            Token::Int(i) => Ok(Expr::new(ExprKind::Literal(Value::Int(i)), span)),
            Token::Float(f) => Ok(Expr::new(ExprKind::Literal(Value::Float(f)), span)),
            Token::Str(s) => Ok(Expr::new(ExprKind::Literal(Value::from(s)), span)),
            Token::Keyword(k) if k == "NULL" => Ok(Expr::new(ExprKind::Literal(Value::Null), span)),
            Token::Keyword(k) if k == "TRUE" => {
                Ok(Expr::new(ExprKind::Literal(Value::Bool(true)), span))
            }
            Token::Keyword(k) if k == "FALSE" => {
                Ok(Expr::new(ExprKind::Literal(Value::Bool(false)), span))
            }
            Token::Symbol('(') => {
                let e = self.expr()?;
                let close = self.expect_symbol(')')?;
                Ok(Expr::new(e.kind, span.join(close)))
            }
            Token::Ident(name) => {
                // Function call?
                if self.eat_symbol('(').is_some() {
                    let mut args = Vec::new();
                    let close = if let Some(c) = self.eat_symbol(')') {
                        c
                    } else {
                        loop {
                            // `count(*)`-style star argument.
                            if let Some(star) = self.eat_symbol('*') {
                                args.push(Expr::new(ExprKind::Star, star));
                            } else {
                                args.push(self.expr()?);
                            }
                            if self.eat_symbol(',').is_none() {
                                break;
                            }
                        }
                        self.expect_symbol(')')?
                    };
                    return Ok(Expr::new(ExprKind::Call { name, args }, span.join(close)));
                }
                // Qualified column?
                if self.eat_symbol('.').is_some() {
                    let (col, col_span) = self.ident()?;
                    return Ok(Expr::new(
                        ExprKind::Column {
                            table: Some(name),
                            name: col,
                        },
                        span.join(col_span),
                    ));
                }
                Ok(Expr::new(ExprKind::Column { table: None, name }, span))
            }
            other => Err(self.error(
                E101_UNEXPECTED_TOKEN,
                span,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT name, address FROM customer").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from[0].name, "customer");
        assert!(q.clean_ops.is_empty());
        assert!(!q.distinct);
    }

    #[test]
    fn distinct_where_group_by() {
        let q = parse_query(
            "SELECT DISTINCT c.name FROM customer c \
             WHERE c.acctbal > 100 AND NOT c.name = 'x' \
             GROUP BY c.nationkey HAVING count(c.name) > 1",
        )
        .unwrap();
        assert!(q.distinct);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
    }

    #[test]
    fn running_example_parses() {
        let q = parse_query(
            "SELECT c.name, c.address, * FROM customer c, dictionary d \
             FD(c.address, prefix(c.phone)) \
             DEDUP(token_filtering, LD, 0.8, c.address) \
             CLUSTER BY(token_filtering, LD, 0.8, c.name)",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.clean_ops.len(), 3);
        match &q.clean_ops[0] {
            CleanOp::Fd { lhs, rhs, .. } => {
                assert_eq!(lhs.len(), 1);
                assert!(matches!(&rhs[0].kind, ExprKind::Call { name, .. } if name == "prefix"));
            }
            other => panic!("{other:?}"),
        }
        match &q.clean_ops[1] {
            CleanOp::Dedup {
                op,
                metric,
                theta,
                attributes,
                ..
            } => {
                assert_eq!(*op, BlockSpec::TokenFiltering { q: 3 });
                assert_eq!(*metric, Metric::Levenshtein);
                assert_eq!(*theta, 0.8);
                assert_eq!(attributes.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        match &q.clean_ops[2] {
            CleanOp::ClusterBy { term, .. } => {
                assert!(matches!(&term.kind, ExprKind::Column { name, .. } if name == "name"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dedup_defaults() {
        let q = parse_query("SELECT * FROM t DEDUP(exact, name)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::Dedup {
                op,
                metric,
                theta,
                attributes,
                ..
            } => {
                assert_eq!(*op, BlockSpec::Exact);
                assert_eq!(*metric, Metric::Levenshtein);
                assert_eq!(*theta, 0.8);
                assert_eq!(attributes.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parameterized_blockers() {
        let q = parse_query("SELECT * FROM t DEDUP(token_filtering(2), LD, 0.9, name)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::Dedup { op, theta, .. } => {
                assert_eq!(*op, BlockSpec::TokenFiltering { q: 2 });
                assert_eq!(*theta, 0.9);
            }
            other => panic!("{other:?}"),
        }
        let q = parse_query("SELECT * FROM t, d CLUSTER BY(kmeans(5), LD, 0.7, name)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::ClusterBy { op, .. } => assert_eq!(*op, BlockSpec::KMeans { k: 5 }),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_attribute_fd() {
        let q = parse_query("SELECT * FROM t FD(a, b | c)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::Fd { lhs, rhs, .. } => {
                assert_eq!(lhs.len(), 2);
                assert_eq!(rhs.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        // Default split: last expr is RHS.
        let q = parse_query("SELECT * FROM t FD(a, b, c)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::Fd { lhs, rhs, .. } => {
                assert_eq!(lhs.len(), 2);
                assert_eq!(rhs.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dc_clause_parses() {
        let q = parse_query("SELECT * FROM t DC(t1.region = t2.region AND t1.amount > t2.amount)")
            .unwrap();
        match &q.clean_ops[0] {
            CleanOp::Dc { pred, .. } => {
                assert!(matches!(&pred.kind, ExprKind::BinOp { op, .. } if op == "AND"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("FROM t").is_err());
        assert!(parse_query("SELECT * FROM").is_err());
        assert!(parse_query("SELECT * FROM t DEDUP(bogus_op, x)").is_err());
        assert!(parse_query("SELECT * FROM t FD(a)").is_err());
        assert!(parse_query("SELECT * FROM t WHERE").is_err());
        assert!(parse_query("SELECT * FROM t DEDUP(tf, LD, 1.5, x)").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("SELECT a + b * c FROM t").unwrap();
        match &q.select[0].expr.kind {
            ExprKind::BinOp { op, right, .. } => {
                assert_eq!(op, "+");
                assert!(matches!(&right.kind, ExprKind::BinOp { op, .. } if op == "*"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spans_point_at_the_source() {
        let src = "SELECT o.name FROM orders o WHERE o.amount > 10";
        let q = parse_query(src).unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(
            &src[w.span.start as usize..w.span.end as usize],
            "o.amount > 10"
        );
        let sel = &q.select[0].expr;
        assert_eq!(
            &src[sel.span.start as usize..sel.span.end as usize],
            "o.name"
        );
    }

    #[test]
    fn recovers_multiple_errors_in_one_pass() {
        let src = "SELECT o.name, FROM orders o WHERE ; \
                   SELECT * FORM orders; \
                   SELECT * FROM orders o FD(o.region |)";
        let out = parse_program(src);
        assert!(out.diagnostics.len() >= 3, "{:#?}", out.diagnostics);
        assert_eq!(out.statements.len(), 3);
        // Every diagnostic carries a non-default location or EOF point.
        for d in &out.diagnostics {
            assert!(d.span.end as usize <= src.len());
        }
    }

    #[test]
    fn recovery_resumes_at_clause_boundaries() {
        // The broken WHERE must not swallow the FD clause that follows.
        let out = parse_program("SELECT * FROM t WHERE > 3 FD(a, b)");
        assert!(!out.diagnostics.is_empty());
        let q = out.statements[0].query.as_ref().unwrap();
        assert_eq!(q.clean_ops.len(), 1);
    }

    #[test]
    fn multi_statement_program() {
        let out = parse_program("SELECT * FROM a; SELECT * FROM b;");
        assert!(out.is_clean(), "{:?}", out.diagnostics);
        assert_eq!(out.statements.len(), 2);
        assert!(out.statements.iter().all(|s| s.is_complete()));
    }

    #[test]
    fn strict_parse_rejects_multi_statement() {
        assert!(parse_query("SELECT * FROM a; SELECT * FROM b").is_err());
        // A single trailing `;` is fine.
        assert!(parse_query("SELECT * FROM a;").is_ok());
    }
}
