//! Recursive-descent parser for CleanM (Listing 1).

use cleanm_text::Metric;
use cleanm_values::{Error, Result, Value};

use super::ast::{BlockSpec, CleanOp, Expr, Query, SelectItem, TableRef};
use super::lexer::{tokenize, Token};

/// Parse a CleanM query string into its AST.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos < p.tokens.len() {
        return Err(Error::Parse(format!(
            "trailing tokens after query: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: char) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(c)) if *c == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: char) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected `{s}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ------------------------------------------------------------- grammar

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.eat_keyword("DISTINCT") {
            true
        } else {
            let _ = self.eat_keyword("ALL");
            false
        };
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_from_list()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        let mut having = None;
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            if self.eat_keyword("HAVING") {
                having = Some(self.expr()?);
            }
        }
        let mut clean_ops = Vec::new();
        loop {
            if self.eat_keyword("FD") {
                clean_ops.push(self.fd_op()?);
            } else if self.eat_keyword("DEDUP") {
                clean_ops.push(self.dedup_op()?);
            } else if self.eat_keyword("CLUSTER") {
                self.expect_keyword("BY")?;
                clean_ops.push(self.cluster_by_op()?);
            } else {
                break;
            }
        }
        Ok(Query {
            distinct,
            select,
            from,
            where_clause,
            group_by,
            having,
            clean_ops,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            let expr = if self.eat_symbol('*') {
                Expr::Star
            } else {
                self.expr()?
            };
            let alias = if self.eat_keyword("AS") {
                Some(self.ident()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(items)
    }

    fn parse_from_list(&mut self) -> Result<Vec<TableRef>> {
        let mut tables = Vec::new();
        loop {
            let name = self.ident()?;
            // Optional alias: a bare identifier not followed by `.`.
            let alias = match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            };
            tables.push(TableRef { name, alias });
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(tables)
    }

    // FD(lhs…, rhs…): with multi-attribute sides the last argument is the
    // RHS unless a `|` separator splits them; the common two-argument form
    // FD(a, b) reads as lhs=[a], rhs=[b].
    fn fd_op(&mut self) -> Result<CleanOp> {
        self.expect_symbol('(')?;
        let mut exprs = vec![self.expr()?];
        let mut split_at = None;
        loop {
            if self.eat_symbol('|') {
                split_at = Some(exprs.len());
                exprs.push(self.expr()?);
                continue;
            }
            if self.eat_symbol(',') {
                exprs.push(self.expr()?);
                continue;
            }
            break;
        }
        self.expect_symbol(')')?;
        let split = split_at.unwrap_or(exprs.len().saturating_sub(1).max(1));
        if split >= exprs.len() {
            return Err(Error::Parse(
                "FD needs at least one LHS and one RHS attribute".to_string(),
            ));
        }
        let rhs = exprs.split_off(split);
        Ok(CleanOp::Fd { lhs: exprs, rhs })
    }

    // DEDUP(op[, metric, theta][, attributes…])
    fn dedup_op(&mut self) -> Result<CleanOp> {
        self.expect_symbol('(')?;
        let op = self.block_spec()?;
        let (metric, theta) = self.optional_metric_theta()?;
        let mut attributes = Vec::new();
        while self.eat_symbol(',') {
            attributes.push(self.expr()?);
        }
        self.expect_symbol(')')?;
        Ok(CleanOp::Dedup {
            op,
            metric,
            theta,
            attributes,
        })
    }

    // CLUSTER BY(op[, metric, theta], term)
    fn cluster_by_op(&mut self) -> Result<CleanOp> {
        self.expect_symbol('(')?;
        let op = self.block_spec()?;
        let (metric, theta) = self.optional_metric_theta()?;
        self.expect_symbol(',')?;
        let term = self.expr()?;
        self.expect_symbol(')')?;
        Ok(CleanOp::ClusterBy {
            op,
            metric,
            theta,
            term,
        })
    }

    fn block_spec(&mut self) -> Result<BlockSpec> {
        let name = self.ident()?.to_lowercase();
        // Optional parameter: token_filtering(3), kmeans(10).
        let param = if self.eat_symbol('(') {
            let v = match self.next() {
                Some(Token::Int(i)) if i > 0 => i as usize,
                other => {
                    return Err(Error::Parse(format!(
                        "expected positive integer parameter, found {other:?}"
                    )))
                }
            };
            self.expect_symbol(')')?;
            Some(v)
        } else {
            None
        };
        match name.as_str() {
            "token_filtering" | "tf" => Ok(BlockSpec::TokenFiltering {
                q: param.unwrap_or(3),
            }),
            "kmeans" | "k_means" => Ok(BlockSpec::KMeans {
                k: param.unwrap_or(10),
            }),
            "exact" => Ok(BlockSpec::Exact),
            "length_band" => Ok(BlockSpec::LengthBand {
                width: param.unwrap_or(4),
            }),
            other => Err(Error::Parse(format!("unknown blocking op `{other}`"))),
        }
    }

    /// `, metric, theta` — optional; defaults are Levenshtein / 0.8.
    fn optional_metric_theta(&mut self) -> Result<(Metric, f64)> {
        let save = self.pos;
        if self.eat_symbol(',') {
            if let Some(Token::Ident(name)) = self.peek().cloned() {
                if let Some(metric) = Metric::parse(&name) {
                    self.pos += 1;
                    self.expect_symbol(',')?;
                    let theta = match self.next() {
                        Some(Token::Float(f)) => f,
                        Some(Token::Int(i)) => i as f64,
                        other => {
                            return Err(Error::Parse(format!(
                                "expected threshold, found {other:?}"
                            )))
                        }
                    };
                    if !(0.0..=1.0).contains(&theta) {
                        return Err(Error::Parse(format!(
                            "similarity threshold {theta} outside [0, 1]"
                        )));
                    }
                    return Ok((metric, theta));
                }
            }
            // Not a metric: rewind, the comma belongs to the attribute list.
            self.pos = save;
        }
        Ok((Metric::Levenshtein, 0.8))
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::BinOp {
                op: "OR".into(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::BinOp {
                op: "AND".into(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Symbol('=')) => Some("=".to_string()),
            Some(Token::Symbol('<')) => Some("<".to_string()),
            Some(Token::Symbol('>')) => Some(">".to_string()),
            Some(Token::Op(o)) => Some(o.clone()),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            Ok(Expr::BinOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            })
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol('+')) => "+",
                Some(Token::Symbol('-')) => "-",
                _ => break,
            }
            .to_string();
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::BinOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol('*')) => "*",
                Some(Token::Symbol('/')) => "/",
                _ => break,
            }
            .to_string();
            self.pos += 1;
            let right = self.primary()?;
            left = Expr::BinOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::from(s))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::Symbol('(')) => {
                let e = self.expr()?;
                self.expect_symbol(')')?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                // Function call?
                if self.eat_symbol('(') {
                    let mut args = Vec::new();
                    if !self.eat_symbol(')') {
                        loop {
                            // `count(*)`-style star argument.
                            if self.eat_symbol('*') {
                                args.push(Expr::Star);
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat_symbol(',') {
                                break;
                            }
                        }
                        self.expect_symbol(')')?;
                    }
                    return Ok(Expr::Call { name, args });
                }
                // Qualified column?
                if self.eat_symbol('.') {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT name, address FROM customer").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from[0].name, "customer");
        assert!(q.clean_ops.is_empty());
        assert!(!q.distinct);
    }

    #[test]
    fn distinct_where_group_by() {
        let q = parse_query(
            "SELECT DISTINCT c.name FROM customer c \
             WHERE c.acctbal > 100 AND NOT c.name = 'x' \
             GROUP BY c.nationkey HAVING count(c.name) > 1",
        )
        .unwrap();
        assert!(q.distinct);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
    }

    #[test]
    fn running_example_parses() {
        let q = parse_query(
            "SELECT c.name, c.address, * FROM customer c, dictionary d \
             FD(c.address, prefix(c.phone)) \
             DEDUP(token_filtering, LD, 0.8, c.address) \
             CLUSTER BY(token_filtering, LD, 0.8, c.name)",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.clean_ops.len(), 3);
        match &q.clean_ops[0] {
            CleanOp::Fd { lhs, rhs } => {
                assert_eq!(lhs.len(), 1);
                assert!(matches!(&rhs[0], Expr::Call { name, .. } if name == "prefix"));
            }
            other => panic!("{other:?}"),
        }
        match &q.clean_ops[1] {
            CleanOp::Dedup {
                op,
                metric,
                theta,
                attributes,
            } => {
                assert_eq!(*op, BlockSpec::TokenFiltering { q: 3 });
                assert_eq!(*metric, Metric::Levenshtein);
                assert_eq!(*theta, 0.8);
                assert_eq!(attributes.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        match &q.clean_ops[2] {
            CleanOp::ClusterBy { term, .. } => {
                assert!(matches!(term, Expr::Column { name, .. } if name == "name"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dedup_defaults() {
        let q = parse_query("SELECT * FROM t DEDUP(exact, name)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::Dedup {
                op,
                metric,
                theta,
                attributes,
            } => {
                assert_eq!(*op, BlockSpec::Exact);
                assert_eq!(*metric, Metric::Levenshtein);
                assert_eq!(*theta, 0.8);
                assert_eq!(attributes.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parameterized_blockers() {
        let q = parse_query("SELECT * FROM t DEDUP(token_filtering(2), LD, 0.9, name)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::Dedup { op, theta, .. } => {
                assert_eq!(*op, BlockSpec::TokenFiltering { q: 2 });
                assert_eq!(*theta, 0.9);
            }
            other => panic!("{other:?}"),
        }
        let q = parse_query("SELECT * FROM t, d CLUSTER BY(kmeans(5), LD, 0.7, name)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::ClusterBy { op, .. } => assert_eq!(*op, BlockSpec::KMeans { k: 5 }),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_attribute_fd() {
        let q = parse_query("SELECT * FROM t FD(a, b | c)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::Fd { lhs, rhs } => {
                assert_eq!(lhs.len(), 2);
                assert_eq!(rhs.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        // Default split: last expr is RHS.
        let q = parse_query("SELECT * FROM t FD(a, b, c)").unwrap();
        match &q.clean_ops[0] {
            CleanOp::Fd { lhs, rhs } => {
                assert_eq!(lhs.len(), 2);
                assert_eq!(rhs.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("FROM t").is_err());
        assert!(parse_query("SELECT * FROM").is_err());
        assert!(parse_query("SELECT * FROM t DEDUP(bogus_op, x)").is_err());
        assert!(parse_query("SELECT * FROM t FD(a)").is_err());
        assert!(parse_query("SELECT * FROM t WHERE").is_err());
        assert!(parse_query("SELECT * FROM t DEDUP(tf, LD, 1.5, x)").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("SELECT a + b * c FROM t").unwrap();
        match &q.select[0].expr {
            Expr::BinOp { op, right, .. } => {
                assert_eq!(op, "+");
                assert!(matches!(&**right, Expr::BinOp { op, .. } if op == "*"));
            }
            other => panic!("{other:?}"),
        }
    }
}
