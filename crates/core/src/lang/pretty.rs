//! Canonical pretty-printer for CleanM ASTs.
//!
//! [`pretty_query`] renders a parsed [`Query`] back to query text such that
//! re-parsing the output yields the same AST shapes (spans aside) — and
//! therefore the identical desugared calculus. Parentheses are inserted by
//! operator precedence, defaults (metric, theta, blocker parameters) are
//! made explicit, and string literals re-escape embedded quotes.

use cleanm_text::Metric;
use cleanm_values::Value;

use super::ast::{BlockSpec, CleanOp, Expr, ExprKind, Query, SelectItem, TableRef};

/// Render a query as canonical CleanM text.
pub fn pretty_query(q: &Query) -> String {
    let mut out = String::from("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    out.push_str(&join(&q.select, pretty_select_item));
    out.push_str(" FROM ");
    out.push_str(&join(&q.from, pretty_table));
    if let Some(w) = &q.where_clause {
        out.push_str(" WHERE ");
        out.push_str(&pretty_expr(w));
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        out.push_str(&join(&q.group_by, pretty_expr));
        if let Some(h) = &q.having {
            out.push_str(" HAVING ");
            out.push_str(&pretty_expr(h));
        }
    }
    for op in &q.clean_ops {
        out.push(' ');
        out.push_str(&pretty_clean_op(op));
    }
    out
}

fn join<T>(items: &[T], f: impl Fn(&T) -> String) -> String {
    items.iter().map(f).collect::<Vec<_>>().join(", ")
}

fn pretty_select_item(item: &SelectItem) -> String {
    match &item.alias {
        Some(a) => format!("{} AS {a}", pretty_expr(&item.expr)),
        None => pretty_expr(&item.expr),
    }
}

fn pretty_table(t: &TableRef) -> String {
    match &t.alias {
        Some(a) => format!("{} {a}", t.name),
        None => t.name.clone(),
    }
}

fn pretty_clean_op(op: &CleanOp) -> String {
    match op {
        CleanOp::Fd { lhs, rhs, .. } => format!(
            "FD({} | {})",
            join(lhs, pretty_expr),
            join(rhs, pretty_expr)
        ),
        CleanOp::Dedup {
            op,
            metric,
            theta,
            attributes,
            ..
        } => {
            let mut s = format!("DEDUP({}, {}, {theta}", blocker(op), metric_name(metric));
            for a in attributes {
                s.push_str(", ");
                s.push_str(&pretty_expr(a));
            }
            s.push(')');
            s
        }
        CleanOp::ClusterBy {
            op,
            metric,
            theta,
            term,
            ..
        } => format!(
            "CLUSTER BY({}, {}, {theta}, {})",
            blocker(op),
            metric_name(metric),
            pretty_expr(term)
        ),
        CleanOp::Dc { pred, .. } => format!("DC({})", pretty_expr(pred)),
    }
}

fn blocker(b: &BlockSpec) -> String {
    match b {
        BlockSpec::TokenFiltering { q } => format!("token_filtering({q})"),
        BlockSpec::KMeans { k } => format!("kmeans({k})"),
        BlockSpec::Exact => "exact".to_string(),
        BlockSpec::LengthBand { width } => format!("length_band({width})"),
    }
}

fn metric_name(m: &Metric) -> &'static str {
    match m {
        Metric::Levenshtein => "LD",
        // The surface syntax only produces q=2; other q values have no
        // spelling and fall back to the generic name.
        Metric::JaccardQgrams(_) => "jaccard",
        Metric::JaccardWords => "jaccard_words",
        Metric::JaroWinkler => "JW",
    }
}

// Binding strengths mirroring the parser's expression ladder.
const PREC_OR: u8 = 1;
const PREC_AND: u8 = 2;
const PREC_NOT: u8 = 3;
const PREC_CMP: u8 = 4;
const PREC_ADD: u8 = 5;
const PREC_MUL: u8 = 6;
const PREC_ATOM: u8 = 7;

fn op_prec(op: &str) -> u8 {
    match op {
        "OR" => PREC_OR,
        "AND" => PREC_AND,
        "+" | "-" => PREC_ADD,
        "*" | "/" => PREC_MUL,
        _ => PREC_CMP,
    }
}

fn prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::BinOp { op, .. } => op_prec(op),
        ExprKind::Not(_) => PREC_NOT,
        _ => PREC_ATOM,
    }
}

/// Render an expression (top-level: no outer parens needed).
pub fn pretty_expr(e: &Expr) -> String {
    pretty_prec(e, 0)
}

fn pretty_prec(e: &Expr, min: u8) -> String {
    let rendered = match &e.kind {
        ExprKind::Literal(v) => literal(v),
        ExprKind::Column { table, name } => match table {
            Some(t) => format!("{t}.{name}"),
            None => name.clone(),
        },
        ExprKind::Call { name, args } => {
            format!("{name}({})", join(args, pretty_expr))
        }
        ExprKind::BinOp { op, left, right } => {
            let p = op_prec(op);
            // Comparisons chain nowhere (non-associative); both sides must
            // bind tighter. The associative operators take an equal-strength
            // left child and a strictly tighter right child.
            let (lmin, rmin) = if p == PREC_CMP {
                (p + 1, p + 1)
            } else {
                (p, p + 1)
            };
            format!(
                "{} {op} {}",
                pretty_prec(left, lmin),
                pretty_prec(right, rmin)
            )
        }
        ExprKind::Not(inner) => format!("NOT {}", pretty_prec(inner, PREC_NOT)),
        ExprKind::Star => "*".to_string(),
    };
    if prec(e) < min {
        format!("({rendered})")
    } else {
        rendered
    }
}

fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(true) => "TRUE".to_string(),
        Value::Bool(false) => "FALSE".to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => format!("{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query;

    /// Strip spans by comparing the re-parse of the pretty output against
    /// the re-parse of its own pretty output (a fixpoint check), plus a
    /// structural check on the original via pretty-equality.
    fn roundtrips(src: &str) {
        let q1 = parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = pretty_query(&q1);
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(
            printed,
            pretty_query(&q2),
            "pretty output must be a fixpoint"
        );
    }

    #[test]
    fn canonical_forms_roundtrip() {
        roundtrips("SELECT * FROM t");
        roundtrips("select distinct a.x as y, * from t a, d w");
        roundtrips("SELECT a FROM t WHERE a > 1 AND (b = 'x''y' OR NOT c < 2.5)");
        roundtrips("SELECT r, count(*) AS n FROM t GROUP BY r HAVING count(*) > 1");
        roundtrips("SELECT * FROM t FD(a, b | prefix(c))");
        roundtrips("SELECT * FROM t DEDUP(token_filtering(2), jaccard, 0.7, a, b)");
        roundtrips("SELECT * FROM t, d CLUSTER BY(kmeans(5), JW, 0.9, t.name)");
        roundtrips("SELECT * FROM t DC(t1.a = t2.a AND t1.b <> t2.b)");
    }

    #[test]
    fn precedence_parens_are_minimal_but_sufficient() {
        let q = parse_query("SELECT (a + b) * c, a + b * c FROM t").unwrap();
        let p = pretty_query(&q);
        assert!(p.contains("(a + b) * c"), "{p}");
        assert!(p.contains("a + b * c"), "{p}");
    }

    #[test]
    fn defaults_become_explicit() {
        let q = parse_query("SELECT * FROM t DEDUP(exact, name)").unwrap();
        let p = pretty_query(&q);
        assert_eq!(p, "SELECT * FROM t DEDUP(exact, LD, 0.8, name)");
    }
}
