//! Abstract syntax tree for CleanM queries.

use cleanm_text::Metric;
use cleanm_values::Value;

/// Surface-level scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Value),
    /// `alias.column` or bare `column`.
    Column { table: Option<String>, name: String },
    /// `f(args…)` — builtin function call by name.
    Call { name: String, args: Vec<Expr> },
    /// Binary operation with SQL-ish operator text (`=`, `<>`, `AND`, …).
    BinOp {
        op: String,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Unary NOT.
    Not(Box<Expr>),
    /// `*` in a select list.
    Star,
}

/// One select-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// A table in the FROM clause with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

/// The cleaning operators of Listing 1. A query may carry any number of
/// them, in any order; §4.4: "when multiple cleaning operations appear …
/// the semantics of the query correspond to an outer join \[of\] the
/// violations of each cleaning operator".
#[derive(Debug, Clone, PartialEq)]
pub enum CleanOp {
    /// `FD(lhs…, rhs…)` — both sides may contain several expressions.
    Fd { lhs: Vec<Expr>, rhs: Vec<Expr> },
    /// `DEDUP(op[, metric, theta][, attributes…])`.
    Dedup {
        op: BlockSpec,
        metric: Metric,
        theta: f64,
        attributes: Vec<Expr>,
    },
    /// `CLUSTER BY(op[, metric, theta], term)` — term validation against
    /// the dictionary table (the second FROM table).
    ClusterBy {
        op: BlockSpec,
        metric: Metric,
        theta: f64,
        term: Expr,
    },
}

/// The `<op>` of DEDUP/CLUSTER BY: which blocking algorithm to use.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockSpec {
    TokenFiltering { q: usize },
    KMeans { k: usize },
    Exact,
    LengthBand { width: usize },
}

/// A parsed CleanM query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub clean_ops: Vec<CleanOp>,
}

impl Query {
    /// The primary (first) input table.
    pub fn primary_table(&self) -> Option<&TableRef> {
        self.from.first()
    }

    /// The auxiliary table (dictionary for CLUSTER BY / semantic
    /// transformations), if any.
    pub fn auxiliary_table(&self) -> Option<&TableRef> {
        self.from.get(1)
    }

    /// Resolve an alias to a FROM table, or fall back to the primary table.
    pub fn resolve_alias(&self, alias: Option<&str>) -> Option<&TableRef> {
        match alias {
            None => self.primary_table(),
            Some(a) => self
                .from
                .iter()
                .find(|t| t.alias.as_deref() == Some(a) || t.name == a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_resolution() {
        let q = Query {
            distinct: false,
            select: vec![],
            from: vec![
                TableRef {
                    name: "customer".into(),
                    alias: Some("c".into()),
                },
                TableRef {
                    name: "dictionary".into(),
                    alias: Some("d".into()),
                },
            ],
            where_clause: None,
            group_by: vec![],
            having: None,
            clean_ops: vec![],
        };
        assert_eq!(q.resolve_alias(Some("c")).unwrap().name, "customer");
        assert_eq!(
            q.resolve_alias(Some("dictionary")).unwrap().name,
            "dictionary"
        );
        assert_eq!(q.resolve_alias(None).unwrap().name, "customer");
        assert!(q.resolve_alias(Some("zz")).is_none());
        assert_eq!(q.auxiliary_table().unwrap().name, "dictionary");
    }
}
