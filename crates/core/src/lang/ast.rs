//! Abstract syntax tree for CleanM queries.
//!
//! Every node carries the byte [`Span`] of the source text it was parsed
//! from, so desugar-time diagnostics (unknown alias, unknown function, …)
//! can point at the exact offending expression.

use cleanm_text::Metric;
use cleanm_values::Value;

use super::diag::Span;

/// Surface-level scalar expression: a [`kind`](ExprKind) plus its source
/// span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

/// The shape of a surface expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Literal constant.
    Literal(Value),
    /// `alias.column` or bare `column`.
    Column { table: Option<String>, name: String },
    /// `f(args…)` — builtin function call by name.
    Call { name: String, args: Vec<Expr> },
    /// Binary operation with SQL-ish operator text (`=`, `<>`, `AND`, …).
    BinOp {
        op: String,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Unary NOT.
    Not(Box<Expr>),
    /// `*` in a select list.
    Star,
}

impl Expr {
    /// Wrap a kind with its span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// A column reference (test/builder convenience; zero span).
    pub fn column(table: Option<&str>, name: &str) -> Self {
        Expr::new(
            ExprKind::Column {
                table: table.map(str::to_string),
                name: name.to_string(),
            },
            Span::default(),
        )
    }

    /// A literal (test/builder convenience; zero span).
    pub fn literal(v: Value) -> Self {
        Expr::new(ExprKind::Literal(v), Span::default())
    }
}

/// One select-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// A table in the FROM clause with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
    /// Span of `name [alias]` in the source.
    pub span: Span,
}

impl TableRef {
    /// A table reference with a zero span (tests/builders).
    pub fn named(name: &str, alias: Option<&str>) -> Self {
        TableRef {
            name: name.to_string(),
            alias: alias.map(str::to_string),
            span: Span::default(),
        }
    }
}

/// The cleaning operators of Listing 1 (plus the `DC` extension). A query
/// may carry any number of them, in any order; §4.4: "when multiple
/// cleaning operations appear … the semantics of the query correspond to an
/// outer join \[of\] the violations of each cleaning operator".
#[derive(Debug, Clone, PartialEq)]
pub enum CleanOp {
    /// `FD(lhs…, rhs…)` — both sides may contain several expressions.
    Fd {
        lhs: Vec<Expr>,
        rhs: Vec<Expr>,
        span: Span,
    },
    /// `DEDUP(op[, metric, theta][, attributes…])`.
    Dedup {
        op: BlockSpec,
        metric: Metric,
        theta: f64,
        attributes: Vec<Expr>,
        span: Span,
    },
    /// `CLUSTER BY(op[, metric, theta], term)` — term validation against
    /// the dictionary table (the second FROM table).
    ClusterBy {
        op: BlockSpec,
        metric: Metric,
        theta: f64,
        term: Expr,
        span: Span,
    },
    /// `DC(pred)` — a two-tuple denial constraint over the primary table.
    /// `pred` relates the tuple variables `t1` and `t2`; a violation is any
    /// ordered pair of distinct rows satisfying it. Equality conjuncts of
    /// the form `t1.x = t2.x` become blocking keys.
    Dc { pred: Expr, span: Span },
}

impl CleanOp {
    /// The source span of the whole operator clause.
    pub fn span(&self) -> Span {
        match self {
            CleanOp::Fd { span, .. }
            | CleanOp::Dedup { span, .. }
            | CleanOp::ClusterBy { span, .. }
            | CleanOp::Dc { span, .. } => *span,
        }
    }
}

/// The `<op>` of DEDUP/CLUSTER BY: which blocking algorithm to use.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockSpec {
    TokenFiltering { q: usize },
    KMeans { k: usize },
    Exact,
    LengthBand { width: usize },
}

/// A parsed CleanM query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub clean_ops: Vec<CleanOp>,
}

impl Query {
    /// The primary (first) input table.
    pub fn primary_table(&self) -> Option<&TableRef> {
        self.from.first()
    }

    /// The auxiliary table (dictionary for CLUSTER BY / semantic
    /// transformations), if any.
    pub fn auxiliary_table(&self) -> Option<&TableRef> {
        self.from.get(1)
    }

    /// Resolve an alias to a FROM table, or fall back to the primary table.
    pub fn resolve_alias(&self, alias: Option<&str>) -> Option<&TableRef> {
        match alias {
            None => self.primary_table(),
            Some(a) => self
                .from
                .iter()
                .find(|t| t.alias.as_deref() == Some(a) || t.name == a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_resolution() {
        let q = Query {
            distinct: false,
            select: vec![],
            from: vec![
                TableRef::named("customer", Some("c")),
                TableRef::named("dictionary", Some("d")),
            ],
            where_clause: None,
            group_by: vec![],
            having: None,
            clean_ops: vec![],
        };
        assert_eq!(q.resolve_alias(Some("c")).unwrap().name, "customer");
        assert_eq!(
            q.resolve_alias(Some("dictionary")).unwrap().name,
            "dictionary"
        );
        assert_eq!(q.resolve_alias(None).unwrap().name, "customer");
        assert!(q.resolve_alias(Some("zz")).is_none());
        assert_eq!(q.auxiliary_table().unwrap().name, "dictionary");
    }

    #[test]
    fn clean_op_spans() {
        let op = CleanOp::Dc {
            pred: Expr::literal(Value::Bool(true)),
            span: Span::new(4, 9),
        };
        assert_eq!(op.span(), Span::new(4, 9));
    }
}
