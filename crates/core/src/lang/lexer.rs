//! Tokenizer for CleanM query text.

use cleanm_values::{Error, Result};

/// One lexical token. Keywords are recognized case-insensitively and carried
/// upper-cased; identifiers keep their original spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(String),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char),
    /// Two-char operators: `<=`, `>=`, `<>`, `!=`.
    Op(String),
}

const KEYWORDS: &[&str] = &[
    "SELECT", "ALL", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "FD", "DEDUP",
    "CLUSTER", "AND", "OR", "NOT", "AS", "NULL", "TRUE", "FALSE",
];

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            let mut saw_dot = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || (chars[i] == '.' && !saw_dot)) {
                if chars[i] == '.' {
                    saw_dot = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if saw_dot {
                tokens.push(Token::Float(
                    text.parse()
                        .map_err(|_| Error::Parse(format!("bad number `{text}`")))?,
                ));
            } else {
                tokens.push(Token::Int(
                    text.parse()
                        .map_err(|_| Error::Parse(format!("bad number `{text}`")))?,
                ));
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let upper = text.to_uppercase();
            if KEYWORDS.contains(&upper.as_str()) {
                tokens.push(Token::Keyword(upper));
            } else {
                tokens.push(Token::Ident(text));
            }
            continue;
        }
        if c == '\'' || c == '"' {
            let quote = c;
            i += 1;
            let mut s = String::new();
            let mut closed = false;
            while i < chars.len() {
                if chars[i] == quote {
                    // Doubled quote = escaped quote.
                    if chars.get(i + 1) == Some(&quote) {
                        s.push(quote);
                        i += 2;
                        continue;
                    }
                    closed = true;
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            if !closed {
                return Err(Error::Parse("unterminated string literal".to_string()));
            }
            tokens.push(Token::Str(s));
            continue;
        }
        // Two-char operators.
        if i + 1 < chars.len() {
            let two: String = chars[i..i + 2].iter().collect();
            if matches!(two.as_str(), "<=" | ">=" | "<>" | "!=") {
                tokens.push(Token::Op(two));
                i += 2;
                continue;
            }
        }
        if "(),.*=<>+-/|".contains(c) {
            tokens.push(Token::Symbol(c));
            i += 1;
            continue;
        }
        return Err(Error::Parse(format!("unexpected character `{c}`")));
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let t = tokenize("select FROM WheRe").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn numbers_strings_idents() {
        let t = tokenize("c.name 42 0.8 'a''b'").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("c".into()),
                Token::Symbol('.'),
                Token::Ident("name".into()),
                Token::Int(42),
                Token::Float(0.8),
                Token::Str("a'b".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let t = tokenize("a <= b <> c >= d != e = f").unwrap();
        let ops: Vec<&Token> = t
            .iter()
            .filter(|t| matches!(t, Token::Op(_) | Token::Symbol('=')))
            .collect();
        assert_eq!(ops.len(), 5);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn full_cleanm_query_tokenizes() {
        let q = "SELECT c.name, c.address, * FROM customer c, dictionary d \
                 FD(c.address, prefix(c.phone)) \
                 DEDUP(token_filtering, LD, 0.8, c.address) \
                 CLUSTER BY(token_filtering, LD, 0.8, c.name)";
        let t = tokenize(q).unwrap();
        assert!(t.contains(&Token::Keyword("FD".into())));
        assert!(t.contains(&Token::Keyword("DEDUP".into())));
        assert!(t.contains(&Token::Keyword("CLUSTER".into())));
        assert!(t.contains(&Token::Ident("token_filtering".into())));
    }
}
