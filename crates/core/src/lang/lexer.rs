//! Tokenizer for CleanM query text.
//!
//! [`lex`] is the span-tracking, recoverable entry point: it never fails,
//! returning every token it could form plus a [`Diagnostic`] per lexical
//! error (unexpected characters are skipped, unterminated strings are
//! closed at end of input). [`tokenize`] is the strict compatibility
//! wrapper that surfaces the first lexical error as `Error::Parse`.

use cleanm_values::{Error, Result};

use super::diag::{
    Diagnostic, Phase, Span, E001_UNEXPECTED_CHAR, E002_UNTERMINATED_STRING, E003_BAD_NUMBER,
};

/// One lexical token. Keywords are recognized case-insensitively and carried
/// upper-cased; identifiers keep their original spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(String),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char),
    /// Two-char operators: `<=`, `>=`, `<>`, `!=`.
    Op(String),
}

impl Token {
    /// Short human description used in diagnostics: `` keyword `FROM` ``.
    pub fn describe(&self) -> String {
        match self {
            Token::Keyword(k) => format!("keyword `{k}`"),
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Int(i) => format!("number `{i}`"),
            Token::Float(f) => format!("number `{f}`"),
            Token::Str(s) => format!("string `'{s}'`"),
            Token::Symbol(c) => format!("`{c}`"),
            Token::Op(o) => format!("`{o}`"),
        }
    }
}

/// A token plus the byte span it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub token: Token,
    pub span: Span,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "ALL", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "FD", "DEDUP",
    "CLUSTER", "DC", "AND", "OR", "NOT", "AS", "NULL", "TRUE", "FALSE",
];

/// Recoverable tokenization: all well-formed tokens plus one diagnostic per
/// lexical error. Never fails, always terminates.
pub fn lex(input: &str) -> (Vec<Tok>, Vec<Diagnostic>) {
    let mut tokens = Vec::new();
    let mut diagnostics = Vec::new();
    // (byte offset, char) pairs so spans are byte-accurate on non-ASCII.
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let end_of = |i: usize| -> usize {
        chars
            .get(i)
            .map(|(o, c)| o + c.len_utf8())
            .unwrap_or(input.len())
    };
    let mut i = 0;
    while i < chars.len() {
        let (off, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && chars.get(i + 1).is_some_and(|(_, d)| d.is_ascii_digit()))
        {
            let start = i;
            let mut saw_dot = false;
            while i < chars.len()
                && (chars[i].1.is_ascii_digit() || (chars[i].1 == '.' && !saw_dot))
            {
                if chars[i].1 == '.' {
                    saw_dot = true;
                }
                i += 1;
            }
            let span = Span::new(chars[start].0, end_of(i - 1));
            let text = &input[chars[start].0..span.end as usize];
            let parsed = if saw_dot {
                text.parse::<f64>().ok().map(Token::Float)
            } else {
                text.parse::<i64>().ok().map(Token::Int)
            };
            match parsed {
                Some(t) => tokens.push(Tok { token: t, span }),
                None => diagnostics.push(Diagnostic::new(
                    E003_BAD_NUMBER,
                    Phase::Lex,
                    span,
                    format!("number `{text}` does not fit a 64-bit value"),
                )),
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].1.is_alphanumeric() || chars[i].1 == '_') {
                i += 1;
            }
            let span = Span::new(chars[start].0, end_of(i - 1));
            let text = &input[span.start as usize..span.end as usize];
            let upper = text.to_uppercase();
            let token = if KEYWORDS.contains(&upper.as_str()) {
                Token::Keyword(upper)
            } else {
                Token::Ident(text.to_string())
            };
            tokens.push(Tok { token, span });
            continue;
        }
        if c == '\'' || c == '"' {
            let quote = c;
            let start_off = off;
            i += 1;
            let mut s = String::new();
            let mut closed = false;
            while i < chars.len() {
                if chars[i].1 == quote {
                    // Doubled quote = escaped quote.
                    if chars.get(i + 1).map(|(_, c)| *c) == Some(quote) {
                        s.push(quote);
                        i += 2;
                        continue;
                    }
                    closed = true;
                    i += 1;
                    break;
                }
                s.push(chars[i].1);
                i += 1;
            }
            let end = if i == 0 { input.len() } else { end_of(i - 1) };
            let span = Span::new(start_off, end.max(start_off + 1));
            if !closed {
                diagnostics.push(
                    Diagnostic::new(
                        E002_UNTERMINATED_STRING,
                        Phase::Lex,
                        span,
                        "unterminated string literal",
                    )
                    .with_note(format!("expected a closing `{quote}` before end of input")),
                );
            }
            tokens.push(Tok {
                token: Token::Str(s),
                span,
            });
            continue;
        }
        // Two-char operators.
        if let Some((_, c2)) = chars.get(i + 1) {
            let two: String = [c, *c2].iter().collect();
            if matches!(two.as_str(), "<=" | ">=" | "<>" | "!=") {
                tokens.push(Tok {
                    token: Token::Op(two),
                    span: Span::new(off, end_of(i + 1)),
                });
                i += 2;
                continue;
            }
        }
        if "(),.*=<>+-/|;".contains(c) {
            tokens.push(Tok {
                token: Token::Symbol(c),
                span: Span::new(off, end_of(i)),
            });
            i += 1;
            continue;
        }
        diagnostics.push(Diagnostic::new(
            E001_UNEXPECTED_CHAR,
            Phase::Lex,
            Span::new(off, end_of(i)),
            format!("unexpected character `{c}`"),
        ));
        i += 1;
    }
    (tokens, diagnostics)
}

/// Strict tokenization: the token stream, or the first lexical error.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let (tokens, diagnostics) = lex(input);
    match diagnostics.into_iter().next() {
        Some(d) => Err(Error::Parse(d.message)),
        None => Ok(tokens.into_iter().map(|t| t.token).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let t = tokenize("select FROM WheRe").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn numbers_strings_idents() {
        let t = tokenize("c.name 42 0.8 'a''b'").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("c".into()),
                Token::Symbol('.'),
                Token::Ident("name".into()),
                Token::Int(42),
                Token::Float(0.8),
                Token::Str("a'b".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let t = tokenize("a <= b <> c >= d != e = f").unwrap();
        let ops: Vec<&Token> = t
            .iter()
            .filter(|t| matches!(t, Token::Op(_) | Token::Symbol('=')))
            .collect();
        assert_eq!(ops.len(), 5);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn spans_are_byte_accurate() {
        let (toks, diags) = lex("ab  'x' <= é?");
        assert!(diags.len() == 1, "{diags:?}");
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(4, 7));
        assert_eq!(toks[2].span, Span::new(8, 10));
        // `é` is a two-byte identifier starting at byte 11.
        assert_eq!(toks[3].span, Span::new(11, 13));
        assert_eq!(diags[0].span, Span::new(13, 14));
        assert_eq!(diags[0].code, "E001");
    }

    #[test]
    fn lex_recovers_past_errors() {
        let (toks, diags) = lex("a ? b ?? c");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.token, Token::Ident(_)))
            .collect();
        assert_eq!(idents.len(), 3);
        assert_eq!(diags.len(), 3);
    }

    #[test]
    fn unterminated_string_still_yields_token() {
        let (toks, diags) = lex("'abc");
        assert_eq!(toks.len(), 1);
        assert!(matches!(&toks[0].token, Token::Str(s) if s == "abc"));
        assert_eq!(diags[0].code, "E002");
    }

    #[test]
    fn full_cleanm_query_tokenizes() {
        let q = "SELECT c.name, c.address, * FROM customer c, dictionary d \
                 FD(c.address, prefix(c.phone)) \
                 DEDUP(token_filtering, LD, 0.8, c.address) \
                 CLUSTER BY(token_filtering, LD, 0.8, c.name)";
        let t = tokenize(q).unwrap();
        assert!(t.contains(&Token::Keyword("FD".into())));
        assert!(t.contains(&Token::Keyword("DEDUP".into())));
        assert!(t.contains(&Token::Keyword("CLUSTER".into())));
        assert!(t.contains(&Token::Ident("token_filtering".into())));
    }

    #[test]
    fn semicolon_and_dc_are_tokens() {
        let t = tokenize("DC(a); SELECT").unwrap();
        assert_eq!(t[0], Token::Keyword("DC".into()));
        assert!(t.contains(&Token::Symbol(';')));
    }
}
