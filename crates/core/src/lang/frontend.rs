//! One-call frontend analysis: lex + parse + desugar with full diagnostics.
//!
//! [`analyze`] drives the whole pipeline over a (possibly multi-statement)
//! source text and returns every statement's best-effort AST and calculus
//! together with all diagnostics, sorted by source position. Statements
//! that parsed with errors are *not* desugared — a half-recovered AST
//! would only produce cascading secondary diagnostics.

use crate::calculus::desugar::{desugar_query_diag, DesugaredQuery};

use super::ast::Query;
use super::diag::{Diagnostic, Span};
use super::parser::parse_program;

/// The analysis of one `;`-separated statement.
#[derive(Debug, Clone)]
pub struct AnalyzedStatement {
    /// Source span of the statement.
    pub span: Span,
    /// Best-effort AST (present even for partially recovered statements).
    pub query: Option<Query>,
    /// Desugared calculus — only for statements that parsed cleanly and
    /// desugared without errors.
    pub desugared: Option<DesugaredQuery>,
}

/// The full-frontend result for a source text.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    pub statements: Vec<AnalyzedStatement>,
    /// All lex, parse, and desugar diagnostics, sorted by span.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// True when every statement lexed, parsed, and desugared cleanly.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Run the frontend end to end. `seed` parameterizes randomized blockers
/// exactly as in [`crate::calculus::desugar::desugar_query`].
pub fn analyze(source: &str, seed: u64) -> Analysis {
    let outcome = parse_program(source);
    let mut diagnostics = outcome.diagnostics;
    let statements = outcome
        .statements
        .into_iter()
        .map(|stmt| {
            let parsed_clean =
                stmt.query.is_some() && !diagnostics.iter().any(|d| overlaps(d.span, stmt.span));
            let desugared = if parsed_clean {
                match desugar_query_diag(stmt.query.as_ref().unwrap(), seed) {
                    Ok(dq) => Some(dq),
                    Err(mut ds) => {
                        diagnostics.append(&mut ds);
                        None
                    }
                }
            } else {
                None
            };
            AnalyzedStatement {
                span: stmt.span,
                query: stmt.query,
                desugared,
            }
        })
        .collect();
    diagnostics.sort_by_key(|d| (d.span.start, d.span.end));
    Analysis {
        statements,
        diagnostics,
    }
}

/// Closed-interval span overlap (point spans at a boundary count as inside).
fn overlaps(a: Span, b: Span) -> bool {
    a.start <= b.end && a.end >= b.start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_desugars_every_statement() {
        let a = analyze("SELECT * FROM t FD(a, b); SELECT * FROM u", 1);
        assert!(a.is_clean(), "{:?}", a.diagnostics);
        assert_eq!(a.statements.len(), 2);
        assert!(a.statements.iter().all(|s| s.desugared.is_some()));
    }

    #[test]
    fn broken_statement_is_not_desugared_but_neighbors_are() {
        let a = analyze("SELECT * FORM t; SELECT * FROM u", 1);
        assert!(!a.is_clean());
        assert_eq!(a.statements.len(), 2);
        assert!(a.statements[0].desugared.is_none());
        assert!(a.statements[1].desugared.is_some());
    }

    #[test]
    fn desugar_diagnostics_are_merged_and_sorted() {
        let a = analyze("SELECT zz.x FROM t; SELECT * FROM u ?", 1);
        assert!(a.diagnostics.len() >= 2, "{:?}", a.diagnostics);
        assert!(a
            .diagnostics
            .windows(2)
            .all(|w| w[0].span.start <= w[1].span.start));
    }

    #[test]
    fn three_seeded_errors_yield_three_diagnostics() {
        // The acceptance scenario: one pass reports all three.
        let src = "SELECT o.name, FROM orders o WHERE ;\n\
                   SELECT * FORM orders;\n\
                   SELECT * FROM orders o FD(o.region |)";
        let a = analyze(src, 1);
        assert!(a.diagnostics.len() >= 3, "{:#?}", a.diagnostics);
    }
}
