//! High-level cleaning operators — the typed front doors to the pipeline.
//!
//! Each operator builds the corresponding CleanM construct (most via the
//! parser, denial constraints via a direct algebra plan) and runs it through
//! the session, so callers get §4.4 semantics without writing query strings
//! by hand. These are what the examples and the benchmark harness use.

pub mod dc;
pub mod dedup;
pub mod fd;
pub mod termval;
pub mod transform;

pub use dc::{DcAtom, DcCell, DcOutcome, DcSide, DcTerm, DcViolation, InequalityDc};
pub use dedup::{Dedup, DedupPlanShape};
pub use fd::{FdCheck, FdPlanShape};
pub use termval::{TermValidation, TermvalPlanShape};
pub use transform::{apply_transforms, semantic_map, Transform, TransformMode, TransformReport};

use crate::algebra::plan::Alg;
use crate::calculus::CalcExpr;

/// Unwrap a stack of `Select`s down to its `Scan`, collecting the filter
/// predicates (outermost first). This is the `WHERE`-over-one-table input
/// shape every cleaning operator's grouping lowers to; shape matchers use
/// it to recover `(table, row_var, filters)` from a cached plan.
pub(crate) fn scan_with_filters(mut plan: &Alg) -> Option<(String, String, Vec<CalcExpr>)> {
    let mut filters = Vec::new();
    loop {
        match plan {
            Alg::Select { input, pred } => {
                filters.push(pred.clone());
                plan = input;
            }
            Alg::Scan { table, var } => {
                return Some((table.clone(), var.clone(), filters));
            }
            _ => return None,
        }
    }
}
