//! High-level cleaning operators — the typed front doors to the pipeline.
//!
//! Each operator builds the corresponding CleanM construct (most via the
//! parser, denial constraints via a direct algebra plan) and runs it through
//! the session, so callers get §4.4 semantics without writing query strings
//! by hand. These are what the examples and the benchmark harness use.

pub mod dc;
pub mod dedup;
pub mod fd;
pub mod termval;
pub mod transform;

pub use dc::{DcOutcome, InequalityDc};
pub use dedup::Dedup;
pub use fd::FdCheck;
pub use termval::TermValidation;
pub use transform::{apply_transforms, semantic_map, Transform, TransformMode, TransformReport};
