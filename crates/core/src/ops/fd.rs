//! Functional dependency checking (`FD(lhs, rhs)`).

use crate::engine::{CleanDb, CleaningReport, EngineError};

/// A functional dependency check `lhs → rhs` over one table. Sides are
/// CleanM expressions over the alias `t` (e.g. `"t.address"`,
/// `"prefix(t.phone)"`).
#[derive(Debug, Clone)]
pub struct FdCheck {
    pub table: String,
    pub lhs: Vec<String>,
    pub rhs: Vec<String>,
}

impl FdCheck {
    /// `lhs → rhs` with plain column names.
    pub fn columns(table: &str, lhs: &[&str], rhs: &[&str]) -> Self {
        FdCheck {
            table: table.to_string(),
            lhs: lhs.iter().map(|c| format!("t.{c}")).collect(),
            rhs: rhs.iter().map(|c| format!("t.{c}")).collect(),
        }
    }

    /// `lhs → rhs` with raw CleanM expressions over alias `t`.
    pub fn expressions(table: &str, lhs: &[&str], rhs: &[&str]) -> Self {
        FdCheck {
            table: table.to_string(),
            lhs: lhs.iter().map(|s| s.to_string()).collect(),
            rhs: rhs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The CleanM query text for this check.
    pub fn to_sql(&self) -> String {
        format!(
            "SELECT * FROM {} t FD({} | {})",
            self.table,
            self.lhs.join(", "),
            self.rhs.join(", "),
        )
    }

    /// Run the check.
    pub fn run(&self, db: &mut CleanDb) -> Result<CleaningReport, EngineError> {
        db.run(&self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EngineProfile;
    use cleanm_values::{DataType, Row, Schema, Table, Value};

    fn table() -> Table {
        let schema = Schema::of([
            ("a", DataType::Str),
            ("b", DataType::Int),
            ("phone", DataType::Str),
        ]);
        Table::new(
            schema,
            vec![
                Row::new(vec![Value::str("x"), Value::Int(1), Value::str("101-1")]),
                Row::new(vec![Value::str("x"), Value::Int(2), Value::str("101-2")]),
                Row::new(vec![Value::str("y"), Value::Int(3), Value::str("103-3")]),
            ],
        )
    }

    #[test]
    fn column_fd_detects_violation() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("t", table());
        let report = FdCheck::columns("t", &["a"], &["b"]).run(&mut db).unwrap();
        assert_eq!(report.violations(), 2);
    }

    #[test]
    fn expression_fd_with_prefix() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("t", table());
        let report = FdCheck::expressions("t", &["t.a"], &["prefix(t.phone)"])
            .run(&mut db)
            .unwrap();
        // Both x-rows share prefix 101: no violation.
        assert_eq!(report.violations(), 0);
    }

    #[test]
    fn sql_rendering() {
        let fd = FdCheck::columns("lineitem", &["orderkey", "linenumber"], &["suppkey"]);
        assert_eq!(
            fd.to_sql(),
            "SELECT * FROM lineitem t FD(t.orderkey, t.linenumber | t.suppkey)"
        );
    }
}
