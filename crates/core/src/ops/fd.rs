//! Functional dependency checking (`FD(lhs, rhs)`).

use crate::algebra::plan::Alg;
use crate::calculus::{BinOp, CalcExpr, Func, MonoidKind, Qual};
use crate::engine::{CleanDb, CleaningReport, EngineError};

/// A functional dependency check `lhs → rhs` over one table. Sides are
/// CleanM expressions over the alias `t` (e.g. `"t.address"`,
/// `"prefix(t.phone)"`).
#[derive(Debug, Clone)]
pub struct FdCheck {
    pub table: String,
    pub lhs: Vec<String>,
    pub rhs: Vec<String>,
}

impl FdCheck {
    /// `lhs → rhs` with plain column names.
    pub fn columns(table: &str, lhs: &[&str], rhs: &[&str]) -> Self {
        FdCheck {
            table: table.to_string(),
            lhs: lhs.iter().map(|c| format!("t.{c}")).collect(),
            rhs: rhs.iter().map(|c| format!("t.{c}")).collect(),
        }
    }

    /// `lhs → rhs` with raw CleanM expressions over alias `t`.
    pub fn expressions(table: &str, lhs: &[&str], rhs: &[&str]) -> Self {
        FdCheck {
            table: table.to_string(),
            lhs: lhs.iter().map(|s| s.to_string()).collect(),
            rhs: rhs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The CleanM query text for this check.
    pub fn to_sql(&self) -> String {
        format!(
            "SELECT * FROM {} t FD({} | {})",
            self.table,
            self.lhs.join(", "),
            self.rhs.join(", "),
        )
    }

    /// Run the check.
    pub fn run(&self, db: &mut CleanDb) -> Result<CleaningReport, EngineError> {
        db.run(&self.to_sql())
    }
}

/// The recognized physical shape of a lowered FD operator — everything an
/// incremental maintainer needs to keep per-group state: evaluate
/// `filters`, group rows by `key`, track the distinct `rhs` values per
/// group, and report groups with more than one.
///
/// ```text
/// Reduce[Bag]{ g |
///   Select{ count_distinct(bag{ rhs(x) | x ← g.partition }) > 1,
///     Nest[exact]{ key(d) → d, Select*{ filters, Scan table d } } } }
/// ```
#[derive(Debug, Clone)]
pub struct FdPlanShape {
    pub table: String,
    /// Row variable the scan binds (`key` and `filters` are over it).
    pub scan_var: String,
    /// WHERE predicates pushed into the grouping input (outermost first).
    pub filters: Vec<CalcExpr>,
    /// The (possibly composite) left-hand-side grouping key.
    pub key: CalcExpr,
    /// Partition-member variable the right-hand side is evaluated over.
    pub member_var: String,
    /// The (possibly composite/derived) right-hand-side expression.
    pub rhs: CalcExpr,
}

impl FdPlanShape {
    /// Recognize a lowered FD plan; `None` means the plan does not have
    /// the maintainable shape (callers fall back to full re-runs).
    pub fn from_plan(plan: &Alg) -> Option<FdPlanShape> {
        let Alg::Reduce {
            input,
            monoid: MonoidKind::Bag,
            head: CalcExpr::Var(out_var),
        } = plan
        else {
            return None;
        };
        let Alg::Select { input, pred } = &**input else {
            return None;
        };
        let Alg::Nest {
            input,
            key,
            item: CalcExpr::Var(item_var),
            group_var,
            ..
        } = &**input
        else {
            return None;
        };
        if out_var != group_var {
            return None;
        }
        let (table, scan_var, filters) = super::scan_with_filters(input)?;
        if *item_var != scan_var {
            return None;
        }
        // The violation predicate: count_distinct(bag{rhs | x ← g.partition}) > 1.
        let CalcExpr::BinOp(BinOp::Gt, lhs, one) = pred else {
            return None;
        };
        if !matches!(&**one, CalcExpr::Const(v) if v == &cleanm_values::Value::Int(1)) {
            return None;
        }
        let CalcExpr::Call(Func::CountDistinct, args) = &**lhs else {
            return None;
        };
        let [CalcExpr::Comp(comp)] = args.as_slice() else {
            return None;
        };
        if !matches!(comp.monoid, MonoidKind::Bag) {
            return None;
        }
        let [Qual::Gen(member_var, source)] = comp.quals.as_slice() else {
            return None;
        };
        match source {
            CalcExpr::Proj(base, field)
                if field == "partition"
                    && matches!(&**base, CalcExpr::Var(v) if v == group_var) => {}
            _ => return None,
        }
        Some(FdPlanShape {
            table,
            scan_var,
            filters,
            key: key.clone(),
            member_var: member_var.clone(),
            rhs: (*comp.head).clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EngineProfile;
    use cleanm_values::{DataType, Row, Schema, Table, Value};

    fn table() -> Table {
        let schema = Schema::of([
            ("a", DataType::Str),
            ("b", DataType::Int),
            ("phone", DataType::Str),
        ]);
        Table::new(
            schema,
            vec![
                Row::new(vec![Value::str("x"), Value::Int(1), Value::str("101-1")]),
                Row::new(vec![Value::str("x"), Value::Int(2), Value::str("101-2")]),
                Row::new(vec![Value::str("y"), Value::Int(3), Value::str("103-3")]),
            ],
        )
    }

    #[test]
    fn column_fd_detects_violation() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("t", table());
        let report = FdCheck::columns("t", &["a"], &["b"]).run(&mut db).unwrap();
        assert_eq!(report.violations(), 2);
    }

    #[test]
    fn expression_fd_with_prefix() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("t", table());
        let report = FdCheck::expressions("t", &["t.a"], &["prefix(t.phone)"])
            .run(&mut db)
            .unwrap();
        // Both x-rows share prefix 101: no violation.
        assert_eq!(report.violations(), 0);
    }

    #[test]
    fn sql_rendering() {
        let fd = FdCheck::columns("lineitem", &["orderkey", "linenumber"], &["suppkey"]);
        assert_eq!(
            fd.to_sql(),
            "SELECT * FROM lineitem t FD(t.orderkey, t.linenumber | t.suppkey)"
        );
    }

    #[test]
    fn fd_plan_shape_round_trips_through_the_pipeline() {
        use crate::algebra::lower_op;
        use crate::calculus::{desugar_query, normalize};
        use crate::lang::parse_query;
        let q =
            parse_query("SELECT * FROM t x WHERE x.b > 0 FD(x.a, prefix(x.phone) | x.b, x.phone)")
                .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let (comp, _) = normalize(&dq.ops[0].comp);
        let plan = lower_op(&comp).unwrap();
        let shape = FdPlanShape::from_plan(&plan).expect("FD shape recognized");
        assert_eq!(shape.table, "t");
        assert_eq!(shape.filters.len(), 1);
        assert!(shape.key.to_string().contains("Prefix"));
        assert!(shape.rhs.to_string().contains("phone"));
    }
}
