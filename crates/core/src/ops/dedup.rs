//! Duplicate elimination (`DEDUP(op, metric, theta, attrs…)`).

use cleanm_text::Metric;
use cleanm_values::Value;

use crate::algebra::plan::Alg;
use crate::calculus::desugar::ROWID_FIELD;
use crate::calculus::{CalcExpr, FilterAlgo, MonoidKind};
use crate::engine::{CleanDb, CleaningReport, EngineError};

/// A duplicate-detection task: block on `block_attr`, compare `sim_attrs`
/// (or the block attribute itself when empty) under `metric` at `theta`.
#[derive(Debug, Clone)]
pub struct Dedup {
    pub table: String,
    /// Blocking spec as CleanM op text: `"exact"`, `"token_filtering(3)"`,
    /// `"kmeans(10)"`, `"length_band(4)"`.
    pub block_op: String,
    pub metric: Metric,
    pub theta: f64,
    /// Blocking attribute (CleanM expression over alias `t`).
    pub block_attr: String,
    /// Similarity attributes; empty = compare the blocking attribute.
    pub sim_attrs: Vec<String>,
}

impl Dedup {
    pub fn new(table: &str, block_op: &str, block_attr: &str) -> Self {
        Dedup {
            table: table.to_string(),
            block_op: block_op.to_string(),
            metric: Metric::Levenshtein,
            theta: 0.8,
            block_attr: block_attr.to_string(),
            sim_attrs: Vec::new(),
        }
    }

    pub fn metric(mut self, metric: Metric, theta: f64) -> Self {
        self.metric = metric;
        self.theta = theta;
        self
    }

    pub fn similarity_on(mut self, attrs: &[&str]) -> Self {
        self.sim_attrs = attrs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// The CleanM query text for this task.
    pub fn to_sql(&self) -> String {
        let metric_name = match self.metric {
            Metric::Levenshtein => "LD",
            Metric::JaccardQgrams(_) => "jaccard",
            Metric::JaccardWords => "jaccard_words",
            Metric::JaroWinkler => "JW",
        };
        let mut attrs = vec![self.block_attr.clone()];
        attrs.extend(self.sim_attrs.iter().cloned());
        format!(
            "SELECT * FROM {} t DEDUP({}, {}, {}, {})",
            self.table,
            self.block_op,
            metric_name,
            self.theta,
            attrs.join(", "),
        )
    }

    /// Run, returning the report plus the distinct duplicate pairs (row id
    /// pairs, deduplicated across blocks).
    pub fn run(&self, db: &mut CleanDb) -> Result<(CleaningReport, Vec<(i64, i64)>), EngineError> {
        let report = db.run(&self.to_sql())?;
        let pairs = extract_pairs(&report);
        Ok((report, pairs))
    }
}

/// Distinct (left, right) row-id pairs from a dedup report. Multi-key
/// blocking can emit the same pair from several blocks; this dedups them —
/// the transitive-closure-free equivalent of the paper's "pairs of records
/// that are potential duplicates".
pub fn extract_pairs(report: &CleaningReport) -> Vec<(i64, i64)> {
    let mut pairs = Vec::new();
    for op in &report.ops {
        for v in &op.output {
            let (Ok(l), Ok(r)) = (v.field("left"), v.field("right")) else {
                continue;
            };
            let (Some(li), Some(ri)) = (rowid(l), rowid(r)) else {
                continue;
            };
            pairs.push((li.min(ri), li.max(ri)));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn rowid(v: &Value) -> Option<i64> {
    v.field(ROWID_FIELD).ok().and_then(|x| x.as_int().ok())
}

/// The recognized physical shape of a lowered DEDUP operator — what an
/// incremental maintainer needs to keep per-block state: evaluate
/// `filters`, assign rows to blocks via `key` (a scalar, or a list for
/// multi-key blockers), and for every same-block pair check `pair_preds`
/// (row-id ordering + similarity), emitting `{left, right}` records.
///
/// ```text
/// Reduce[Bag]{ {left: p1, right: p2} |
///   Select*{ pair_preds,
///     Unnest{ p2 ← g.partition,
///       Unnest{ p1 ← g.partition,
///         Nest[algo]{ key(d) → d, Select*{ filters, Scan table d } } } } } }
/// ```
#[derive(Debug, Clone)]
pub struct DedupPlanShape {
    pub table: String,
    pub scan_var: String,
    pub filters: Vec<CalcExpr>,
    /// Blocking algorithm of the grouping (exact / token filtering / …).
    pub algo: FilterAlgo,
    /// Block-key expression over `scan_var` (may be a `BlockKeys` call).
    pub key: CalcExpr,
    /// The two pair variables, in generator order (`p1` before `p2`).
    pub pair_vars: (String, String),
    /// Predicates over a candidate pair, **innermost first** (the row-id
    /// ordering predicate precedes the similarity check, so evaluation
    /// short-circuits cheaply).
    pub pair_preds: Vec<CalcExpr>,
}

impl DedupPlanShape {
    /// Recognize a lowered DEDUP plan; `None` means the plan does not have
    /// the maintainable shape.
    pub fn from_plan(plan: &Alg) -> Option<DedupPlanShape> {
        let Alg::Reduce {
            input,
            monoid: MonoidKind::Bag,
            head: CalcExpr::Record(fields),
        } = plan
        else {
            return None;
        };
        let [(left_name, CalcExpr::Var(p1)), (right_name, CalcExpr::Var(p2))] = fields.as_slice()
        else {
            return None;
        };
        if left_name != "left" || right_name != "right" {
            return None;
        }
        // Collect the pair predicates (outermost first), then reverse so
        // evaluation runs innermost-first (row-id order before similarity).
        let mut pair_preds = Vec::new();
        let mut node = &**input;
        while let Alg::Select { input, pred } = node {
            pair_preds.push(pred.clone());
            node = input;
        }
        pair_preds.reverse();
        let Alg::Unnest {
            input,
            path: path2,
            var: v2,
        } = node
        else {
            return None;
        };
        let Alg::Unnest {
            input,
            path: path1,
            var: v1,
        } = &**input
        else {
            return None;
        };
        if v1 != p1 || v2 != p2 {
            return None;
        }
        let Alg::Nest {
            input,
            algo,
            key,
            item: CalcExpr::Var(item_var),
            group_var,
        } = &**input
        else {
            return None;
        };
        let over_partition = |path: &CalcExpr| match path {
            CalcExpr::Proj(base, field) => {
                field == "partition" && matches!(&**base, CalcExpr::Var(v) if v == group_var)
            }
            _ => false,
        };
        if !over_partition(path1) || !over_partition(path2) {
            return None;
        }
        let (table, scan_var, filters) = super::scan_with_filters(input)?;
        if *item_var != scan_var {
            return None;
        }
        Some(DedupPlanShape {
            table,
            scan_var,
            filters,
            algo: algo.clone(),
            key: key.clone(),
            pair_vars: (p1.clone(), p2.clone()),
            pair_preds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EngineProfile;
    use cleanm_values::{DataType, Row, Schema, Table};

    fn table() -> Table {
        let schema = Schema::of([("name", DataType::Str), ("city", DataType::Str)]);
        Table::new(
            schema,
            vec![
                Row::new(vec![Value::str("anderson"), Value::str("geneva")]),
                Row::new(vec![Value::str("andersen"), Value::str("geneva")]),
                Row::new(vec![Value::str("zhang"), Value::str("geneva")]),
                Row::new(vec![Value::str("anderson"), Value::str("zurich")]),
            ],
        )
    }

    #[test]
    fn token_filtering_dedup_finds_pair() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("people", table());
        let (report, pairs) = Dedup::new("people", "token_filtering(2)", "t.name")
            .metric(Metric::Levenshtein, 0.75)
            .run(&mut db)
            .unwrap();
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        // anderson@geneva and anderson@zurich are identical names too.
        assert!(pairs.contains(&(0, 3)), "{pairs:?}");
        assert!(report.violations() >= 3);
    }

    #[test]
    fn exact_blocking_with_separate_sim_attrs() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("people", table());
        // Block on city; compare names.
        let (_, pairs) = Dedup::new("people", "exact", "t.city")
            .metric(Metric::Levenshtein, 0.75)
            .similarity_on(&["t.name"])
            .run(&mut db)
            .unwrap();
        assert_eq!(pairs, vec![(0, 1)], "only the geneva andersons");
    }

    #[test]
    fn dedup_plan_shape_round_trips_through_the_pipeline() {
        use crate::algebra::lower_op;
        use crate::calculus::{desugar_query, normalize};
        use crate::lang::parse_query;
        let q = parse_query("SELECT * FROM people t DEDUP(token_filtering(2), LD, 0.75, t.name)")
            .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let (comp, _) = normalize(&dq.ops[0].comp);
        let plan = lower_op(&comp).unwrap();
        let shape = DedupPlanShape::from_plan(&plan).expect("DEDUP shape recognized");
        assert_eq!(shape.table, "people");
        assert!(matches!(shape.algo, FilterAlgo::TokenFilter { q: 2 }));
        assert_eq!(shape.pair_preds.len(), 2);
        // Innermost-first: row-id ordering before similarity.
        assert!(shape.pair_preds[0].to_string().contains(ROWID_FIELD));
        assert!(shape.pair_preds[1].to_string().contains("Similar"));
    }

    #[test]
    fn pairs_are_unique_despite_multikey_blocking() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("people", table());
        let (_, pairs) = Dedup::new("people", "token_filtering(2)", "t.name")
            .metric(Metric::Levenshtein, 0.7)
            .run(&mut db)
            .unwrap();
        let mut sorted = pairs.clone();
        sorted.dedup();
        assert_eq!(sorted, pairs);
    }
}
