//! Duplicate elimination (`DEDUP(op, metric, theta, attrs…)`).

use cleanm_text::Metric;
use cleanm_values::Value;

use crate::calculus::desugar::ROWID_FIELD;
use crate::engine::{CleanDb, CleaningReport, EngineError};

/// A duplicate-detection task: block on `block_attr`, compare `sim_attrs`
/// (or the block attribute itself when empty) under `metric` at `theta`.
#[derive(Debug, Clone)]
pub struct Dedup {
    pub table: String,
    /// Blocking spec as CleanM op text: `"exact"`, `"token_filtering(3)"`,
    /// `"kmeans(10)"`, `"length_band(4)"`.
    pub block_op: String,
    pub metric: Metric,
    pub theta: f64,
    /// Blocking attribute (CleanM expression over alias `t`).
    pub block_attr: String,
    /// Similarity attributes; empty = compare the blocking attribute.
    pub sim_attrs: Vec<String>,
}

impl Dedup {
    pub fn new(table: &str, block_op: &str, block_attr: &str) -> Self {
        Dedup {
            table: table.to_string(),
            block_op: block_op.to_string(),
            metric: Metric::Levenshtein,
            theta: 0.8,
            block_attr: block_attr.to_string(),
            sim_attrs: Vec::new(),
        }
    }

    pub fn metric(mut self, metric: Metric, theta: f64) -> Self {
        self.metric = metric;
        self.theta = theta;
        self
    }

    pub fn similarity_on(mut self, attrs: &[&str]) -> Self {
        self.sim_attrs = attrs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// The CleanM query text for this task.
    pub fn to_sql(&self) -> String {
        let metric_name = match self.metric {
            Metric::Levenshtein => "LD",
            Metric::JaccardQgrams(_) => "jaccard",
            Metric::JaccardWords => "jaccard_words",
            Metric::JaroWinkler => "JW",
        };
        let mut attrs = vec![self.block_attr.clone()];
        attrs.extend(self.sim_attrs.iter().cloned());
        format!(
            "SELECT * FROM {} t DEDUP({}, {}, {}, {})",
            self.table,
            self.block_op,
            metric_name,
            self.theta,
            attrs.join(", "),
        )
    }

    /// Run, returning the report plus the distinct duplicate pairs (row id
    /// pairs, deduplicated across blocks).
    pub fn run(&self, db: &mut CleanDb) -> Result<(CleaningReport, Vec<(i64, i64)>), EngineError> {
        let report = db.run(&self.to_sql())?;
        let pairs = extract_pairs(&report);
        Ok((report, pairs))
    }
}

/// Distinct (left, right) row-id pairs from a dedup report. Multi-key
/// blocking can emit the same pair from several blocks; this dedups them —
/// the transitive-closure-free equivalent of the paper's "pairs of records
/// that are potential duplicates".
pub fn extract_pairs(report: &CleaningReport) -> Vec<(i64, i64)> {
    let mut pairs = Vec::new();
    for op in &report.ops {
        for v in &op.output {
            let (Ok(l), Ok(r)) = (v.field("left"), v.field("right")) else {
                continue;
            };
            let (Some(li), Some(ri)) = (rowid(l), rowid(r)) else {
                continue;
            };
            pairs.push((li.min(ri), li.max(ri)));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn rowid(v: &Value) -> Option<i64> {
    v.field(ROWID_FIELD).ok().and_then(|x| x.as_int().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EngineProfile;
    use cleanm_values::{DataType, Row, Schema, Table};

    fn table() -> Table {
        let schema = Schema::of([("name", DataType::Str), ("city", DataType::Str)]);
        Table::new(
            schema,
            vec![
                Row::new(vec![Value::str("anderson"), Value::str("geneva")]),
                Row::new(vec![Value::str("andersen"), Value::str("geneva")]),
                Row::new(vec![Value::str("zhang"), Value::str("geneva")]),
                Row::new(vec![Value::str("anderson"), Value::str("zurich")]),
            ],
        )
    }

    #[test]
    fn token_filtering_dedup_finds_pair() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("people", table());
        let (report, pairs) = Dedup::new("people", "token_filtering(2)", "t.name")
            .metric(Metric::Levenshtein, 0.75)
            .run(&mut db)
            .unwrap();
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        // anderson@geneva and anderson@zurich are identical names too.
        assert!(pairs.contains(&(0, 3)), "{pairs:?}");
        assert!(report.violations() >= 3);
    }

    #[test]
    fn exact_blocking_with_separate_sim_attrs() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("people", table());
        // Block on city; compare names.
        let (_, pairs) = Dedup::new("people", "exact", "t.city")
            .metric(Metric::Levenshtein, 0.75)
            .similarity_on(&["t.name"])
            .run(&mut db)
            .unwrap();
        assert_eq!(pairs, vec![(0, 1)], "only the geneva andersons");
    }

    #[test]
    fn pairs_are_unique_despite_multikey_blocking() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("people", table());
        let (_, pairs) = Dedup::new("people", "token_filtering(2)", "t.name")
            .metric(Metric::Levenshtein, 0.7)
            .run(&mut db)
            .unwrap();
        let mut sorted = pairs.clone();
        sorted.dedup();
        assert_eq!(sorted, pairs);
    }
}
