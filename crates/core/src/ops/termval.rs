//! Term validation (`CLUSTER BY(op, metric, theta, term)` + a dictionary).

use std::collections::HashMap;

use cleanm_text::Metric;

use crate::engine::{CleanDb, CleaningReport, EngineError};
use crate::quality::select_best_repairs;

/// Validate the values of `term_attr` against a registered dictionary,
/// suggesting the most similar dictionary entries as repairs (§4.4's
/// CLUSTER BY semantics; the experiment of §8.1).
#[derive(Debug, Clone)]
pub struct TermValidation {
    pub table: String,
    pub dict_table: String,
    /// Blocking spec text: `"token_filtering(2)"`, `"kmeans(5)"`, ….
    pub block_op: String,
    pub metric: Metric,
    pub theta: f64,
    /// The attribute to validate (CleanM expression over alias `t`).
    pub term_attr: String,
}

impl TermValidation {
    pub fn new(table: &str, dict_table: &str, block_op: &str, term_attr: &str) -> Self {
        TermValidation {
            table: table.to_string(),
            dict_table: dict_table.to_string(),
            block_op: block_op.to_string(),
            metric: Metric::Levenshtein,
            theta: 0.8,
            term_attr: term_attr.to_string(),
        }
    }

    pub fn metric(mut self, metric: Metric, theta: f64) -> Self {
        self.metric = metric;
        self.theta = theta;
        self
    }

    /// The CleanM query text for this task.
    pub fn to_sql(&self) -> String {
        let metric_name = match self.metric {
            Metric::Levenshtein => "LD",
            Metric::JaccardQgrams(_) => "jaccard",
            Metric::JaccardWords => "jaccard_words",
            Metric::JaroWinkler => "JW",
        };
        format!(
            "SELECT * FROM {} t, {} w CLUSTER BY({}, {}, {}, {})",
            self.table, self.dict_table, self.block_op, metric_name, self.theta, self.term_attr,
        )
    }

    /// Run, returning the report plus the selected best repair per term.
    pub fn run(
        &self,
        db: &mut CleanDb,
    ) -> Result<(CleaningReport, HashMap<String, String>), EngineError> {
        let report = db.run(&self.to_sql())?;
        let best = select_best_repairs(&report.repairs, self.metric);
        Ok((report, best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EngineProfile;
    use cleanm_values::{DataType, Row, Schema, Table, Value};

    fn setup(block_op: &str) -> (CleanDb, TermValidation) {
        let schema = Schema::of([("name", DataType::Str)]);
        let table = Table::new(
            schema,
            vec![
                Row::new(vec![Value::str("andersen")]), // dirty: anderson
                Row::new(vec![Value::str("zhang")]),    // clean
                Row::new(vec![Value::str("millar")]),   // dirty: miller
            ],
        );
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("authors", table);
        db.register_dictionary(
            "dict",
            vec!["anderson".into(), "zhang".into(), "miller".into()],
        );
        let tv = TermValidation::new("authors", "dict", block_op, "t.name")
            .metric(Metric::Levenshtein, 0.70);
        (db, tv)
    }

    #[test]
    fn token_filtering_repairs() {
        let (mut db, tv) = setup("token_filtering(2)");
        let (_, best) = tv.run(&mut db).unwrap();
        assert_eq!(best.get("andersen").map(String::as_str), Some("anderson"));
        assert_eq!(best.get("millar").map(String::as_str), Some("miller"));
        // Clean terms suggest themselves (no update).
        assert_eq!(best.get("zhang").map(String::as_str), Some("zhang"));
    }

    #[test]
    fn kmeans_repairs() {
        let (mut db, tv) = setup("kmeans(2)");
        let (_, best) = tv.run(&mut db).unwrap();
        // With 2 centers sampled from a 3-entry dictionary the dirty term
        // may or may not share a cluster with its repair; at minimum the
        // clean term finds itself.
        assert_eq!(best.get("zhang").map(String::as_str), Some("zhang"));
    }

    #[test]
    fn sql_rendering() {
        let tv = TermValidation::new("authors", "dict", "token_filtering(3)", "t.name");
        assert_eq!(
            tv.to_sql(),
            "SELECT * FROM authors t, dict w CLUSTER BY(token_filtering(3), LD, 0.8, t.name)"
        );
    }
}
