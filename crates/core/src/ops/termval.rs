//! Term validation (`CLUSTER BY(op, metric, theta, term)` + a dictionary).

use std::collections::HashMap;

use cleanm_text::Metric;

use crate::algebra::plan::Alg;
use crate::calculus::{CalcExpr, FilterAlgo, MonoidKind};
use crate::engine::{CleanDb, CleaningReport, EngineError};
use crate::quality::select_best_repairs;

/// Validate the values of `term_attr` against a registered dictionary,
/// suggesting the most similar dictionary entries as repairs (§4.4's
/// CLUSTER BY semantics; the experiment of §8.1).
#[derive(Debug, Clone)]
pub struct TermValidation {
    pub table: String,
    pub dict_table: String,
    /// Blocking spec text: `"token_filtering(2)"`, `"kmeans(5)"`, ….
    pub block_op: String,
    pub metric: Metric,
    pub theta: f64,
    /// The attribute to validate (CleanM expression over alias `t`).
    pub term_attr: String,
}

impl TermValidation {
    pub fn new(table: &str, dict_table: &str, block_op: &str, term_attr: &str) -> Self {
        TermValidation {
            table: table.to_string(),
            dict_table: dict_table.to_string(),
            block_op: block_op.to_string(),
            metric: Metric::Levenshtein,
            theta: 0.8,
            term_attr: term_attr.to_string(),
        }
    }

    pub fn metric(mut self, metric: Metric, theta: f64) -> Self {
        self.metric = metric;
        self.theta = theta;
        self
    }

    /// The CleanM query text for this task.
    pub fn to_sql(&self) -> String {
        let metric_name = match self.metric {
            Metric::Levenshtein => "LD",
            Metric::JaccardQgrams(_) => "jaccard",
            Metric::JaccardWords => "jaccard_words",
            Metric::JaroWinkler => "JW",
        };
        format!(
            "SELECT * FROM {} t, {} w CLUSTER BY({}, {}, {}, {})",
            self.table, self.dict_table, self.block_op, metric_name, self.theta, self.term_attr,
        )
    }

    /// Run, returning the report plus the selected best repair per term.
    pub fn run(
        &self,
        db: &mut CleanDb,
    ) -> Result<(CleaningReport, HashMap<String, String>), EngineError> {
        let report = db.run(&self.to_sql())?;
        let best = select_best_repairs(&report.repairs, self.metric);
        Ok((report, best))
    }
}

/// One side of a recognized CLUSTER BY plan: a blocked grouping over a
/// scanned table (the data side groups term occurrences, the dictionary
/// side groups its entries).
#[derive(Debug, Clone)]
pub struct TermvalSideShape {
    pub table: String,
    pub scan_var: String,
    pub filters: Vec<CalcExpr>,
    /// Block-key expression (a `BlockKeys` call over the term).
    pub key: CalcExpr,
    /// The term expression grouped into the partition.
    pub item: CalcExpr,
}

/// The recognized physical shape of a lowered CLUSTER BY (term validation)
/// operator: two blocked groupings joined on block key, unnested, and
/// similarity-filtered into `{term, repair}` records. Incrementally, the
/// dictionary side is indexed once and each appended data term probes the
/// matching dictionary blocks.
#[derive(Debug, Clone)]
pub struct TermvalPlanShape {
    pub data: TermvalSideShape,
    pub dict: TermvalSideShape,
    pub algo: FilterAlgo,
    /// The two pair variables `(t, w)` bound by the unnests.
    pub pair_vars: (String, String),
    /// Similarity predicates over `(t, w)`, innermost first.
    pub pair_preds: Vec<CalcExpr>,
}

impl TermvalPlanShape {
    /// Recognize a lowered CLUSTER BY plan; `None` means the plan does not
    /// have the maintainable shape.
    pub fn from_plan(plan: &Alg) -> Option<TermvalPlanShape> {
        let Alg::Reduce {
            input,
            monoid: MonoidKind::List,
            head: CalcExpr::Record(fields),
        } = plan
        else {
            return None;
        };
        let [(term_name, CalcExpr::Var(t)), (repair_name, CalcExpr::Var(w))] = fields.as_slice()
        else {
            return None;
        };
        if term_name != "term" || repair_name != "repair" {
            return None;
        }
        let mut pair_preds = Vec::new();
        let mut node = &**input;
        while let Alg::Select { input, pred } = node {
            pair_preds.push(pred.clone());
            node = input;
        }
        pair_preds.reverse();
        let Alg::Unnest {
            input,
            path: w_path,
            var: w_var,
        } = node
        else {
            return None;
        };
        let Alg::Unnest {
            input,
            path: t_path,
            var: t_var,
        } = &**input
        else {
            return None;
        };
        if t_var != t || w_var != w {
            return None;
        }
        let Alg::Join {
            left,
            right,
            left_key,
            right_key,
        } = &**input
        else {
            return None;
        };
        let side = |nest: &Alg| -> Option<(TermvalSideShape, FilterAlgo, String)> {
            let Alg::Nest {
                input,
                algo,
                key,
                item,
                group_var,
            } = nest
            else {
                return None;
            };
            let (table, scan_var, filters) = super::scan_with_filters(input)?;
            Some((
                TermvalSideShape {
                    table,
                    scan_var,
                    filters,
                    key: key.clone(),
                    item: item.clone(),
                },
                algo.clone(),
                group_var.clone(),
            ))
        };
        let (data, algo, g1) = side(left)?;
        let (dict, _, g2) = side(right)?;
        // The unnests must iterate the joined groups' partitions and the
        // join must be on block key.
        let over = |path: &CalcExpr, group: &str| match path {
            CalcExpr::Proj(base, field) => {
                field == "partition" && matches!(&**base, CalcExpr::Var(v) if v == group)
            }
            _ => false,
        };
        let keyed = |key: &CalcExpr, group: &str| match key {
            CalcExpr::Proj(base, field) => {
                field == "key" && matches!(&**base, CalcExpr::Var(v) if v == group)
            }
            _ => false,
        };
        if !over(t_path, &g1)
            || !over(w_path, &g2)
            || !keyed(left_key, &g1)
            || !keyed(right_key, &g2)
        {
            return None;
        }
        Some(TermvalPlanShape {
            data,
            dict,
            algo,
            pair_vars: (t.clone(), w.clone()),
            pair_preds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EngineProfile;
    use cleanm_values::{DataType, Row, Schema, Table, Value};

    fn setup(block_op: &str) -> (CleanDb, TermValidation) {
        let schema = Schema::of([("name", DataType::Str)]);
        let table = Table::new(
            schema,
            vec![
                Row::new(vec![Value::str("andersen")]), // dirty: anderson
                Row::new(vec![Value::str("zhang")]),    // clean
                Row::new(vec![Value::str("millar")]),   // dirty: miller
            ],
        );
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("authors", table);
        db.register_dictionary(
            "dict",
            vec!["anderson".into(), "zhang".into(), "miller".into()],
        );
        let tv = TermValidation::new("authors", "dict", block_op, "t.name")
            .metric(Metric::Levenshtein, 0.70);
        (db, tv)
    }

    #[test]
    fn token_filtering_repairs() {
        let (mut db, tv) = setup("token_filtering(2)");
        let (_, best) = tv.run(&mut db).unwrap();
        assert_eq!(best.get("andersen").map(String::as_str), Some("anderson"));
        assert_eq!(best.get("millar").map(String::as_str), Some("miller"));
        // Clean terms suggest themselves (no update).
        assert_eq!(best.get("zhang").map(String::as_str), Some("zhang"));
    }

    #[test]
    fn kmeans_repairs() {
        let (mut db, tv) = setup("kmeans(2)");
        let (_, best) = tv.run(&mut db).unwrap();
        // With 2 centers sampled from a 3-entry dictionary the dirty term
        // may or may not share a cluster with its repair; at minimum the
        // clean term finds itself.
        assert_eq!(best.get("zhang").map(String::as_str), Some("zhang"));
    }

    #[test]
    fn sql_rendering() {
        let tv = TermValidation::new("authors", "dict", "token_filtering(3)", "t.name");
        assert_eq!(
            tv.to_sql(),
            "SELECT * FROM authors t, dict w CLUSTER BY(token_filtering(3), LD, 0.8, t.name)"
        );
    }

    #[test]
    fn termval_plan_shape_round_trips_through_the_pipeline() {
        use crate::algebra::lower_op;
        use crate::calculus::{desugar_query, normalize};
        use crate::lang::parse_query;
        let q = parse_query(
            "SELECT * FROM authors t, dict w CLUSTER BY(token_filtering(2), LD, 0.7, t.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let (comp, _) = normalize(&dq.ops[0].comp);
        let plan = lower_op(&comp).unwrap();
        let shape = TermvalPlanShape::from_plan(&plan).expect("CLUSTER BY shape recognized");
        assert_eq!(shape.data.table, "authors");
        assert_eq!(shape.dict.table, "dict");
        assert!(matches!(shape.algo, FilterAlgo::TokenFilter { q: 2 }));
        assert_eq!(shape.pair_preds.len(), 1);
    }
}
