//! Syntactic transformations (§8.2, Table 4): splitting dates and filling
//! missing values, either as separate passes or fused into one.
//!
//! The paper's point: each lightweight operation costs ≈1.15× a plain
//! traversal; running them one after another costs the sum (≈2.3×), but the
//! optimizer "applies both operations in one go" — a single pass computing
//! the average quantity once and then rewriting each row — for ≈1.19×.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cleanm_exec::{Dataset, ExecContext};
use cleanm_values::{DataType, Error, Field, Result, Row, Schema, Table, Value};

/// Map a runtime failure (cancellation, deadline, injected fault) into the
/// value-layer error these table-level passes report.
fn exec_err(e: cleanm_exec::ExecError) -> Error {
    Error::Invalid(e.to_string())
}

/// One transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transform {
    /// Replace a `YYYY-MM-DD` string column with year/month/day int columns.
    SplitDate { column: String },
    /// Replace NULLs in a numeric column with the column's average.
    FillMissing { column: String },
}

/// Run the transforms one dataset pass each, or fused into a single pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformMode {
    Separate,
    Fused,
}

/// Outcome: the transformed table plus cost accounting.
#[derive(Debug, Clone)]
pub struct TransformReport {
    pub table: Table,
    /// Full-table passes performed (aggregation pre-passes excluded).
    pub passes: usize,
    pub duration: Duration,
}

/// A plain traversal that projects every attribute — Table 4's baseline
/// ("a traversal of the dataset that projects all its attributes").
pub fn baseline_scan(ctx: &Arc<ExecContext>, table: &Table) -> Duration {
    let start = Instant::now();
    let ds = Dataset::from_vec(ctx, table.rows.clone());
    let projected = ds
        .map(|row| Row::new(row.values().to_vec()))
        .expect("baseline scan runs without faults");
    let n = projected.collect().len();
    assert_eq!(n, table.rows.len());
    start.elapsed()
}

/// Apply `transforms` to `table` under `mode`.
pub fn apply_transforms(
    ctx: &Arc<ExecContext>,
    table: &Table,
    transforms: &[Transform],
    mode: TransformMode,
) -> Result<TransformReport> {
    // Resolve columns and pre-compute the aggregates every FillMissing
    // needs. The average is computed once regardless of mode (the fused
    // plan "computes the average quantity and then performs both … in a
    // single dataset pass").
    let start = Instant::now();
    let mut specs: Vec<ResolvedTransform> = Vec::with_capacity(transforms.len());
    for t in transforms {
        specs.push(resolve(ctx, table, t)?);
    }

    let (out, passes) = match mode {
        TransformMode::Separate => {
            let mut current = table.clone();
            for spec in &specs {
                current = run_pass(ctx, &current, std::slice::from_ref(spec))?;
            }
            (current, specs.len())
        }
        TransformMode::Fused => (run_pass(ctx, table, &specs)?, 1),
    };
    Ok(TransformReport {
        table: out,
        passes,
        duration: start.elapsed(),
    })
}

enum ResolvedTransform {
    SplitDate { index: usize, name: String },
    FillMissing { index: usize, average: f64 },
}

fn resolve(ctx: &Arc<ExecContext>, table: &Table, t: &Transform) -> Result<ResolvedTransform> {
    match t {
        Transform::SplitDate { column } => {
            let index = table.schema.index_of(column)?;
            if table.schema.fields()[index].dtype != DataType::Str {
                return Err(Error::Invalid(format!(
                    "split_date needs a string column, `{column}` is {}",
                    table.schema.fields()[index].dtype
                )));
            }
            Ok(ResolvedTransform::SplitDate {
                index,
                name: column.clone(),
            })
        }
        Transform::FillMissing { column } => {
            let index = table.schema.index_of(column)?;
            // Distributed average: sum/count per partition, merged.
            let ds = Dataset::from_vec(ctx, table.rows.clone());
            let partials: Vec<(f64, u64)> = ds
                .map_partitions(move |rows| {
                    let mut sum = 0.0;
                    let mut n = 0u64;
                    for r in rows {
                        if let Ok(v) = r.get(index) {
                            if !v.is_null() {
                                if let Ok(f) = v.as_float() {
                                    sum += f;
                                    n += 1;
                                }
                            }
                        }
                    }
                    vec![(sum, n)]
                })
                .map_err(exec_err)?
                .collect();
            let (sum, n) = partials
                .into_iter()
                .fold((0.0, 0u64), |(s, c), (ps, pc)| (s + ps, c + pc));
            let average = if n == 0 { 0.0 } else { sum / n as f64 };
            Ok(ResolvedTransform::FillMissing { index, average })
        }
    }
}

/// One full-table pass applying every resolved transform to each row.
fn run_pass(ctx: &Arc<ExecContext>, table: &Table, specs: &[ResolvedTransform]) -> Result<Table> {
    // Output schema: date columns expand into y/m/d ints, in place.
    let mut fields: Vec<Field> = Vec::new();
    for (i, f) in table.schema.fields().iter().enumerate() {
        match specs.iter().find_map(|s| match s {
            ResolvedTransform::SplitDate { index, name } if *index == i => Some(name),
            _ => None,
        }) {
            Some(name) => {
                fields.push(Field::new(format!("{name}_year"), DataType::Int));
                fields.push(Field::new(format!("{name}_month"), DataType::Int));
                fields.push(Field::new(format!("{name}_day"), DataType::Int));
            }
            None => fields.push(f.clone()),
        }
    }
    let schema = Schema::new(fields)?;

    let split_indices: Vec<usize> = specs
        .iter()
        .filter_map(|s| match s {
            ResolvedTransform::SplitDate { index, .. } => Some(*index),
            _ => None,
        })
        .collect();
    let fills: Vec<(usize, f64)> = specs
        .iter()
        .filter_map(|s| match s {
            ResolvedTransform::FillMissing { index, average } => Some((*index, *average)),
            _ => None,
        })
        .collect();

    let ds = Dataset::from_vec(ctx, table.rows.clone());
    let rows = ds
        .map(move |row| {
            let mut out: Vec<Value> = Vec::with_capacity(row.len() + 2 * split_indices.len());
            for (i, v) in row.values().iter().enumerate() {
                if split_indices.contains(&i) {
                    let (y, m, d) = split_date_text(&v.to_text());
                    out.push(y);
                    out.push(m);
                    out.push(d);
                } else if let Some((_, avg)) = fills
                    .iter()
                    .find(|(fi, _)| *fi == i)
                    .filter(|_| v.is_null())
                {
                    out.push(Value::Float(*avg));
                } else {
                    out.push(v.clone());
                }
            }
            Row::new(out)
        })
        .map_err(exec_err)?
        .collect();
    Ok(Table::new(schema, rows))
}

/// Semantic transformation (§4.4 "Transformations"): map the values of one
/// column through an auxiliary table (e.g. airports → cities). Reuses the
/// term-validation machinery — exact match first, then the most similar
/// mapping key above `theta` — and projects the mapped value as the
/// suggested replacement.
///
/// `mapping` is a two-column view of the auxiliary table: `(from, to)`.
/// Returns the rewritten table plus, per row, whether a mapping applied.
pub fn semantic_map(
    ctx: &Arc<ExecContext>,
    table: &Table,
    column: &str,
    mapping: &[(String, String)],
    metric: cleanm_text::Metric,
    theta: f64,
) -> Result<(Table, usize)> {
    let index = table.schema.index_of(column)?;
    // Exact lookups by normalized key; similarity fallback scans candidates
    // sharing a first character bucket (cheap blocking).
    let exact: std::collections::HashMap<String, &String> = mapping
        .iter()
        .map(|(from, to)| (cleanm_text::normalize(from).into_owned(), to))
        .collect();
    let mapping = mapping.to_vec();

    let ds = Dataset::from_vec(ctx, table.rows.clone());
    let mapped: Vec<(Row, bool)> = ds
        .map(move |row| {
            let raw = match row.get(index) {
                Ok(v) if !v.is_null() => v.to_text(),
                _ => return (row, false),
            };
            let norm = cleanm_text::normalize(&raw);
            let replacement = exact
                .get(norm.as_ref())
                .map(|to| (*to).clone())
                .or_else(|| {
                    mapping
                        .iter()
                        .map(|(from, to)| (cleanm_text::normalize(from), to))
                        .filter(|(from, _)| metric.similar(&norm, from, theta))
                        .max_by(|(a, _), (b, _)| {
                            metric
                                .similarity(&norm, a)
                                .total_cmp(&metric.similarity(&norm, b))
                        })
                        .map(|(_, to)| to.clone())
                });
            match replacement {
                Some(to) => {
                    let mut values = row.values().to_vec();
                    values[index] = Value::str(to);
                    (Row::new(values), true)
                }
                None => (row, false),
            }
        })
        .map_err(exec_err)?
        .collect();
    let applied = mapped.iter().filter(|(_, hit)| *hit).count();
    let rows = mapped.into_iter().map(|(r, _)| r).collect();
    Ok((Table::new(table.schema.clone(), rows), applied))
}

fn split_date_text(s: &str) -> (Value, Value, Value) {
    let mut parts = s.split('-');
    let mut next_int = || {
        parts
            .next()
            .and_then(|p| p.parse::<i64>().ok())
            .map(Value::Int)
            .unwrap_or(Value::Null)
    };
    (next_int(), next_int(), next_int())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let schema = Schema::of([
            ("quantity", DataType::Float),
            ("receiptdate", DataType::Str),
        ]);
        Table::new(
            schema,
            vec![
                Row::new(vec![Value::Float(10.0), Value::str("1995-03-17")]),
                Row::new(vec![Value::Null, Value::str("1996-12-01")]),
                Row::new(vec![Value::Float(30.0), Value::str("1994-01-31")]),
            ],
        )
    }

    fn ctx() -> Arc<ExecContext> {
        ExecContext::new(2, 4)
    }

    #[test]
    fn split_date_expands_columns() {
        let report = apply_transforms(
            &ctx(),
            &table(),
            &[Transform::SplitDate {
                column: "receiptdate".into(),
            }],
            TransformMode::Separate,
        )
        .unwrap();
        let t = &report.table;
        assert_eq!(t.schema.len(), 4);
        assert_eq!(t.rows[0].values()[1], Value::Int(1995));
        assert_eq!(t.rows[0].values()[2], Value::Int(3));
        assert_eq!(t.rows[0].values()[3], Value::Int(17));
    }

    #[test]
    fn fill_missing_uses_average() {
        let report = apply_transforms(
            &ctx(),
            &table(),
            &[Transform::FillMissing {
                column: "quantity".into(),
            }],
            TransformMode::Separate,
        )
        .unwrap();
        // avg(10, 30) = 20
        assert_eq!(report.table.rows[1].values()[0], Value::Float(20.0));
        assert_eq!(report.table.rows[0].values()[0], Value::Float(10.0));
    }

    #[test]
    fn fused_equals_separate_output() {
        let transforms = [
            Transform::SplitDate {
                column: "receiptdate".into(),
            },
            Transform::FillMissing {
                column: "quantity".into(),
            },
        ];
        let sep = apply_transforms(&ctx(), &table(), &transforms, TransformMode::Separate).unwrap();
        let fused = apply_transforms(&ctx(), &table(), &transforms, TransformMode::Fused).unwrap();
        assert_eq!(sep.table, fused.table);
        assert_eq!(sep.passes, 2);
        assert_eq!(fused.passes, 1);
    }

    #[test]
    fn malformed_dates_become_null() {
        let schema = Schema::of([("d", DataType::Str)]);
        let t = Table::new(schema, vec![Row::new(vec![Value::str("not a date")])]);
        let report = apply_transforms(
            &ctx(),
            &t,
            &[Transform::SplitDate { column: "d".into() }],
            TransformMode::Fused,
        )
        .unwrap();
        assert_eq!(report.table.rows[0].values()[0], Value::Null);
    }

    #[test]
    fn wrong_column_types_error() {
        let err = apply_transforms(
            &ctx(),
            &table(),
            &[Transform::SplitDate {
                column: "quantity".into(),
            }],
            TransformMode::Fused,
        );
        assert!(err.is_err());
        let err = apply_transforms(
            &ctx(),
            &table(),
            &[Transform::FillMissing {
                column: "nope".into(),
            }],
            TransformMode::Fused,
        );
        assert!(err.is_err());
    }

    #[test]
    fn baseline_scan_runs() {
        let d = baseline_scan(&ctx(), &table());
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn semantic_map_exact_and_similar() {
        let schema = Schema::of([("airport", DataType::Str)]);
        let t = Table::new(
            schema,
            vec![
                Row::new(vec![Value::str("GVA")]),
                Row::new(vec![Value::str("gva")]), // exact after normalize
                Row::new(vec![Value::str("ZRHH")]), // similar to ZRH
                Row::new(vec![Value::str("XXX")]), // no mapping
                Row::new(vec![Value::Null]),
            ],
        );
        let mapping = vec![
            ("GVA".to_string(), "Geneva".to_string()),
            ("ZRH".to_string(), "Zurich".to_string()),
        ];
        let (out, applied) = semantic_map(
            &ctx(),
            &t,
            "airport",
            &mapping,
            cleanm_text::Metric::Levenshtein,
            0.7,
        )
        .unwrap();
        assert_eq!(applied, 3);
        assert_eq!(out.rows[0].values()[0], Value::str("Geneva"));
        assert_eq!(out.rows[1].values()[0], Value::str("Geneva"));
        assert_eq!(out.rows[2].values()[0], Value::str("Zurich"));
        assert_eq!(out.rows[3].values()[0], Value::str("XXX"));
        assert!(out.rows[4].values()[0].is_null());
    }

    #[test]
    fn semantic_map_unknown_column_errors() {
        let mapping = vec![("a".to_string(), "b".to_string())];
        assert!(semantic_map(
            &ctx(),
            &table(),
            "nope",
            &mapping,
            cleanm_text::Metric::Levenshtein,
            0.8
        )
        .is_err());
    }
}
