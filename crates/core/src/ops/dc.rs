//! General denial constraints with inequality predicates (rule ψ of §8.3).
//!
//! A DC `∀t1,t2 ¬(p₁ ∧ … ∧ pₙ)` with inequalities requires a theta
//! self-join. The engine profile decides the physical algorithm (M-Bucket /
//! min-max blocks / cartesian+filter) *and* whether the single-tuple
//! selective predicate is pushed below the join — CleanDB's monoid-level
//! filter pushdown — or evaluated inside the pairwise predicate, as the
//! black-box baselines do.
//!
//! Running a hopeless plan returns [`DcOutcome::BudgetExceeded`] rather than
//! an error: Table 5 reports exactly that outcome for the baselines.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cleanm_exec::ExecError;
use cleanm_values::Value;

use crate::algebra::plan::{Alg, HintKind, ThetaHint};
use crate::calculus::desugar::ROWID_FIELD;
use crate::calculus::{BinOp, CalcExpr, EvalCtx, MonoidKind};
use crate::engine::{CleanDb, EngineError};
use crate::physical::Executor;

/// A two-tuple denial constraint over one table. `t1` / `t2` are the row
/// variables of the two sides.
#[derive(Debug, Clone)]
pub struct InequalityDc {
    pub table: String,
    /// Optional selective single-tuple predicate over `t1` (rule ψ's
    /// `t1.price < X`).
    pub selective_filter: Option<CalcExpr>,
    /// The pairwise predicate over `t1`, `t2`.
    pub pair_pred: CalcExpr,
    /// Numeric pruning hints for the theta join.
    pub hint: ThetaHint,
}

/// What happened when checking the constraint.
#[derive(Debug, Clone)]
pub enum DcOutcome {
    Completed {
        violations: usize,
        duration: Duration,
        comparisons: u64,
    },
    /// The plan needed more work than the context's budget allows — the
    /// paper's "system is unable to terminate".
    BudgetExceeded {
        operator: &'static str,
        needed: u64,
        duration: Duration,
    },
}

impl DcOutcome {
    pub fn completed(&self) -> bool {
        matches!(self, DcOutcome::Completed { .. })
    }
}

/// Which tuple variable of a two-tuple constraint a term reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DcSide {
    /// The filtered/left tuple variable.
    T1,
    /// The right tuple variable.
    T2,
}

/// One side of an atomic comparison: a cell of `t1`/`t2` or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum DcTerm {
    /// `tᵢ.column`.
    Cell(DcSide, String),
    /// A literal bound.
    Const(Value),
}

impl DcTerm {
    /// Read the term's current value against a concrete `(t1, t2)` pair.
    pub fn value(&self, t1: &Value, t2: &Value) -> cleanm_values::Result<Value> {
        match self {
            DcTerm::Cell(DcSide::T1, col) => t1.field(col).cloned(),
            DcTerm::Cell(DcSide::T2, col) => t2.field(col).cloned(),
            DcTerm::Const(v) => Ok(v.clone()),
        }
    }
}

/// One atomic comparison of the constraint's conjunction — the structured
/// form a repair engine consumes instead of re-parsing [`CalcExpr`] trees.
#[derive(Debug, Clone, PartialEq)]
pub struct DcAtom {
    /// The comparison operator.
    pub op: BinOp,
    /// Left operand.
    pub left: DcTerm,
    /// Right operand.
    pub right: DcTerm,
}

impl DcAtom {
    /// Evaluate the atom against a concrete `(t1, t2)` pair under the
    /// engine's comparison semantics (NULL non-truthy outside Eq/Ne, mixed
    /// numerics widened, NaN via the canonical total order) — detection and
    /// repair agree by construction.
    pub fn holds(&self, t1: &Value, t2: &Value) -> cleanm_values::Result<bool> {
        let l = self.left.value(t1, t2)?;
        let r = self.right.value(t1, t2)?;
        Ok(matches!(
            crate::calculus::eval::eval_binop(self.op, &l, &r)?,
            Value::Bool(true)
        ))
    }
}

/// An offending cell of one violating pair, oriented so the failed relation
/// reads `value op bound` (right-hand cells carry the flipped comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct DcCell {
    /// Which tuple variable the cell belongs to.
    pub side: DcSide,
    /// The cell's row id.
    pub row_id: i64,
    /// The cell's column.
    pub column: String,
    /// The cell's value at detection time.
    pub value: Value,
    /// The comparison the cell satisfied (making the pair violate).
    pub op: BinOp,
    /// The other operand's value at detection time.
    pub bound: Value,
}

/// One violating `(t1, t2)` pair with the offending cells of every atomic
/// comparison that held.
#[derive(Debug, Clone, PartialEq)]
pub struct DcViolation {
    /// Row id bound to `t1`.
    pub t1: i64,
    /// Row id bound to `t2`.
    pub t2: i64,
    /// Offending cells, in atom order (left cell before right cell).
    pub cells: Vec<DcCell>,
}

/// Flip a comparison so `a op b` reads as `b flip(op) a`.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn term_of(e: &CalcExpr) -> Option<DcTerm> {
    match e {
        CalcExpr::Proj(base, col) => match base.as_ref() {
            CalcExpr::Var(v) if v == "t1" => Some(DcTerm::Cell(DcSide::T1, col.clone())),
            CalcExpr::Var(v) if v == "t2" => Some(DcTerm::Cell(DcSide::T2, col.clone())),
            _ => None,
        },
        CalcExpr::Const(v) => Some(DcTerm::Const(v.clone())),
        _ => None,
    }
}

fn flatten_conjunction(e: &CalcExpr, out: &mut Vec<DcAtom>) -> Option<()> {
    match e {
        CalcExpr::BinOp(BinOp::And, l, r) => {
            flatten_conjunction(l, out)?;
            flatten_conjunction(r, out)
        }
        CalcExpr::BinOp(op, l, r) if op.is_comparison() => {
            out.push(DcAtom {
                op: *op,
                left: term_of(l)?,
                right: term_of(r)?,
            });
            Some(())
        }
        _ => None,
    }
}

impl InequalityDc {
    /// Rule ψ of §8.3: an item cannot have a bigger discount than a more
    /// expensive item, restricted to cheap t1 items
    /// (`t1.price < t2.price ∧ t1.discount > t2.discount ∧ t1.price < cap`).
    pub fn rule_psi(table: &str, price_cap: f64) -> Self {
        let price = |v: &str| CalcExpr::proj(CalcExpr::var(v), "extendedprice");
        let discount = |v: &str| CalcExpr::proj(CalcExpr::var(v), "discount");
        InequalityDc {
            table: table.to_string(),
            selective_filter: Some(CalcExpr::bin(
                BinOp::Lt,
                price("t1"),
                CalcExpr::float(price_cap),
            )),
            pair_pred: CalcExpr::bin(
                BinOp::And,
                CalcExpr::bin(BinOp::Lt, price("t1"), price("t2")),
                CalcExpr::bin(BinOp::Gt, discount("t1"), discount("t2")),
            ),
            hint: ThetaHint {
                left_key: price("t1"),
                right_key: price("t2"),
                kind: HintKind::LeftLessThanRight,
            },
        }
    }

    /// Build the algebra plan under the session's profile.
    pub fn plan(&self, push_filter: bool) -> Arc<Alg> {
        let scan_l: Arc<Alg> = Arc::new(Alg::Scan {
            table: self.table.clone(),
            var: "t1".into(),
        });
        let scan_r: Arc<Alg> = Arc::new(Alg::Scan {
            table: self.table.clone(),
            var: "t2".into(),
        });
        let (left, pred) = match (&self.selective_filter, push_filter) {
            (Some(f), true) => (
                Arc::new(Alg::Select {
                    input: scan_l,
                    pred: f.clone(),
                }) as Arc<Alg>,
                self.pair_pred.clone(),
            ),
            (Some(f), false) => (
                scan_l,
                CalcExpr::bin(BinOp::And, f.clone(), self.pair_pred.clone()),
            ),
            (None, _) => (scan_l, self.pair_pred.clone()),
        };
        Arc::new(Alg::Reduce {
            input: Arc::new(Alg::ThetaJoin {
                left,
                right: scan_r,
                pred,
                hint: self.hint.clone(),
            }),
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![
                ("t1", CalcExpr::proj(CalcExpr::var("t1"), ROWID_FIELD)),
                ("t2", CalcExpr::proj(CalcExpr::var("t2"), ROWID_FIELD)),
            ]),
        })
    }

    /// The constraint's conjunction as structured atomic comparisons
    /// (selective filter first, then the pairwise atoms), or `None` when
    /// any conjunct is not a simple `term cmp term` over `t1`/`t2` cells
    /// and constants. Detection and repair share this decomposition — the
    /// repair engine never re-parses the [`CalcExpr`] trees.
    pub fn atoms(&self) -> Option<Vec<DcAtom>> {
        let mut out = Vec::new();
        if let Some(f) = &self.selective_filter {
            flatten_conjunction(f, &mut out)?;
        }
        flatten_conjunction(&self.pair_pred, &mut out)?;
        Some(out)
    }

    /// Check the constraint on a session, honouring its profile and budget.
    pub fn run(&self, db: &mut CleanDb) -> Result<DcOutcome, EngineError> {
        self.execute(db).map(|(outcome, _)| outcome)
    }

    /// [`InequalityDc::run`], additionally returning one structured
    /// [`DcViolation`] per distinct violating pair (sorted by `(t1, t2)`;
    /// empty when the budget was exceeded).
    pub fn run_detailed(
        &self,
        db: &mut CleanDb,
    ) -> Result<(DcOutcome, Vec<DcViolation>), EngineError> {
        let (outcome, outputs) = self.execute(db)?;
        let violations = self.describe_pairs(db, &outputs)?;
        Ok((outcome, violations))
    }

    /// Turn raw pair-plan output rows into structured violation records by
    /// re-reading the offending cells and the bounds they crossed. Shared
    /// by [`InequalityDc::run_detailed`] and incremental DC maintainers
    /// (which hold delta pair output in the same shape).
    pub fn describe_pairs(
        &self,
        db: &CleanDb,
        outputs: &[Value],
    ) -> Result<Vec<DcViolation>, EngineError> {
        let mut pairs = pair_ids(outputs);
        pairs.sort_unstable();
        pairs.dedup();
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let rows = db.table_rows(&self.table).ok_or_else(|| {
            EngineError::Plan(cleanm_values::Error::Invalid(format!(
                "DC over unknown table `{}`",
                self.table
            )))
        })?;
        let atoms = self.atoms().unwrap_or_default();
        let mut out = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            let (Some(r1), Some(r2)) = (
                usize::try_from(a).ok().and_then(|i| rows.get(i)),
                usize::try_from(b).ok().and_then(|i| rows.get(i)),
            ) else {
                continue;
            };
            let mut cells = Vec::new();
            for atom in &atoms {
                if !atom.holds(r1, r2).unwrap_or(false) {
                    continue;
                }
                let l = atom.left.value(r1, r2)?;
                let r = atom.right.value(r1, r2)?;
                if let DcTerm::Cell(side, col) = &atom.left {
                    cells.push(DcCell {
                        side: *side,
                        row_id: if *side == DcSide::T1 { a } else { b },
                        column: col.clone(),
                        value: l.clone(),
                        op: atom.op,
                        bound: r.clone(),
                    });
                }
                if let DcTerm::Cell(side, col) = &atom.right {
                    cells.push(DcCell {
                        side: *side,
                        row_id: if *side == DcSide::T1 { a } else { b },
                        column: col.clone(),
                        value: r,
                        op: flip(atom.op),
                        bound: l,
                    });
                }
            }
            out.push(DcViolation {
                t1: a,
                t2: b,
                cells,
            });
        }
        Ok(out)
    }

    fn execute(&self, db: &mut CleanDb) -> Result<(DcOutcome, Vec<Value>), EngineError> {
        let push = db.profile().push_selective_filters;
        let plan = self.plan(push);
        let tables = db_tables(db)?;
        db.context().metrics().reset();
        let mut executor = Executor::new(
            Arc::clone(db.context()),
            db.profile().clone(),
            tables,
            Arc::new(EvalCtx::new()),
        );
        let start = Instant::now();
        match executor.run_reduce(&plan) {
            Ok(violations) => {
                let outcome = DcOutcome::Completed {
                    violations: dedup_pairs(&violations),
                    duration: start.elapsed(),
                    comparisons: db.context().metrics().snapshot().comparisons,
                };
                Ok((outcome, violations))
            }
            Err(ExecError::BudgetExceeded {
                operator, needed, ..
            }) => Ok((
                DcOutcome::BudgetExceeded {
                    operator,
                    needed,
                    duration: start.elapsed(),
                },
                Vec::new(),
            )),
            Err(e) => Err(EngineError::Exec(e)),
        }
    }
}

/// Count the distinct `(t1, t2)` row-id pairs in a DC plan's output — the
/// violation unit Table 5 reports (exposed for incremental DC maintainers,
/// which must count new pairs the same way).
pub fn dedup_pairs(outputs: &[Value]) -> usize {
    let mut pairs = pair_ids(outputs);
    pairs.sort_unstable();
    pairs.dedup();
    pairs.len()
}

/// The raw `(t1, t2)` row-id pairs of a DC plan's output (unsorted,
/// duplicates preserved).
pub fn pair_ids(outputs: &[Value]) -> Vec<(i64, i64)> {
    outputs
        .iter()
        .filter_map(|v| {
            let a = v.field("t1").ok()?.as_int().ok()?;
            let b = v.field("t2").ok()?.as_int().ok()?;
            Some((a, b))
        })
        .collect()
}

// The executor borrows the session's table map; expose it via a helper to
// keep the borrow local.
fn db_tables(
    db: &CleanDb,
) -> Result<&std::collections::HashMap<String, crate::engine::StoredTable>, EngineError> {
    Ok(db.tables_internal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EngineProfile;
    use cleanm_exec::ExecContext;
    use cleanm_values::{DataType, Row, Schema, Table};

    fn lineitem(n: i64) -> Table {
        let schema = Schema::of([
            ("extendedprice", DataType::Float),
            ("discount", DataType::Float),
        ]);
        // Clean: discount monotone in price. Then poison one row.
        let mut rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Float(100.0 + i as f64),
                    Value::Float((i as f64) / (n as f64)),
                ])
            })
            .collect();
        // Cheap item with a huge discount: violates ψ against pricier rows.
        rows.push(Row::new(vec![Value::Float(50.0), Value::Float(0.99)]));
        Table::new(schema, rows)
    }

    fn psi(cap: f64) -> InequalityDc {
        InequalityDc::rule_psi("lineitem", cap)
    }

    #[test]
    fn cleandb_finds_violations() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("lineitem", lineitem(100));
        let outcome = psi(60.0).run(&mut db).unwrap();
        match outcome {
            DcOutcome::Completed { violations, .. } => {
                // The poisoned row (price 50, discount .99) violates against
                // every pricier row with a smaller discount: i/100 < .99 for
                // i ≤ 98, i.e. 99 rows.
                assert_eq!(violations, 99);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_profiles_agree_without_budget() {
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
        ] {
            let mut db = CleanDb::new(profile.clone());
            db.register("lineitem", lineitem(60));
            let outcome = psi(60.0).run(&mut db).unwrap();
            match outcome {
                DcOutcome::Completed { violations, .. } => {
                    assert_eq!(violations, 60, "{}", profile.name);
                }
                other => panic!("{}: {other:?}", profile.name),
            }
        }
    }

    #[test]
    fn rule_psi_decomposes_into_three_atoms() {
        let atoms = psi(60.0).atoms().expect("ψ is a simple conjunction");
        assert_eq!(atoms.len(), 3);
        // Selective filter first: t1.extendedprice < 60.0.
        assert_eq!(
            atoms[0],
            DcAtom {
                op: BinOp::Lt,
                left: DcTerm::Cell(DcSide::T1, "extendedprice".into()),
                right: DcTerm::Const(Value::Float(60.0)),
            }
        );
        assert_eq!(atoms[2].op, BinOp::Gt);
        assert_eq!(
            atoms[2].left,
            DcTerm::Cell(DcSide::T1, "discount".into()),
            "pairwise discount atom last"
        );
    }

    #[test]
    fn run_detailed_reports_offending_cells_with_bounds() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("lineitem", lineitem(100));
        let (outcome, violations) = psi(60.0).run_detailed(&mut db).unwrap();
        assert!(outcome.completed());
        assert_eq!(violations.len(), 99);
        // Pairs come back sorted; every violation names the poisoned row
        // (id 100: price 50, discount .99) on the t1 side.
        for v in &violations {
            assert_eq!(v.t1, 100);
            // 3 atoms × (1 or 2 cells): filter contributes one cell, each
            // pairwise atom two.
            assert_eq!(v.cells.len(), 5);
            let discount = v
                .cells
                .iter()
                .find(|c| c.side == DcSide::T1 && c.column == "discount")
                .unwrap();
            assert_eq!(discount.value, Value::Float(0.99));
            assert_eq!(discount.op, BinOp::Gt);
            // The bound is the partner row's (smaller) discount.
            assert!(discount.bound.as_float().unwrap() < 0.99);
        }
        assert!(violations
            .windows(2)
            .all(|w| (w[0].t1, w[0].t2) < (w[1].t1, w[1].t2)));
    }

    #[test]
    fn budget_kills_baselines_but_not_cleandb() {
        // Budget chosen so |σL|×|R| fits but |L|×|R| does not: exactly
        // Table 5's shape.
        let n = 400usize;
        let budget = (n as u64) * (n as u64) / 2;
        let make_db = |profile: EngineProfile| {
            let ctx = ExecContext::with_budget(2, 4, budget);
            let mut db = CleanDb::with_context(profile, ctx);
            db.register("lineitem", lineitem(n as i64 - 1));
            db
        };
        let clean = psi(60.0)
            .run(&mut make_db(EngineProfile::clean_db()))
            .unwrap();
        assert!(clean.completed(), "{clean:?}");
        let spark = psi(60.0)
            .run(&mut make_db(EngineProfile::spark_sql_like()))
            .unwrap();
        assert!(!spark.completed(), "{spark:?}");
        let bd = psi(60.0)
            .run(&mut make_db(EngineProfile::big_dansing_like()))
            .unwrap();
        assert!(!bd.completed(), "{bd:?}");
    }
}
