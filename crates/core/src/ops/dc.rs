//! General denial constraints with inequality predicates (rule ψ of §8.3).
//!
//! A DC `∀t1,t2 ¬(p₁ ∧ … ∧ pₙ)` with inequalities requires a theta
//! self-join. The engine profile decides the physical algorithm (M-Bucket /
//! min-max blocks / cartesian+filter) *and* whether the single-tuple
//! selective predicate is pushed below the join — CleanDB's monoid-level
//! filter pushdown — or evaluated inside the pairwise predicate, as the
//! black-box baselines do.
//!
//! Running a hopeless plan returns [`DcOutcome::BudgetExceeded`] rather than
//! an error: Table 5 reports exactly that outcome for the baselines.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cleanm_exec::ExecError;
use cleanm_values::Value;

use crate::algebra::plan::{Alg, HintKind, ThetaHint};
use crate::calculus::desugar::ROWID_FIELD;
use crate::calculus::{BinOp, CalcExpr, EvalCtx, MonoidKind};
use crate::engine::{CleanDb, EngineError};
use crate::physical::Executor;

/// A two-tuple denial constraint over one table. `t1` / `t2` are the row
/// variables of the two sides.
#[derive(Debug, Clone)]
pub struct InequalityDc {
    pub table: String,
    /// Optional selective single-tuple predicate over `t1` (rule ψ's
    /// `t1.price < X`).
    pub selective_filter: Option<CalcExpr>,
    /// The pairwise predicate over `t1`, `t2`.
    pub pair_pred: CalcExpr,
    /// Numeric pruning hints for the theta join.
    pub hint: ThetaHint,
}

/// What happened when checking the constraint.
#[derive(Debug, Clone)]
pub enum DcOutcome {
    Completed {
        violations: usize,
        duration: Duration,
        comparisons: u64,
    },
    /// The plan needed more work than the context's budget allows — the
    /// paper's "system is unable to terminate".
    BudgetExceeded {
        operator: &'static str,
        needed: u64,
        duration: Duration,
    },
}

impl DcOutcome {
    pub fn completed(&self) -> bool {
        matches!(self, DcOutcome::Completed { .. })
    }
}

impl InequalityDc {
    /// Rule ψ of §8.3: an item cannot have a bigger discount than a more
    /// expensive item, restricted to cheap t1 items
    /// (`t1.price < t2.price ∧ t1.discount > t2.discount ∧ t1.price < cap`).
    pub fn rule_psi(table: &str, price_cap: f64) -> Self {
        let price = |v: &str| CalcExpr::proj(CalcExpr::var(v), "extendedprice");
        let discount = |v: &str| CalcExpr::proj(CalcExpr::var(v), "discount");
        InequalityDc {
            table: table.to_string(),
            selective_filter: Some(CalcExpr::bin(
                BinOp::Lt,
                price("t1"),
                CalcExpr::float(price_cap),
            )),
            pair_pred: CalcExpr::bin(
                BinOp::And,
                CalcExpr::bin(BinOp::Lt, price("t1"), price("t2")),
                CalcExpr::bin(BinOp::Gt, discount("t1"), discount("t2")),
            ),
            hint: ThetaHint {
                left_key: price("t1"),
                right_key: price("t2"),
                kind: HintKind::LeftLessThanRight,
            },
        }
    }

    /// Build the algebra plan under the session's profile.
    pub fn plan(&self, push_filter: bool) -> Arc<Alg> {
        let scan_l: Arc<Alg> = Arc::new(Alg::Scan {
            table: self.table.clone(),
            var: "t1".into(),
        });
        let scan_r: Arc<Alg> = Arc::new(Alg::Scan {
            table: self.table.clone(),
            var: "t2".into(),
        });
        let (left, pred) = match (&self.selective_filter, push_filter) {
            (Some(f), true) => (
                Arc::new(Alg::Select {
                    input: scan_l,
                    pred: f.clone(),
                }) as Arc<Alg>,
                self.pair_pred.clone(),
            ),
            (Some(f), false) => (
                scan_l,
                CalcExpr::bin(BinOp::And, f.clone(), self.pair_pred.clone()),
            ),
            (None, _) => (scan_l, self.pair_pred.clone()),
        };
        Arc::new(Alg::Reduce {
            input: Arc::new(Alg::ThetaJoin {
                left,
                right: scan_r,
                pred,
                hint: self.hint.clone(),
            }),
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![
                ("t1", CalcExpr::proj(CalcExpr::var("t1"), ROWID_FIELD)),
                ("t2", CalcExpr::proj(CalcExpr::var("t2"), ROWID_FIELD)),
            ]),
        })
    }

    /// Check the constraint on a session, honouring its profile and budget.
    pub fn run(&self, db: &mut CleanDb) -> Result<DcOutcome, EngineError> {
        let push = db.profile().push_selective_filters;
        let plan = self.plan(push);
        let tables = db_tables(db)?;
        db.context().metrics().reset();
        let mut executor = Executor::new(
            Arc::clone(db.context()),
            db.profile().clone(),
            tables,
            Arc::new(EvalCtx::new()),
        );
        let start = Instant::now();
        match executor.run_reduce(&plan) {
            Ok(violations) => Ok(DcOutcome::Completed {
                violations: dedup_pairs(&violations),
                duration: start.elapsed(),
                comparisons: db.context().metrics().snapshot().comparisons,
            }),
            Err(ExecError::BudgetExceeded {
                operator, needed, ..
            }) => Ok(DcOutcome::BudgetExceeded {
                operator,
                needed,
                duration: start.elapsed(),
            }),
            Err(e) => Err(EngineError::Exec(e)),
        }
    }
}

/// Count the distinct `(t1, t2)` row-id pairs in a DC plan's output — the
/// violation unit Table 5 reports (exposed for incremental DC maintainers,
/// which must count new pairs the same way).
pub fn dedup_pairs(outputs: &[Value]) -> usize {
    let mut pairs: Vec<(i64, i64)> = outputs
        .iter()
        .filter_map(|v| {
            let a = v.field("t1").ok()?.as_int().ok()?;
            let b = v.field("t2").ok()?.as_int().ok()?;
            Some((a, b))
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs.len()
}

// The executor borrows the session's table map; expose it via a helper to
// keep the borrow local.
fn db_tables(
    db: &CleanDb,
) -> Result<&std::collections::HashMap<String, crate::engine::StoredTable>, EngineError> {
    Ok(db.tables_internal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::EngineProfile;
    use cleanm_exec::ExecContext;
    use cleanm_values::{DataType, Row, Schema, Table};

    fn lineitem(n: i64) -> Table {
        let schema = Schema::of([
            ("extendedprice", DataType::Float),
            ("discount", DataType::Float),
        ]);
        // Clean: discount monotone in price. Then poison one row.
        let mut rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Float(100.0 + i as f64),
                    Value::Float((i as f64) / (n as f64)),
                ])
            })
            .collect();
        // Cheap item with a huge discount: violates ψ against pricier rows.
        rows.push(Row::new(vec![Value::Float(50.0), Value::Float(0.99)]));
        Table::new(schema, rows)
    }

    fn psi(cap: f64) -> InequalityDc {
        InequalityDc::rule_psi("lineitem", cap)
    }

    #[test]
    fn cleandb_finds_violations() {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("lineitem", lineitem(100));
        let outcome = psi(60.0).run(&mut db).unwrap();
        match outcome {
            DcOutcome::Completed { violations, .. } => {
                // The poisoned row (price 50, discount .99) violates against
                // every pricier row with a smaller discount: i/100 < .99 for
                // i ≤ 98, i.e. 99 rows.
                assert_eq!(violations, 99);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_profiles_agree_without_budget() {
        for profile in [
            EngineProfile::clean_db(),
            EngineProfile::spark_sql_like(),
            EngineProfile::big_dansing_like(),
        ] {
            let mut db = CleanDb::new(profile.clone());
            db.register("lineitem", lineitem(60));
            let outcome = psi(60.0).run(&mut db).unwrap();
            match outcome {
                DcOutcome::Completed { violations, .. } => {
                    assert_eq!(violations, 60, "{}", profile.name);
                }
                other => panic!("{}: {other:?}", profile.name),
            }
        }
    }

    #[test]
    fn budget_kills_baselines_but_not_cleandb() {
        // Budget chosen so |σL|×|R| fits but |L|×|R| does not: exactly
        // Table 5's shape.
        let n = 400usize;
        let budget = (n as u64) * (n as u64) / 2;
        let make_db = |profile: EngineProfile| {
            let ctx = ExecContext::with_budget(2, 4, budget);
            let mut db = CleanDb::with_context(profile, ctx);
            db.register("lineitem", lineitem(n as i64 - 1));
            db
        };
        let clean = psi(60.0)
            .run(&mut make_db(EngineProfile::clean_db()))
            .unwrap();
        assert!(clean.completed(), "{clean:?}");
        let spark = psi(60.0)
            .run(&mut make_db(EngineProfile::spark_sql_like()))
            .unwrap();
        assert!(!spark.completed(), "{spark:?}");
        let bd = psi(60.0)
            .run(&mut make_db(EngineProfile::big_dansing_like()))
            .unwrap();
        assert!(!bd.completed(), "{bd:?}");
    }
}
