//! Plan nodes of the nested relational algebra (Table 1 of the paper).

use std::sync::Arc;

use crate::calculus::{CalcExpr, FilterAlgo, MonoidKind};

/// Numeric key hints for a theta join: which scalar each side's pruning key
/// comes from and how cells of the join matrix relate.
#[derive(Debug, Clone, PartialEq)]
pub struct ThetaHint {
    pub left_key: CalcExpr,
    pub right_key: CalcExpr,
    pub kind: HintKind,
}

/// How (left, right) key ranges must relate for a matrix cell to possibly
/// produce output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintKind {
    /// Predicate implies `left.key < right.key` (rule ψ's `t1.price <
    /// t2.price`): cells with `l_min ≥ r_max` are pruned.
    LeftLessThanRight,
    /// No pruning possible; all cells survive (pure load balancing).
    Any,
}

impl HintKind {
    /// The cell-compatibility check handed to the runtime's theta joins.
    pub fn compatible(&self, l: (f64, f64), r: (f64, f64)) -> bool {
        match self {
            HintKind::LeftLessThanRight => l.0 < r.1,
            HintKind::Any => true,
        }
    }

    /// [`HintKind::compatible`] with both range maxes widened by `widen`
    /// before the check — the sound form for prefix-key (string) domains,
    /// where distinct values can collide onto one key
    /// ([`cleanm_stats::STRING_KEY_RESOLUTION`]). Widening only ever
    /// weakens pruning, never unsoundly strengthens it. This is the single
    /// place the widening rule lives; the executor, the cost model, and
    /// the cardinality estimator all build their checks from it.
    pub fn compat_fn(self, widen: f64) -> impl Fn((f64, f64), (f64, f64)) -> bool + Copy {
        move |l: (f64, f64), r: (f64, f64)| self.compatible((l.0, l.1 + widen), (r.0, r.1 + widen))
    }
}

/// The widening a theta-pruning check needs for the given key domain:
/// zero for exact numeric keys, one key-resolution step for prefix-key
/// (string) domains.
pub fn theta_widen(text: bool) -> f64 {
    if text {
        cleanm_stats::STRING_KEY_RESOLUTION
    } else {
        0.0
    }
}

/// A nested-relational-algebra operator. Plans form a DAG via `Arc` — after
/// the sharing rewrite, common sub-plans are literally the same node, and
/// the executor materializes each node once.
///
/// Variable scoping: every operator *extends* the row environment of its
/// input. `Scan` binds `var` to each source row; `Nest` replaces the
/// environment with `group_var` bound to `{key, partition}`; `Unnest` adds
/// `var` per element of `path`.
#[derive(Debug, Clone, PartialEq)]
pub enum Alg {
    /// Bind each row of a base table to `var` (σ-ready scan).
    Scan { table: String, var: String },
    /// Keep environments satisfying `pred` (Table 1's σ).
    Select { input: Arc<Alg>, pred: CalcExpr },
    /// Group by blocker key (Table 1's Γ / the filter monoid): evaluates
    /// `key` (scalar, or list → multi-assignment) and `item` per input
    /// environment, groups items by key, and binds `group_var` to
    /// `{key, partition}` structs.
    Nest {
        input: Arc<Alg>,
        algo: FilterAlgo,
        key: CalcExpr,
        item: CalcExpr,
        group_var: String,
    },
    /// Iterate the collection `path` binding `var` (Table 1's μ).
    Unnest {
        input: Arc<Alg>,
        path: CalcExpr,
        var: String,
    },
    /// Equi-join two plans on scalar key expressions (Table 1's ⋈ with a
    /// conjunctive equality predicate).
    Join {
        left: Arc<Alg>,
        right: Arc<Alg>,
        left_key: CalcExpr,
        right_key: CalcExpr,
    },
    /// Theta join with an arbitrary predicate over the two environments and
    /// numeric pruning hints (§6's custom operator).
    ThetaJoin {
        left: Arc<Alg>,
        right: Arc<Alg>,
        /// Predicate evaluated over the concatenated environment.
        pred: CalcExpr,
        hint: ThetaHint,
    },
    /// Evaluate `head` per environment and fold with `monoid`
    /// (Table 1's Δ).
    Reduce {
        input: Arc<Alg>,
        monoid: MonoidKind,
        head: CalcExpr,
    },
}

impl Alg {
    /// Indented one-operator-per-line rendering (EXPLAIN-style). Shared
    /// nodes are printed with their pointer tag so sharing is visible.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Alg::Scan { table, var } => {
                out.push_str(&format!("{pad}Scan {table} as {var}\n"));
            }
            Alg::Select { input, pred } => {
                out.push_str(&format!("{pad}Select {pred}\n"));
                input.explain_into(out, depth + 1);
            }
            Alg::Nest {
                input,
                algo,
                key,
                group_var,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Nest[{algo}] key={key} as {group_var} (node@{:p})\n",
                    std::ptr::from_ref(self)
                ));
                input.explain_into(out, depth + 1);
            }
            Alg::Unnest { input, path, var } => {
                out.push_str(&format!("{pad}Unnest {path} as {var}\n"));
                input.explain_into(out, depth + 1);
            }
            Alg::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                out.push_str(&format!("{pad}Join on {left_key} = {right_key}\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Alg::ThetaJoin {
                left, right, pred, ..
            } => {
                out.push_str(&format!("{pad}ThetaJoin on {pred}\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Alg::Reduce {
                input,
                monoid,
                head,
            } => {
                out.push_str(&format!("{pad}Reduce[{monoid:?}] {head}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }

    /// Structural fingerprint used by the sharing rewrite: equal fingerprints
    /// ⇒ equal sub-plans. Children are identified by their (already
    /// interned) Arc pointers, making this O(1) per node.
    pub fn fingerprint(&self) -> String {
        match self {
            Alg::Scan { table, var } => format!("scan:{table}:{var}"),
            Alg::Select { input, pred } => {
                format!("select:{:p}:{pred}", Arc::as_ptr(input))
            }
            Alg::Nest {
                input,
                algo,
                key,
                item,
                group_var,
            } => format!(
                "nest:{:p}:{algo}:{key}:{item}:{group_var}",
                Arc::as_ptr(input)
            ),
            Alg::Unnest { input, path, var } => {
                format!("unnest:{:p}:{path}:{var}", Arc::as_ptr(input))
            }
            Alg::Join {
                left,
                right,
                left_key,
                right_key,
            } => format!(
                "join:{:p}:{:p}:{left_key}:{right_key}",
                Arc::as_ptr(left),
                Arc::as_ptr(right)
            ),
            Alg::ThetaJoin {
                left, right, pred, ..
            } => format!(
                "theta:{:p}:{:p}:{pred}",
                Arc::as_ptr(left),
                Arc::as_ptr(right)
            ),
            Alg::Reduce {
                input,
                monoid,
                head,
            } => format!("reduce:{:p}:{monoid:?}:{head}", Arc::as_ptr(input)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::CalcExpr;

    #[test]
    fn explain_renders_tree() {
        let scan = Arc::new(Alg::Scan {
            table: "t".into(),
            var: "d".into(),
        });
        let sel = Arc::new(Alg::Select {
            input: scan,
            pred: CalcExpr::boolean(true),
        });
        let plan = Alg::Reduce {
            input: sel,
            monoid: MonoidKind::Bag,
            head: CalcExpr::var("d"),
        };
        let text = plan.explain();
        assert!(text.contains("Reduce"));
        assert!(text.contains("Select"));
        assert!(text.contains("Scan t as d"));
    }

    #[test]
    fn hint_compatibility() {
        let lt = HintKind::LeftLessThanRight;
        assert!(lt.compatible((0.0, 5.0), (3.0, 10.0)));
        assert!(!lt.compatible((10.0, 20.0), (0.0, 5.0)));
        assert!(HintKind::Any.compatible((10.0, 20.0), (0.0, 5.0)));
    }

    #[test]
    fn fingerprints_distinguish_and_match() {
        let scan1 = Arc::new(Alg::Scan {
            table: "t".into(),
            var: "d".into(),
        });
        let scan2 = Arc::new(Alg::Scan {
            table: "t".into(),
            var: "d".into(),
        });
        assert_eq!(scan1.fingerprint(), scan2.fingerprint());
        let nest_a = Alg::Nest {
            input: scan1.clone(),
            algo: FilterAlgo::Exact,
            key: CalcExpr::proj(CalcExpr::var("d"), "address"),
            item: CalcExpr::var("d"),
            group_var: "g".into(),
        };
        let nest_b = Alg::Nest {
            input: scan1.clone(),
            algo: FilterAlgo::Exact,
            key: CalcExpr::proj(CalcExpr::var("d"), "name"),
            item: CalcExpr::var("d"),
            group_var: "g".into(),
        };
        assert_ne!(nest_a.fingerprint(), nest_b.fingerprint());
    }
}
