//! Cardinality estimation over algebra plans, driven by `cleanm-stats`.
//!
//! This is the cost-model half of the adaptive physical planner: given the
//! session's per-table [`TableStats`], estimate how many rows flow out of
//! each [`Alg`] node. Estimates use the collected statistics where a plan
//! expression resolves to a base-table column (distinct sketches for
//! grouping and equi-joins, equi-depth histograms for range predicates and
//! theta joins) and fall back to textbook constants elsewhere.

use std::collections::HashMap;
use std::sync::Arc;

use cleanm_stats::TableStats;

use crate::calculus::{BinOp, CalcExpr};

use super::plan::{Alg, HintKind};

/// Fallback row count for tables without statistics.
pub const DEFAULT_TABLE_ROWS: f64 = 1_000.0;
/// Fallback selectivity for a comparison predicate.
pub const DEFAULT_COMPARE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Fallback selectivity for an equality predicate.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Fallback average nested-collection length for Unnest.
pub const DEFAULT_UNNEST_FANOUT: f64 = 4.0;

/// The per-table statistics catalog the estimator consumes.
pub type StatsCatalog = HashMap<String, Arc<TableStats>>;

/// `expr` as a single base-column reference `var.field`, if it is one.
pub fn column_of(expr: &CalcExpr) -> Option<(&str, &str)> {
    if let CalcExpr::Proj(inner, field) = expr {
        if let CalcExpr::Var(v) = &**inner {
            return Some((v.as_str(), field.as_str()));
        }
    }
    None
}

/// Every base-column reference inside `expr` (walks records, calls,
/// operators — the shapes grouping keys and blockers take after desugaring).
pub fn columns_in(expr: &CalcExpr) -> Vec<(String, String)> {
    fn walk(e: &CalcExpr, out: &mut Vec<(String, String)>) {
        if let Some((v, f)) = column_of(e) {
            out.push((v.to_string(), f.to_string()));
            return;
        }
        e.for_each_child(&mut |child| walk(child, out));
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Column statistics for `expr` under the plan's `var → table` binding.
fn col_stats<'a>(
    expr: &CalcExpr,
    vars: &HashMap<String, String>,
    stats: &'a StatsCatalog,
) -> Option<&'a cleanm_stats::ColumnStats> {
    let (var, field) = column_of(expr)?;
    stats.get(vars.get(var)?)?.column(field)
}

/// Estimated selectivity of a predicate, using histograms for range
/// comparisons against constants and distinct counts for equalities.
fn selectivity(pred: &CalcExpr, vars: &HashMap<String, String>, stats: &StatsCatalog) -> f64 {
    match pred {
        CalcExpr::BinOp(BinOp::And, l, r) => {
            selectivity(l, vars, stats) * selectivity(r, vars, stats)
        }
        CalcExpr::BinOp(BinOp::Or, l, r) => {
            let (sl, sr) = (selectivity(l, vars, stats), selectivity(r, vars, stats));
            (sl + sr - sl * sr).clamp(0.0, 1.0)
        }
        CalcExpr::Not(inner) => 1.0 - selectivity(inner, vars, stats),
        CalcExpr::BinOp(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), l, r) => {
            // Column-vs-constant range predicate: read the histogram.
            let (col, konst, flipped) = match (col_stats(l, vars, stats), constant_f64(r)) {
                (Some(c), Some(k)) => (Some(c), k, false),
                _ => match (col_stats(r, vars, stats), constant_f64(l)) {
                    (Some(c), Some(k)) => (Some(c), k, true),
                    _ => (None, 0.0, false),
                },
            };
            if let Some(c) = col {
                if let Some(h) = c.histogram() {
                    let lt = h.selectivity_lt(konst);
                    let below = match op {
                        BinOp::Lt | BinOp::Le => lt,
                        _ => 1.0 - lt,
                    };
                    return if flipped { 1.0 - below } else { below }.clamp(0.01, 1.0);
                }
            }
            DEFAULT_COMPARE_SELECTIVITY
        }
        CalcExpr::BinOp(BinOp::Eq, l, r) => {
            let distinct = col_stats(l, vars, stats)
                .or_else(|| col_stats(r, vars, stats))
                .map(|c| c.distinct_estimate());
            match distinct {
                Some(d) if d >= 1.0 => (1.0 / d).clamp(1e-6, 1.0),
                _ => DEFAULT_EQ_SELECTIVITY,
            }
        }
        CalcExpr::BinOp(BinOp::Ne, ..) => 1.0 - DEFAULT_EQ_SELECTIVITY,
        CalcExpr::Const(v) => {
            if matches!(v, cleanm_values::Value::Bool(true)) {
                1.0
            } else {
                DEFAULT_COMPARE_SELECTIVITY
            }
        }
        _ => DEFAULT_COMPARE_SELECTIVITY,
    }
}

fn constant_f64(expr: &CalcExpr) -> Option<f64> {
    if let CalcExpr::Const(v) = expr {
        v.as_float().ok()
    } else {
        None
    }
}

/// A cardinality estimate for one plan node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Whether table statistics informed the estimate (vs. pure defaults).
    pub from_stats: bool,
}

/// Estimate output rows for `plan`. Walks the DAG once, binding scan
/// variables to tables so column expressions deeper in the plan can be
/// resolved against the catalog.
pub fn estimate(plan: &Alg, stats: &StatsCatalog) -> CardEstimate {
    let mut vars = HashMap::new();
    estimate_with_vars(plan, stats, &mut vars)
}

fn estimate_with_vars(
    plan: &Alg,
    stats: &StatsCatalog,
    vars: &mut HashMap<String, String>,
) -> CardEstimate {
    match plan {
        Alg::Scan { table, var } => {
            vars.insert(var.clone(), table.clone());
            match stats.get(table) {
                Some(ts) => CardEstimate {
                    rows: ts.rows() as f64,
                    from_stats: true,
                },
                None => CardEstimate {
                    rows: DEFAULT_TABLE_ROWS,
                    from_stats: false,
                },
            }
        }
        Alg::Select { input, pred } => {
            let in_est = estimate_with_vars(input, stats, vars);
            CardEstimate {
                rows: in_est.rows * selectivity(pred, vars, stats),
                from_stats: in_est.from_stats,
            }
        }
        Alg::Unnest { input, .. } => {
            let in_est = estimate_with_vars(input, stats, vars);
            CardEstimate {
                rows: in_est.rows * DEFAULT_UNNEST_FANOUT,
                from_stats: in_est.from_stats,
            }
        }
        Alg::Nest { input, key, .. } => {
            let in_est = estimate_with_vars(input, stats, vars);
            // Output rows = number of groups = distinct keys.
            let (groups, from_stats) = group_count(key, in_est.rows, vars, stats);
            CardEstimate {
                rows: groups.min(in_est.rows.max(1.0)),
                from_stats: in_est.from_stats && from_stats,
            }
        }
        Alg::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let l = estimate_with_vars(left, stats, vars);
            let r = estimate_with_vars(right, stats, vars);
            let d = col_stats(left_key, vars, stats)
                .map(|c| c.distinct_estimate())
                .into_iter()
                .chain(col_stats(right_key, vars, stats).map(|c| c.distinct_estimate()))
                .fold(f64::NAN, f64::max);
            let rows = if d.is_finite() && d >= 1.0 {
                l.rows * r.rows / d
            } else {
                l.rows.min(r.rows)
            };
            CardEstimate {
                rows,
                from_stats: l.from_stats && r.from_stats,
            }
        }
        Alg::ThetaJoin {
            left, right, hint, ..
        } => {
            let l = estimate_with_vars(left, stats, vars);
            let r = estimate_with_vars(right, stats, vars);
            let frac = theta_pair_fraction(hint.kind, &hint.left_key, &hint.right_key, vars, stats)
                .unwrap_or(match hint.kind {
                    HintKind::LeftLessThanRight => 0.5,
                    HintKind::Any => 1.0,
                });
            CardEstimate {
                rows: l.rows * r.rows * frac,
                from_stats: l.from_stats && r.from_stats,
            }
        }
        Alg::Reduce { input, .. } => estimate_with_vars(input, stats, vars),
    }
}

/// Estimated number of groups for a Nest key, plus whether statistics were
/// used. A multi-column (record) key multiplies distinct counts, capped by
/// the input cardinality. Also the executor's group-cardinality source when
/// deciding the Nest strategy.
pub fn group_count(
    key: &CalcExpr,
    input_rows: f64,
    vars: &HashMap<String, String>,
    stats: &StatsCatalog,
) -> (f64, bool) {
    let cols = columns_in(key);
    if cols.is_empty() {
        return (input_rows / 10.0, false);
    }
    let mut product = 1.0;
    let mut any_stats = false;
    for (var, field) in &cols {
        let d = vars
            .get(var)
            .and_then(|t| stats.get(t))
            .and_then(|ts| ts.column(field))
            .map(|c| c.distinct_estimate().max(1.0));
        match d {
            Some(d) => {
                any_stats = true;
                product *= d;
            }
            None => product *= 10.0,
        }
    }
    (product.min(input_rows.max(1.0)), any_stats)
}

/// Fraction of the |L|×|R| comparison matrix that survives range pruning
/// under `kind`, from both key columns' equi-depth histograms — numeric
/// histograms for number columns, prefix-key histograms for text columns
/// (widened by the key resolution so prefix collisions stay sound).
/// `None` when the sides' histograms live in different key domains (one
/// numeric, one prefix-key): those are not comparable.
pub fn theta_pair_fraction(
    kind: HintKind,
    left_key: &CalcExpr,
    right_key: &CalcExpr,
    vars: &HashMap<String, String>,
    stats: &StatsCatalog,
) -> Option<f64> {
    let (lh, l_text) = col_stats(left_key, vars, stats)?.pruning_histogram()?;
    let (rh, r_text) = col_stats(right_key, vars, stats)?.pruning_histogram()?;
    if l_text != r_text {
        return None;
    }
    Some(lh.fraction_pairs(&rh, kind.compat_fn(super::plan::theta_widen(l_text))))
}

/// Resolve the `var → table` bindings of a plan's scans (used by the
/// executor to look up statistics when deciding strategies mid-plan).
pub fn scan_bindings(plan: &Alg, out: &mut HashMap<String, String>) {
    match plan {
        Alg::Scan { table, var } => {
            out.insert(var.clone(), table.clone());
        }
        Alg::Select { input, .. }
        | Alg::Nest { input, .. }
        | Alg::Unnest { input, .. }
        | Alg::Reduce { input, .. } => scan_bindings(input, out),
        Alg::Join { left, right, .. } | Alg::ThetaJoin { left, right, .. } => {
            scan_bindings(left, out);
            scan_bindings(right, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanm_stats::{collect_table_stats, StatsConfig};
    use cleanm_values::Value;

    fn catalog(rows: usize, distinct_addr: usize) -> StatsCatalog {
        let data: Vec<Value> = (0..rows)
            .map(|i| {
                Value::record([
                    ("address", Value::str(format!("addr-{}", i % distinct_addr))),
                    ("nationkey", Value::Int((i % 25) as i64)),
                    ("price", Value::Float(i as f64)),
                ])
            })
            .collect();
        let ctx = cleanm_exec::ExecContext::new(2, 4);
        let ts = collect_table_stats(&ctx, Arc::new(data), StatsConfig::default()).unwrap();
        let mut m = HashMap::new();
        m.insert("customer".to_string(), Arc::new(ts));
        m
    }

    fn scan() -> Arc<Alg> {
        Arc::new(Alg::Scan {
            table: "customer".into(),
            var: "c".into(),
        })
    }

    #[test]
    fn scan_uses_stats_rows() {
        let stats = catalog(500, 50);
        let est = estimate(&scan(), &stats);
        assert_eq!(est.rows, 500.0);
        assert!(est.from_stats);
        let none = estimate(&scan(), &HashMap::new());
        assert_eq!(none.rows, DEFAULT_TABLE_ROWS);
        assert!(!none.from_stats);
    }

    #[test]
    fn nest_estimates_group_count_from_distinct_sketch() {
        let stats = catalog(1_000, 40);
        let nest = Alg::Nest {
            input: scan(),
            algo: crate::calculus::FilterAlgo::Exact,
            key: CalcExpr::proj(CalcExpr::var("c"), "address"),
            item: CalcExpr::var("c"),
            group_var: "g".into(),
        };
        let est = estimate(&nest, &stats);
        assert!(est.from_stats);
        assert!(
            (30.0..60.0).contains(&est.rows),
            "≈40 distinct addresses, got {}",
            est.rows
        );
    }

    #[test]
    fn select_uses_histogram_for_range_predicates() {
        let stats = catalog(1_000, 40);
        // price < 250 on uniform 0..1000 ⇒ ~25%.
        let sel = Alg::Select {
            input: scan(),
            pred: CalcExpr::bin(
                BinOp::Lt,
                CalcExpr::proj(CalcExpr::var("c"), "price"),
                CalcExpr::Const(Value::Float(250.0)),
            ),
        };
        let est = estimate(&sel, &stats);
        assert!(
            (150.0..350.0).contains(&est.rows),
            "expected ≈250 rows, got {}",
            est.rows
        );
    }

    #[test]
    fn theta_join_fraction_comes_from_histograms() {
        let stats = catalog(800, 40);
        let key = CalcExpr::proj(CalcExpr::var("c"), "price");
        let mut vars = HashMap::new();
        vars.insert("c".to_string(), "customer".to_string());
        let frac =
            theta_pair_fraction(HintKind::LeftLessThanRight, &key, &key, &vars, &stats).unwrap();
        // a < b over the same uniform column ⇒ about half the matrix.
        assert!((0.3..0.9).contains(&frac), "{frac}");
        assert_eq!(
            theta_pair_fraction(HintKind::Any, &key, &key, &vars, &stats),
            Some(1.0)
        );
    }

    #[test]
    fn columns_in_walks_records_and_calls() {
        let key = CalcExpr::record(vec![
            ("a", CalcExpr::proj(CalcExpr::var("c"), "address")),
            ("n", CalcExpr::proj(CalcExpr::var("c"), "nationkey")),
        ]);
        let cols = columns_in(&key);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], ("c".to_string(), "address".to_string()));
    }
}
