//! Inter-operator rewrites (§5): sharing the plan DAG.
//!
//! The rewriter hash-conses plans bottom-up: structurally identical
//! sub-plans become the *same* `Arc` node. Two consequences, both measured
//! in §8.2's unified-cleaning experiment:
//!
//! * **Plan BC** — FD and DEDUP queries that group the same input on the
//!   same key end up sharing one `Nest` node, so the grouping pass runs
//!   once ("performs all operations using a single aggregation step");
//! * **the Overall Plan** — every operator's pipeline shares the single
//!   `Scan`, so the dataset is read once.
//!
//! The executor completes the picture by memoizing materialized results per
//! node, and the engine combines the per-operator violation sets with an
//! outer join (§4.4's multi-operator semantics).

use std::collections::HashMap;
use std::sync::Arc;

use super::plan::Alg;

/// What the sharing pass found — surfaced in reports and asserted by tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Nodes whose duplicates were eliminated, by operator name.
    pub shared_scans: usize,
    pub shared_nests: usize,
    pub shared_other: usize,
}

impl RewriteStats {
    pub fn total_shared(&self) -> usize {
        self.shared_scans + self.shared_nests + self.shared_other
    }
}

/// Hash-cons a set of per-operator plans into a shared DAG. Returns the
/// rewritten plans (same order) and sharing statistics.
pub fn rewrite_shared(plans: &[Arc<Alg>]) -> (Vec<Arc<Alg>>, RewriteStats) {
    let mut interner: HashMap<String, Arc<Alg>> = HashMap::new();
    let mut stats = RewriteStats::default();
    let out = plans
        .iter()
        .map(|p| intern(p, &mut interner, &mut stats))
        .collect();
    (out, stats)
}

fn intern(
    plan: &Arc<Alg>,
    interner: &mut HashMap<String, Arc<Alg>>,
    stats: &mut RewriteStats,
) -> Arc<Alg> {
    // Rebuild the node with interned children first.
    let rebuilt: Alg = match &**plan {
        Alg::Scan { .. } => (**plan).clone(),
        Alg::Select { input, pred } => Alg::Select {
            input: intern(input, interner, stats),
            pred: pred.clone(),
        },
        Alg::Nest {
            input,
            algo,
            key,
            item,
            group_var,
        } => Alg::Nest {
            input: intern(input, interner, stats),
            algo: algo.clone(),
            key: key.clone(),
            item: item.clone(),
            group_var: group_var.clone(),
        },
        Alg::Unnest { input, path, var } => Alg::Unnest {
            input: intern(input, interner, stats),
            path: path.clone(),
            var: var.clone(),
        },
        Alg::Join {
            left,
            right,
            left_key,
            right_key,
        } => Alg::Join {
            left: intern(left, interner, stats),
            right: intern(right, interner, stats),
            left_key: left_key.clone(),
            right_key: right_key.clone(),
        },
        Alg::ThetaJoin {
            left,
            right,
            pred,
            hint,
        } => Alg::ThetaJoin {
            left: intern(left, interner, stats),
            right: intern(right, interner, stats),
            pred: pred.clone(),
            hint: hint.clone(),
        },
        Alg::Reduce {
            input,
            monoid,
            head,
        } => Alg::Reduce {
            input: intern(input, interner, stats),
            monoid: monoid.clone(),
            head: head.clone(),
        },
    };
    let fp = rebuilt.fingerprint();
    if let Some(existing) = interner.get(&fp) {
        match rebuilt {
            Alg::Scan { .. } => stats.shared_scans += 1,
            Alg::Nest { .. } => stats.shared_nests += 1,
            _ => stats.shared_other += 1,
        }
        return existing.clone();
    }
    let node = Arc::new(rebuilt);
    interner.insert(fp, node.clone());
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::{desugar_query, CalcExpr, FilterAlgo, MonoidKind};
    use crate::lang::parse_query;

    fn scan() -> Arc<Alg> {
        Arc::new(Alg::Scan {
            table: "customer".into(),
            var: "d0".into(),
        })
    }

    fn nest_on(key_field: &str) -> Arc<Alg> {
        Arc::new(Alg::Nest {
            input: scan(),
            algo: FilterAlgo::Exact,
            key: CalcExpr::proj(CalcExpr::var("d0"), key_field),
            item: CalcExpr::var("d0"),
            group_var: "g".into(),
        })
    }

    fn reduce(input: Arc<Alg>) -> Arc<Alg> {
        Arc::new(Alg::Reduce {
            input,
            monoid: MonoidKind::Bag,
            head: CalcExpr::var("g"),
        })
    }

    #[test]
    fn identical_nests_are_shared() {
        // Two independent plans grouping the same table on the same key
        // (the paper's Plan B + Plan C) share one Nest after the rewrite.
        let plan_b = reduce(nest_on("address"));
        let plan_c = reduce(nest_on("address"));
        assert!(!Arc::ptr_eq(&plan_b, &plan_c));
        let (shared, stats) = rewrite_shared(&[plan_b, plan_c]);
        assert_eq!(stats.shared_nests, 1);
        assert_eq!(stats.shared_scans, 1);
        // The Nest node inside both plans is literally the same node.
        let nest_of = |p: &Arc<Alg>| match &**p {
            Alg::Reduce { input, .. } => input.clone(),
            _ => panic!(),
        };
        assert!(Arc::ptr_eq(&nest_of(&shared[0]), &nest_of(&shared[1])));
    }

    #[test]
    fn different_keys_share_only_the_scan() {
        let plan_a = reduce(nest_on("address"));
        let plan_b = reduce(nest_on("name"));
        let (_, stats) = rewrite_shared(&[plan_a, plan_b]);
        assert_eq!(stats.shared_nests, 0);
        assert_eq!(stats.shared_scans, 1, "the Overall Plan shares the scan");
    }

    #[test]
    fn running_example_shares_grouping_between_fd_and_dedup() {
        // FD(address → nationkey) and DEDUP(exact on address) group the same
        // scan by the same key: one aggregation pass, as in Figure 5.
        let q = parse_query(
            "SELECT * FROM customer c \
             FD(c.address, c.nationkey) \
             DEDUP(exact, LD, 0.8, c.address, c.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let plans: Vec<Arc<Alg>> = dq
            .ops
            .iter()
            .map(|op| crate::algebra::lower_op(&op.comp).unwrap())
            .collect();
        let (_, stats) = rewrite_shared(&plans);
        assert_eq!(stats.shared_nests, 1, "Plan BC coalescing");
        assert_eq!(stats.shared_scans, 1);
    }

    #[test]
    fn rewrite_is_idempotent() {
        let plans = vec![reduce(nest_on("address")), reduce(nest_on("address"))];
        let (once, s1) = rewrite_shared(&plans);
        let (twice, s2) = rewrite_shared(&once);
        assert!(s1.total_shared() > 0);
        assert_eq!(s1, s2, "same sharing found again");
        // Compare explains modulo the node-address tags.
        let strip = |s: String| -> String {
            s.lines()
                .map(|l| l.split(" (node@").next().unwrap_or(l))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for (a, b) in once.iter().zip(&twice) {
            assert_eq!(strip(a.explain()), strip(b.explain()));
        }
    }
}
