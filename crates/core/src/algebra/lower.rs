//! Lowering: monoid comprehensions → nested relational algebra.
//!
//! The full Fegaras–Maier translation handles arbitrary comprehensions; this
//! implementation covers the (normalized) comprehension family that CleanM's
//! Monoid Rewriter emits — which is the family §4.4 defines for the cleaning
//! operators plus plain select-project comprehensions. Qualifiers are
//! processed left-to-right, each one extending the current plan:
//!
//! * `v ← table(t)`                → `Scan`
//! * `v ← filter{…| d ← t, p̄}`    → `Nest` over (`Select` over) `Scan`
//! * `v ← g.partition`             → `Unnest`
//! * a second filter-grouping generator followed by a key-equality
//!   predicate → `Join` of the two `Nest`s
//! * predicate                     → `Select`
//!
//! and the comprehension's `⊕`/head become the final `Reduce`.

use std::sync::Arc;

use cleanm_values::{Error, Result};

use crate::calculus::{BinOp, CalcExpr, Comprehension, MonoidKind, Qual};

use super::plan::Alg;

/// Lower one desugared comprehension to an algebra plan.
pub fn lower_op(comp: &CalcExpr) -> Result<Arc<Alg>> {
    let CalcExpr::Comp(c) = comp else {
        return Err(Error::Invalid(format!(
            "lowering expects a comprehension, got `{comp}`"
        )));
    };
    let mut plan: Option<Arc<Alg>> = None;
    // A grouped input lowered from a generator but not yet joined: set when
    // we see a second filter-grouping before its key-equality predicate.
    let mut pending_right: Option<Arc<Alg>> = None;

    for qual in &c.quals {
        match qual {
            Qual::Gen(v, source) => match source {
                CalcExpr::TableRef(t) => {
                    if plan.is_some() {
                        return Err(Error::Invalid(
                            "cross products of base tables must lower through ThetaJoin \
                             (use ops::dc for denial constraints)"
                                .to_string(),
                        ));
                    }
                    plan = Some(Arc::new(Alg::Scan {
                        table: t.clone(),
                        var: v.clone(),
                    }));
                }
                CalcExpr::Comp(inner) if matches!(inner.monoid, MonoidKind::Filter(_)) => {
                    let nest = lower_grouping(inner, v)?;
                    if plan.is_none() {
                        plan = Some(nest);
                    } else if pending_right.is_none() {
                        pending_right = Some(nest);
                    } else {
                        return Err(Error::Invalid(
                            "more than two grouped inputs in one comprehension".to_string(),
                        ));
                    }
                }
                CalcExpr::Proj(base, field) if field == "partition" => {
                    let input = plan
                        .take()
                        .ok_or_else(|| Error::Invalid("unnest before any input".to_string()))?;
                    plan = Some(Arc::new(Alg::Unnest {
                        input,
                        path: CalcExpr::Proj(base.clone(), field.clone()),
                        var: v.clone(),
                    }));
                }
                other => {
                    return Err(Error::Invalid(format!(
                        "unsupported generator source `{other}`"
                    )))
                }
            },
            Qual::Pred(p) => {
                // A key-equality predicate consumes the pending right side
                // as an equi-join.
                if let (Some(right), CalcExpr::BinOp(BinOp::Eq, lk, rk)) = (&pending_right, p) {
                    let left = plan.take().ok_or_else(|| {
                        Error::Invalid("join predicate before any input".to_string())
                    })?;
                    plan = Some(Arc::new(Alg::Join {
                        left,
                        right: right.clone(),
                        left_key: (**lk).clone(),
                        right_key: (**rk).clone(),
                    }));
                    pending_right = None;
                    continue;
                }
                let input = plan
                    .take()
                    .ok_or_else(|| Error::Invalid("predicate before any input".to_string()))?;
                plan = Some(Arc::new(Alg::Select {
                    input,
                    pred: p.clone(),
                }));
            }
            Qual::Bind(v, e) => {
                // Residual binds (rare after normalization) become Select-
                // style extensions; we inline them by substitution instead.
                return Err(Error::Invalid(format!(
                    "residual bind `{v} := {e}` — normalize before lowering"
                )));
            }
        }
    }
    if pending_right.is_some() {
        return Err(Error::Invalid(
            "grouped input never joined on a key".to_string(),
        ));
    }
    let input = plan.ok_or_else(|| Error::Invalid("empty comprehension body".to_string()))?;
    Ok(Arc::new(Alg::Reduce {
        input,
        monoid: c.monoid.clone(),
        head: (*c.head).clone(),
    }))
}

/// Lower the inner `filter{ {key, item} | d ← t, p̄ }` grouping.
fn lower_grouping(inner: &Comprehension, group_var: &str) -> Result<Arc<Alg>> {
    let MonoidKind::Filter(algo) = &inner.monoid else {
        unreachable!("caller checked the monoid");
    };
    let CalcExpr::Record(fields) = &*inner.head else {
        return Err(Error::Invalid(
            "filter-monoid head must be a {key, item} record".to_string(),
        ));
    };
    let key = fields
        .iter()
        .find(|(n, _)| n == "key")
        .map(|(_, e)| e.clone())
        .ok_or_else(|| Error::Invalid("filter head lacks `key`".to_string()))?;
    let item = fields
        .iter()
        .find(|(n, _)| n == "item")
        .map(|(_, e)| e.clone())
        .ok_or_else(|| Error::Invalid("filter head lacks `item`".to_string()))?;

    // Body: one table generator plus optional predicates.
    let mut input: Option<Arc<Alg>> = None;
    for qual in &inner.quals {
        match qual {
            Qual::Gen(v, CalcExpr::TableRef(t)) => {
                if input.is_some() {
                    return Err(Error::Invalid(
                        "grouping body must scan exactly one table".to_string(),
                    ));
                }
                input = Some(Arc::new(Alg::Scan {
                    table: t.clone(),
                    var: v.clone(),
                }));
            }
            Qual::Pred(p) => {
                let prev = input.take().ok_or_else(|| {
                    Error::Invalid("grouping predicate before its scan".to_string())
                })?;
                input = Some(Arc::new(Alg::Select {
                    input: prev,
                    pred: p.clone(),
                }));
            }
            other => {
                return Err(Error::Invalid(format!(
                    "unsupported qualifier in grouping body: {other:?}"
                )))
            }
        }
    }
    let input =
        input.ok_or_else(|| Error::Invalid("grouping body lacks a table scan".to_string()))?;
    Ok(Arc::new(Alg::Nest {
        input,
        algo: algo.clone(),
        key,
        item,
        group_var: group_var.to_string(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::{desugar_query, FilterAlgo};
    use crate::lang::parse_query;

    fn lower_sql(sql: &str) -> Arc<Alg> {
        let q = parse_query(sql).unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        lower_op(&dq.ops[0].comp).unwrap()
    }

    #[test]
    fn fd_lowers_to_reduce_select_nest_scan() {
        let plan = lower_sql("SELECT * FROM customer c FD(c.address, c.nationkey)");
        let text = plan.explain();
        let order: Vec<&str> = text.lines().map(|l| l.trim_start()).collect();
        assert!(order[0].starts_with("Reduce"), "{text}");
        assert!(order[1].starts_with("Select"), "{text}");
        assert!(order[2].starts_with("Nest[exact]"), "{text}");
        assert!(order[3].starts_with("Scan customer"), "{text}");
    }

    #[test]
    fn dedup_lowers_with_double_unnest() {
        let plan = lower_sql("SELECT * FROM customer c DEDUP(token_filtering, LD, 0.8, c.name)");
        let text = plan.explain();
        assert_eq!(text.matches("Unnest").count(), 2, "{text}");
        assert!(text.contains("Nest[token_filtering(q=3)]"), "{text}");
        // Similarity + rowid predicates above the unnests.
        assert_eq!(text.matches("Select").count(), 2, "{text}");
    }

    #[test]
    fn cluster_by_lowers_to_join_of_two_nests() {
        let plan = lower_sql(
            "SELECT * FROM data x, dict w CLUSTER BY(token_filtering(2), LD, 0.8, x.name)",
        );
        let text = plan.explain();
        assert!(text.contains("Join on"), "{text}");
        assert_eq!(text.matches("Nest[").count(), 2, "{text}");
        assert_eq!(text.matches("Scan").count(), 2, "{text}");
    }

    #[test]
    fn where_clause_pushes_into_grouping_scan() {
        let plan =
            lower_sql("SELECT * FROM customer c WHERE c.nationkey = 1 FD(c.address, c.phone)");
        let text = plan.explain();
        // The WHERE select sits *below* the Nest (filter pushdown into the
        // grouping input, not above the groups).
        let nest_line = text.lines().position(|l| l.contains("Nest")).unwrap();
        let where_line = text.lines().position(|l| l.contains("nationkey")).unwrap();
        assert!(where_line > nest_line, "{text}");
    }

    #[test]
    fn plain_select_lowers() {
        let plan = lower_sql("SELECT c.name FROM customer c WHERE c.nationkey = 1");
        let text = plan.explain();
        assert!(text.contains("Reduce[Bag]"), "{text}");
        assert!(text.contains("Select"), "{text}");
        assert!(text.contains("Scan customer"), "{text}");
    }

    #[test]
    fn nest_algo_is_parameterized() {
        let plan = lower_sql("SELECT * FROM t DEDUP(kmeans(7), LD, 0.8, t.name)");
        let found = find_nest_algo(&plan);
        assert_eq!(
            found,
            Some(FilterAlgo::KMeans {
                k: 7,
                delta: 0,
                seed: 1
            })
        );
    }

    fn find_nest_algo(plan: &Alg) -> Option<FilterAlgo> {
        match plan {
            Alg::Nest { algo, .. } => Some(algo.clone()),
            Alg::Select { input, .. } | Alg::Unnest { input, .. } | Alg::Reduce { input, .. } => {
                find_nest_algo(input)
            }
            Alg::Join { left, .. } | Alg::ThetaJoin { left, .. } => find_nest_algo(left),
            Alg::Scan { .. } => None,
        }
    }
}
