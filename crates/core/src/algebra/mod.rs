//! The nested relational algebra — the paper's second abstraction level.
//!
//! Comprehensions are lowered ([`lower`]) into the operators of Table 1
//! ([`plan::Alg`]): Scan, Select, Join, ThetaJoin, Unnest, Reduce and Nest.
//! The [`rewrite`] pass then performs the §5 inter-operator optimizations:
//! hash-consing the plan DAG so that identical sub-plans (same scan, same
//! grouping key) are *shared* — which is exactly how the paper's Plan BC
//! coalesces the two grouping passes of FD and DEDUP into one, and how the
//! "Overall Plan" scans the dataset once.

pub mod cardinality;
pub mod lower;
pub mod plan;
pub mod rewrite;

pub use cardinality::{estimate, CardEstimate, StatsCatalog};
pub use lower::lower_op;
pub use plan::{Alg, HintKind, ThetaHint};
pub use rewrite::{rewrite_shared, RewriteStats};
