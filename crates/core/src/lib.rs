//! # cleanm-core — the paper's contribution
//!
//! This crate implements CleanM (the language) and the three-level
//! optimization pipeline of the paper, wired to the [`cleanm_exec`] runtime:
//!
//! 1. **Language** ([`lang`]): a SQL-extension parser for Listing 1's syntax
//!    (`SELECT … FROM … [FD(…)] [DEDUP(…)] [CLUSTER BY(…)]`), producing an
//!    AST that the *Monoid Rewriter* ([`calculus::desugar`]) de-sugarizes
//!    into monoid comprehensions, exactly as §4.4 specifies.
//! 2. **Monoid level** ([`calculus`]): the comprehension calculus — monoid
//!    kinds (primitive, collection, and the paper's grouping/"filter"
//!    monoids), a reference evaluator, and the normalization rewrites of
//!    §4.2 (beta reduction, comprehension unnesting, if-splitting,
//!    existential unnesting, filter pushdown, static simplification).
//! 3. **Algebra level** ([`algebra`]): the nested relational algebra of
//!    Table 1 (Select, Join, OuterJoin, Unnest, OuterUnnest, Reduce, Nest),
//!    lowering from comprehensions, and the §5 rewrites — coalescing Nest
//!    operators that share a grouping key (Plan BC) and shared-scan DAG
//!    construction (the "Overall Plan").
//! 4. **Physical level** ([`physical`]): translation to runtime operators
//!    per Table 2, parameterized by an [`physical::EngineProfile`] —
//!    `CleanDb` (aggregateByKey + M-Bucket theta joins), `SparkSqlLike`
//!    (sort-based shuffles + cartesian theta joins, no cross-operator
//!    rewrites), and `BigDansingLike` (hash shuffles + min-max block theta
//!    joins, one black-box operation at a time).
//!
//! The user-facing pieces are [`engine::CleanDb`] (register tables, run
//! CleanM queries, get a [`engine::CleaningReport`]), the direct operator
//! APIs in [`ops`] (FD, denial constraints, dedup, term validation,
//! transformations), and [`quality`] (precision/recall/F-score against
//! generator ground truth).

pub mod algebra;
pub mod calculus;
pub mod engine;
pub mod lang;
pub mod ops;
pub mod physical;
pub mod quality;

pub use calculus::desugar::OpKind;
pub use engine::{CleanDb, CleaningReport, FailureInfo, MetricsRegistry, RunLimits};
pub use lang::{analyze, parse_program, parse_query, pretty_query, Analysis, Diagnostic, Span};
pub use physical::{EngineProfile, ProfileNode, QueryProfile};
