//! Reference evaluator for the calculus.
//!
//! Single-node, straightforward semantics. It serves three purposes:
//! (1) it *defines* the meaning of a comprehension, (2) the property tests
//! check that normalization preserves it, and (3) the physical executor
//! uses it to evaluate row-level and group-level expressions inside
//! distributed operators.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cleanm_cluster::Blocker;
use cleanm_values::{Error, Result, StrView, Value};

use super::expr::make_blocker;
use super::expr::{BinOp, CalcExpr, Comprehension, FilterAlgo, Func, MonoidKind, Qual};

/// Evaluation context: the table catalog, pre-built blockers, and a
/// comparison counter (similarity calls are the unit of §8's cost model).
pub struct EvalCtx {
    tables: HashMap<String, Value>,
    blockers: HashMap<String, Arc<dyn Blocker>>,
    comparisons: AtomicU64,
}

impl Default for EvalCtx {
    fn default() -> Self {
        EvalCtx::new()
    }
}

impl EvalCtx {
    pub fn new() -> Self {
        EvalCtx {
            tables: HashMap::new(),
            blockers: HashMap::new(),
            comparisons: AtomicU64::new(0),
        }
    }

    /// Register a named collection (a list of rows-as-structs).
    pub fn with_table(mut self, name: &str, rows: Value) -> Self {
        self.tables.insert(name.to_string(), rows);
        self
    }

    /// Pre-build the blockers an expression needs. K-means blockers sample
    /// their centers from `corpus`.
    pub fn prepare_blockers(&mut self, expr: &CalcExpr, corpus: &[String]) {
        let mut algos = Vec::new();
        collect_filter_algos(expr, &mut algos);
        for algo in algos {
            let key = algo.to_string();
            self.blockers
                .entry(key)
                .or_insert_with(|| make_blocker(&algo, corpus));
        }
    }

    /// Register an already-built blocker.
    pub fn with_blocker(mut self, algo: &FilterAlgo, blocker: Arc<dyn Blocker>) -> Self {
        self.blockers.insert(algo.to_string(), blocker);
        self
    }

    pub fn comparisons(&self) -> u64 {
        self.comparisons.load(Ordering::Relaxed)
    }

    fn blocker(&self, algo: &FilterAlgo) -> Result<&Arc<dyn Blocker>> {
        self.blockers.get(&algo.to_string()).ok_or_else(|| {
            Error::Invalid(format!(
                "blocker {algo} not prepared; call prepare_blockers first"
            ))
        })
    }

    /// An already-prepared blocker, if any — the compiler pre-binds these so
    /// compiled programs skip the string-keyed map lookup per call.
    pub(crate) fn prepared_blocker(&self, algo: &FilterAlgo) -> Option<Arc<dyn Blocker>> {
        self.blockers.get(&algo.to_string()).cloned()
    }

    /// A registered table, if any — the compiler pre-binds table references.
    pub(crate) fn table(&self, name: &str) -> Option<&Value> {
        self.tables.get(name)
    }
}

fn collect_filter_algos(expr: &CalcExpr, out: &mut Vec<FilterAlgo>) {
    match expr {
        CalcExpr::Call(Func::BlockKeys(algo), args) => {
            out.push(algo.clone());
            for a in args {
                collect_filter_algos(a, out);
            }
        }
        CalcExpr::Const(_) | CalcExpr::Var(_) | CalcExpr::TableRef(_) => {}
        CalcExpr::Record(fields) => {
            for (_, e) in fields {
                collect_filter_algos(e, out);
            }
        }
        CalcExpr::Proj(e, _) | CalcExpr::Not(e) | CalcExpr::Exists(e) => {
            collect_filter_algos(e, out)
        }
        CalcExpr::BinOp(_, l, r) | CalcExpr::Merge(_, l, r) => {
            collect_filter_algos(l, out);
            collect_filter_algos(r, out);
        }
        CalcExpr::If(c, t, e) => {
            collect_filter_algos(c, out);
            collect_filter_algos(t, out);
            collect_filter_algos(e, out);
        }
        CalcExpr::Call(_, args) => {
            for a in args {
                collect_filter_algos(a, out);
            }
        }
        CalcExpr::Comp(c) => {
            collect_filter_algos(&c.head, out);
            for q in &c.quals {
                match q {
                    Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => {
                        collect_filter_algos(e, out)
                    }
                }
            }
        }
    }
}

/// Variable environment — a small association list (comprehension depth is
/// shallow, so linear scan beats hashing).
pub type Env = Vec<(String, Value)>;

fn lookup<'a>(env: &'a Env, name: &str) -> Result<&'a Value> {
    env.iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::Invalid(format!("unbound variable `{name}`")))
}

/// Evaluate the borrowable fragment of an expression — `Const`, `Var`, and
/// `Proj` chains over them — without cloning: the result stays a reference
/// into the environment (or the expression tree) and is cloned only where a
/// caller actually needs ownership. Everything else falls through to
/// [`eval`].
fn eval_ref<'a>(expr: &'a CalcExpr, env: &'a Env, ctx: &EvalCtx) -> Result<Cow<'a, Value>> {
    match expr {
        CalcExpr::Const(v) => Ok(Cow::Borrowed(v)),
        CalcExpr::Var(n) => lookup(env, n).map(Cow::Borrowed),
        CalcExpr::Proj(e, field) => {
            let base = eval_ref(e, env, ctx)?;
            if base.is_null() {
                return Ok(Cow::Owned(Value::Null));
            }
            match base {
                Cow::Borrowed(b) => b.field(field).map(Cow::Borrowed),
                Cow::Owned(o) => o.field(field).cloned().map(Cow::Owned),
            }
        }
        other => eval(other, env, ctx).map(Cow::Owned),
    }
}

/// Evaluate an expression under an environment.
pub fn eval(expr: &CalcExpr, env: &Env, ctx: &EvalCtx) -> Result<Value> {
    match expr {
        CalcExpr::Const(v) => Ok(v.clone()),
        CalcExpr::Var(n) => lookup(env, n).cloned(),
        CalcExpr::TableRef(t) => ctx
            .tables
            .get(t)
            .cloned()
            .ok_or_else(|| Error::Invalid(format!("unknown table `{t}`"))),
        CalcExpr::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (n, e) in fields {
                out.push((n.as_str(), eval(e, env, ctx)?));
            }
            Ok(Value::record(out))
        }
        CalcExpr::Proj(..) => eval_ref(expr, env, ctx).map(Cow::into_owned),
        CalcExpr::BinOp(op, l, r) => {
            let lv = eval_ref(l, env, ctx)?;
            // Short-circuit logic.
            match op {
                BinOp::And => {
                    if !truthy(&lv) {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(truthy(&*eval_ref(r, env, ctx)?)));
                }
                BinOp::Or => {
                    if truthy(&lv) {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(truthy(&*eval_ref(r, env, ctx)?)));
                }
                _ => {}
            }
            let rv = eval_ref(r, env, ctx)?;
            eval_binop(*op, &lv, &rv)
        }
        CalcExpr::Not(e) => Ok(Value::Bool(!truthy(&*eval_ref(e, env, ctx)?))),
        CalcExpr::If(c, t, e) => {
            if truthy(&*eval_ref(c, env, ctx)?) {
                eval(t, env, ctx)
            } else {
                eval(e, env, ctx)
            }
        }
        CalcExpr::Call(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env, ctx)?);
            }
            eval_func(f, &vals, ctx)
        }
        CalcExpr::Exists(e) => {
            let v = eval_ref(e, env, ctx)?;
            Ok(Value::Bool(!v.as_list()?.is_empty()))
        }
        CalcExpr::Comp(c) => eval_comp(c, env, ctx),
        CalcExpr::Merge(m, l, r) => {
            let lv = eval(l, env, ctx)?;
            let rv = eval(r, env, ctx)?;
            // Idempotent collection monoids need their finalization (Set
            // dedup, Filter group ordering) re-applied after an explicit
            // merge — if-splitting introduces these nodes.
            finalize(m, merge_values(m, lv, rv)?)
        }
    }
}

/// Truthiness: `Bool(true)` only — Null and everything else are false,
/// matching SQL's treatment of NULL in WHERE.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn numeric_pair(l: &Value, r: &Value) -> Option<(f64, f64)> {
    let lf = match l {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        _ => return None,
    };
    let rf = match r {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        _ => return None,
    };
    Some((lf, rf))
}

#[inline]
fn float_cmp(op: BinOp, a: f64, b: f64) -> bool {
    use BinOp::*;
    match op {
        Eq => a == b,
        Ne => a != b,
        Lt => a < b,
        Le => a <= b,
        Gt => a > b,
        Ge => a >= b,
        _ => unreachable!("comparison op"),
    }
}

#[inline]
pub(crate) fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    // Fast paths for the dominant scalar comparisons; NaNs fall through to
    // the canonicalizing total order below.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) if op.is_comparison() => {
            return Ok(Value::Bool(match op {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            }));
        }
        (Value::Float(a), Value::Float(b)) if op.is_comparison() && !a.is_nan() && !b.is_nan() => {
            return Ok(Value::Bool(float_cmp(op, *a, *b)));
        }
        // Mixed numeric comparisons widen exactly like the canonical
        // cross-type ordering (`i as f64`).
        (Value::Int(a), Value::Float(b)) if op.is_comparison() && !b.is_nan() => {
            return Ok(Value::Bool(float_cmp(op, *a as f64, *b)));
        }
        (Value::Float(a), Value::Int(b)) if op.is_comparison() && !a.is_nan() => {
            return Ok(Value::Bool(float_cmp(op, *a, *b as f64)));
        }
        _ => {}
    }
    if matches!(op, Add | Sub | Mul | Div) {
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        // Integer arithmetic when both are ints (except Div).
        if let (Value::Int(a), Value::Int(b)) = (l, r) {
            return Ok(match op {
                Add => Value::Int(a.wrapping_add(*b)),
                Sub => Value::Int(a.wrapping_sub(*b)),
                Mul => Value::Int(a.wrapping_mul(*b)),
                Div => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Float(*a as f64 / *b as f64)
                    }
                }
                _ => unreachable!(),
            });
        }
        // String concatenation via Add.
        if let (Value::Str(a), Value::Str(b)) = (l, r) {
            if op == Add {
                return Ok(Value::str(format!("{a}{b}")));
            }
        }
        let (a, b) = numeric_pair(l, r).ok_or(Error::TypeMismatch {
            expected: "number",
            found: l.type_name(),
        })?;
        return Ok(match op {
            Add => Value::Float(a + b),
            Sub => Value::Float(a - b),
            Mul => Value::Float(a * b),
            Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
            _ => unreachable!(),
        });
    }
    // Comparisons: NULL compares false except Eq/Ne on two NULLs.
    if l.is_null() || r.is_null() {
        return Ok(match op {
            Eq => Value::Bool(l.is_null() && r.is_null()),
            Ne => Value::Bool(l.is_null() != r.is_null()),
            _ => Value::Bool(false),
        });
    }
    let ord = l.cmp(r);
    Ok(Value::Bool(match op {
        Eq => ord == std::cmp::Ordering::Equal,
        Ne => ord != std::cmp::Ordering::Equal,
        Lt => ord == std::cmp::Ordering::Less,
        Le => ord != std::cmp::Ordering::Greater,
        Gt => ord == std::cmp::Ordering::Greater,
        Ge => ord != std::cmp::Ordering::Less,
        And | Or | Add | Sub | Mul | Div => unreachable!("handled above"),
    }))
}

/// The textual content of a value without allocating for the common
/// `Value::Str` case.
fn text_of(v: &Value) -> Cow<'_, str> {
    match v {
        Value::Str(s) => Cow::Borrowed(s),
        other => Cow::Owned(other.to_text()),
    }
}

/// End byte offset of the `prefix()` builtin's slice: the text before the
/// first `-`, or the first three characters.
pub(crate) fn prefix_end(s: &str) -> usize {
    match s.find('-') {
        Some(i) => i,
        None => s.char_indices().nth(3).map(|(i, _)| i).unwrap_or(s.len()),
    }
}

/// Is `s` its own lowercase? ASCII fast path, exact Unicode fallback (a
/// titlecase letter like `ǅ` is not `is_uppercase` yet still folds).
pub(crate) fn lowercase_is_identity(s: &str) -> bool {
    if s.is_ascii() {
        !s.bytes().any(|b| b.is_ascii_uppercase())
    } else {
        s.chars().all(|c| {
            let mut lower = c.to_lowercase();
            lower.next() == Some(c) && lower.next().is_none()
        })
    }
}

/// Is `s` its own uppercase?
pub(crate) fn uppercase_is_identity(s: &str) -> bool {
    if s.is_ascii() {
        !s.bytes().any(|b| b.is_ascii_lowercase())
    } else {
        s.chars().all(|c| {
            let mut upper = c.to_uppercase();
            upper.next() == Some(c) && upper.next().is_none()
        })
    }
}

pub(crate) fn eval_func(f: &Func, args: &[Value], ctx: &EvalCtx) -> Result<Value> {
    let arg = |i: usize| -> Result<&Value> {
        args.get(i)
            .ok_or_else(|| Error::Invalid(format!("{f:?}: missing argument {i}")))
    };
    match f {
        Func::Prefix => {
            let v = arg(0)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            // Zero-copy: slice the shared source in place; a prefix that
            // covers the whole string materializes as a refcount bump.
            match v {
                Value::Str(s) => Ok(StrView::slice(s, 0, prefix_end(s)).into_value()),
                other => {
                    let s = other.to_text();
                    let end = prefix_end(&s);
                    Ok(Value::str(&s[..end]))
                }
            }
        }
        // Case folding propagates NULL like the other string builtins and
        // only allocates when it changes bytes: an already-folded shared
        // string is returned by refcount bump.
        Func::Lower => match arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) if lowercase_is_identity(s) => Ok(Value::Str(Arc::clone(s))),
            other => Ok(Value::str(text_of(other).to_lowercase())),
        },
        Func::Upper => match arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) if uppercase_is_identity(s) => Ok(Value::Str(Arc::clone(s))),
            other => Ok(Value::str(text_of(other).to_uppercase())),
        },
        Func::Trim => {
            let v = arg(0)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            match v {
                Value::Str(s) => {
                    // An offset view over the shared source: already-trimmed
                    // strings (the whole source) materialize without copying.
                    let trimmed = s.trim();
                    let start = trimmed.as_ptr() as usize - s.as_ptr() as usize;
                    Ok(StrView::slice(s, start, start + trimmed.len()).into_value())
                }
                other => Ok(Value::str(other.to_text().trim())),
            }
        }
        Func::Length => match arg(0)? {
            Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
            Value::List(items) => Ok(Value::Int(items.len() as i64)),
            Value::Null => Ok(Value::Null),
            other => Err(Error::TypeMismatch {
                expected: "string or list",
                found: other.type_name(),
            }),
        },
        Func::Count => Ok(Value::Int(arg(0)?.as_list()?.len() as i64)),
        Func::CountDistinct => {
            let items = arg(0)?.as_list()?;
            let mut distinct: Vec<&Value> = Vec::new();
            for v in items {
                if !distinct.contains(&v) {
                    distinct.push(v);
                }
            }
            Ok(Value::Int(distinct.len() as i64))
        }
        Func::Avg => {
            let items = arg(0)?.as_list()?;
            let mut sum = 0.0;
            let mut n = 0usize;
            for v in items {
                if !v.is_null() {
                    sum += v.as_float()?;
                    n += 1;
                }
            }
            if n == 0 {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(sum / n as f64))
            }
        }
        Func::Similar(metric, theta) => {
            ctx.comparisons.fetch_add(1, Ordering::Relaxed);
            let a = text_of(arg(0)?);
            let b = text_of(arg(1)?);
            Ok(Value::Bool(metric.similar(&a, &b, *theta)))
        }
        Func::Similarity(metric) => {
            ctx.comparisons.fetch_add(1, Ordering::Relaxed);
            let a = text_of(arg(0)?);
            let b = text_of(arg(1)?);
            Ok(Value::Float(metric.similarity(&a, &b)))
        }
        Func::BlockKeys(algo) => {
            let term = text_of(arg(0)?);
            let blocker = ctx.blocker(algo)?;
            Ok(Value::list(
                blocker.keys(&term).into_iter().map(Value::from),
            ))
        }
        Func::Split(sep) => {
            let v = arg(0)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            // No separator present → the single token *is* the input:
            // share it instead of copying it.
            if let Value::Str(s) = v {
                if !s.contains(sep.as_str()) {
                    return Ok(Value::list([Value::Str(Arc::clone(s))]));
                }
            }
            let s = text_of(v);
            Ok(Value::list(s.split(sep.as_str()).map(Value::from)))
        }
        Func::Concat => {
            // Concatenating one string is the identity: share it.
            if let [Value::Str(s)] = args {
                return Ok(Value::Str(Arc::clone(s)));
            }
            let mut out = String::new();
            for v in args {
                match v {
                    Value::Str(s) => out.push_str(s),
                    other => out.push_str(&other.to_text()),
                }
            }
            Ok(Value::str(out))
        }
        Func::IsNull => Ok(Value::Bool(arg(0)?.is_null())),
        Func::Coalesce => {
            let v = arg(0)?;
            if v.is_null() {
                Ok(arg(1)?.clone())
            } else {
                Ok(v.clone())
            }
        }
        Func::Distinct => {
            let items = arg(0)?.as_list()?;
            let mut out: Vec<Value> = Vec::new();
            for v in items {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Ok(Value::list(out))
        }
    }
}

/// Evaluate a comprehension: fold the qualifier bindings, merging each head
/// instantiation into the monoid's accumulator.
fn eval_comp(c: &Comprehension, env: &Env, ctx: &EvalCtx) -> Result<Value> {
    let mut acc = c.monoid.zero();
    let mut env = env.clone();
    eval_quals(&c.quals, 0, &mut env, ctx, &mut |env, ctx| {
        let head = eval(&c.head, env, ctx)?;
        let unit = monoid_unit(&c.monoid, head)?;
        acc = merge_values(&c.monoid, std::mem::take(&mut acc), unit)?;
        Ok(())
    })?;
    finalize(&c.monoid, acc)
}

fn eval_quals(
    quals: &[Qual],
    i: usize,
    env: &mut Env,
    ctx: &EvalCtx,
    emit: &mut dyn FnMut(&Env, &EvalCtx) -> Result<()>,
) -> Result<()> {
    if i == quals.len() {
        return emit(env, ctx);
    }
    match &quals[i] {
        Qual::Gen(v, e) => {
            let coll = eval_ref(e, env, ctx)?;
            let items = match coll.as_ref() {
                Value::Null => return Ok(()), // generating over NULL yields nothing
                other => other.as_list()?.to_vec(),
            };
            for item in items {
                env.push((v.clone(), item));
                eval_quals(quals, i + 1, env, ctx, emit)?;
                env.pop();
            }
            Ok(())
        }
        Qual::Pred(e) => {
            if truthy(&*eval_ref(e, env, ctx)?) {
                eval_quals(quals, i + 1, env, ctx, emit)
            } else {
                Ok(())
            }
        }
        Qual::Bind(v, e) => {
            let val = eval(e, env, ctx)?;
            env.push((v.clone(), val));
            eval_quals(quals, i + 1, env, ctx, emit)?;
            env.pop();
            Ok(())
        }
    }
}

/// U⊕: lift one head value into the monoid.
fn monoid_unit(m: &MonoidKind, head: Value) -> Result<Value> {
    match m {
        MonoidKind::Bag | MonoidKind::Set | MonoidKind::List => Ok(Value::list([head])),
        MonoidKind::Filter(_) => {
            // Head must be {key(s), item}: normalize to a one-group map.
            let keys = head.field("key")?.clone();
            let item = head.field("item")?.clone();
            let keys = match keys {
                Value::List(ks) => ks.to_vec(),
                scalar => vec![scalar],
            };
            Ok(Value::list(keys.into_iter().map(|k| {
                Value::record([("key", k), ("partition", Value::list([item.clone()]))])
            })))
        }
        _ => Ok(head),
    }
}

/// ⊕: merge two accumulated monoid values.
pub fn merge_values(m: &MonoidKind, l: Value, r: Value) -> Result<Value> {
    match m {
        MonoidKind::Sum => eval_binop(BinOp::Add, &l, &r).map(|v| {
            if v.is_null() {
                // Null is not Sum's identity; treat as 0 contribution.
                if l.is_null() {
                    r
                } else {
                    l
                }
            } else {
                v
            }
        }),
        MonoidKind::Prod => {
            if l.is_null() {
                Ok(r)
            } else if r.is_null() {
                Ok(l)
            } else {
                eval_binop(BinOp::Mul, &l, &r)
            }
        }
        MonoidKind::Min => Ok(match (&l, &r) {
            (Value::Null, _) => r,
            (_, Value::Null) => l,
            _ => {
                if l <= r {
                    l
                } else {
                    r
                }
            }
        }),
        MonoidKind::Max => Ok(match (&l, &r) {
            (Value::Null, _) => r,
            (_, Value::Null) => l,
            _ => {
                if l >= r {
                    l
                } else {
                    r
                }
            }
        }),
        MonoidKind::Any => Ok(Value::Bool(truthy(&l) || truthy(&r))),
        MonoidKind::All => Ok(Value::Bool(truthy(&l) && truthy(&r))),
        MonoidKind::Bag | MonoidKind::Set | MonoidKind::List => {
            let mut out = l.as_list()?.to_vec();
            out.extend(r.as_list()?.iter().cloned());
            Ok(Value::list(out))
        }
        MonoidKind::Filter(_) => {
            // Merge group maps: same key → concatenated partitions.
            let mut groups: Vec<(Value, Vec<Value>)> = Vec::new();
            for side in [l, r] {
                for g in side.as_list()? {
                    let key = g.field("key")?.clone();
                    let members = g.field("partition")?.as_list()?.to_vec();
                    match groups.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, existing)) => existing.extend(members),
                        None => groups.push((key, members)),
                    }
                }
            }
            Ok(Value::list(groups.into_iter().map(|(k, members)| {
                Value::record([("key", k), ("partition", Value::list(members))])
            })))
        }
    }
}

/// Final adjustment: Set dedups (and sorts, for determinism); Filter sorts
/// groups by key.
fn finalize(m: &MonoidKind, acc: Value) -> Result<Value> {
    match m {
        MonoidKind::Set => {
            let mut items = acc.as_list()?.to_vec();
            items.sort();
            items.dedup();
            Ok(Value::list(items))
        }
        MonoidKind::Filter(_) => {
            let mut groups = acc.as_list()?.to_vec();
            groups.sort_by(|a, b| {
                a.field("key")
                    .unwrap_or(&Value::Null)
                    .cmp(b.field("key").unwrap_or(&Value::Null))
            });
            Ok(Value::list(groups))
        }
        _ => Ok(acc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::expr::{BinOp, CalcExpr, MonoidKind};

    fn nums(ns: &[i64]) -> Value {
        Value::list(ns.iter().map(|&n| Value::Int(n)))
    }

    #[test]
    fn paper_example_sum() {
        // +{ x | x <- [1,2,10], x < 5 } = 3
        let ctx = EvalCtx::new().with_table("t", nums(&[1, 2, 10]));
        let e = CalcExpr::comp(
            MonoidKind::Sum,
            CalcExpr::var("x"),
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("t".into())),
                Qual::Pred(CalcExpr::bin(
                    BinOp::Lt,
                    CalcExpr::var("x"),
                    CalcExpr::int(5),
                )),
            ],
        );
        assert_eq!(eval(&e, &vec![], &ctx).unwrap(), Value::Int(3));
    }

    #[test]
    fn paper_example_cross_product() {
        // set{ (x,y) | x <- {1,2}, y <- {3,4} } has 4 elements
        let ctx = EvalCtx::new()
            .with_table("a", nums(&[1, 2]))
            .with_table("b", nums(&[3, 4]));
        let e = CalcExpr::comp(
            MonoidKind::Set,
            CalcExpr::record(vec![("x", CalcExpr::var("x")), ("y", CalcExpr::var("y"))]),
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("a".into())),
                Qual::Gen("y".into(), CalcExpr::TableRef("b".into())),
            ],
        );
        let v = eval(&e, &vec![], &ctx).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 4);
    }

    #[test]
    fn min_max_over_empty_is_null() {
        let ctx = EvalCtx::new().with_table("t", nums(&[]));
        for m in [MonoidKind::Min, MonoidKind::Max] {
            let e = CalcExpr::comp(
                m,
                CalcExpr::var("x"),
                vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
            );
            assert_eq!(eval(&e, &vec![], &ctx).unwrap(), Value::Null);
        }
    }

    #[test]
    fn set_dedups() {
        let ctx = EvalCtx::new().with_table("t", nums(&[3, 1, 3, 2, 1]));
        let e = CalcExpr::comp(
            MonoidKind::Set,
            CalcExpr::var("x"),
            vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
        );
        assert_eq!(eval(&e, &vec![], &ctx).unwrap(), nums(&[1, 2, 3]));
    }

    #[test]
    fn bind_and_nested_generator() {
        // bag{ y | x <- [1,2], y := x*10 }
        let ctx = EvalCtx::new().with_table("t", nums(&[1, 2]));
        let e = CalcExpr::comp(
            MonoidKind::Bag,
            CalcExpr::var("y"),
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("t".into())),
                Qual::Bind(
                    "y".into(),
                    CalcExpr::bin(BinOp::Mul, CalcExpr::var("x"), CalcExpr::int(10)),
                ),
            ],
        );
        assert_eq!(eval(&e, &vec![], &ctx).unwrap(), nums(&[10, 20]));
    }

    #[test]
    fn filter_monoid_groups() {
        // filter{ {key: x mod-ish, item: x} | x <- [1,2,3,4] } via key = x <= 2
        let ctx = EvalCtx::new().with_table("t", nums(&[1, 2, 3, 4]));
        let e = CalcExpr::comp(
            MonoidKind::Filter(FilterAlgo::Exact),
            CalcExpr::record(vec![
                (
                    "key",
                    CalcExpr::bin(BinOp::Le, CalcExpr::var("x"), CalcExpr::int(2)),
                ),
                ("item", CalcExpr::var("x")),
            ]),
            vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
        );
        let v = eval(&e, &vec![], &ctx).unwrap();
        let groups = v.as_list().unwrap();
        assert_eq!(groups.len(), 2);
        // Sorted by key: false group first.
        assert_eq!(groups[0].field("key").unwrap(), &Value::Bool(false));
        assert_eq!(groups[0].field("partition").unwrap(), &nums(&[3, 4]));
        assert_eq!(groups[1].field("partition").unwrap(), &nums(&[1, 2]));
    }

    #[test]
    fn multi_key_filter_expands() {
        // An item with a list key lands in several groups (token filtering).
        let ctx = EvalCtx::new().with_table("t", Value::list([Value::str("ab")]));
        let mut ctx = ctx;
        let head = CalcExpr::record(vec![
            (
                "key",
                CalcExpr::call(
                    Func::BlockKeys(FilterAlgo::TokenFilter { q: 1 }),
                    vec![CalcExpr::var("x")],
                ),
            ),
            ("item", CalcExpr::var("x")),
        ]);
        let e = CalcExpr::comp(
            MonoidKind::Filter(FilterAlgo::TokenFilter { q: 1 }),
            head,
            vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
        );
        ctx.prepare_blockers(&e, &[]);
        let v = eval(&e, &vec![], &ctx).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 2, "two 1-grams: a, b");
    }

    #[test]
    fn builtin_functions() {
        let ctx = EvalCtx::new();
        let env = vec![];
        let call = |f: Func, args: Vec<CalcExpr>| eval(&CalcExpr::call(f, args), &env, &ctx);

        assert_eq!(
            call(Func::Prefix, vec![CalcExpr::str("123-456")]).unwrap(),
            Value::str("123")
        );
        assert_eq!(
            call(Func::Prefix, vec![CalcExpr::str("abcdef")]).unwrap(),
            Value::str("abc")
        );
        assert_eq!(
            call(Func::Lower, vec![CalcExpr::str("AbC")]).unwrap(),
            Value::str("abc")
        );
        assert_eq!(
            call(Func::Length, vec![CalcExpr::str("héllo")]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            call(Func::CountDistinct, vec![CalcExpr::Const(nums(&[1, 1, 2]))]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            call(Func::Avg, vec![CalcExpr::Const(nums(&[1, 2, 3]))]).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            call(Func::Split("-".into()), vec![CalcExpr::str("a-b-c")]).unwrap(),
            Value::list([Value::str("a"), Value::str("b"), Value::str("c")])
        );
        assert_eq!(
            call(
                Func::Coalesce,
                vec![CalcExpr::Const(Value::Null), CalcExpr::int(7)]
            )
            .unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn similarity_counts_comparisons() {
        let ctx = EvalCtx::new();
        let e = CalcExpr::call(
            Func::Similar(cleanm_text::Metric::Levenshtein, 0.8),
            vec![CalcExpr::str("smith"), CalcExpr::str("smyth")],
        );
        assert_eq!(eval(&e, &vec![], &ctx).unwrap(), Value::Bool(true));
        assert_eq!(ctx.comparisons(), 1);
    }

    #[test]
    fn null_semantics() {
        let ctx = EvalCtx::new();
        let env = vec![("n".to_string(), Value::Null)];
        // NULL arithmetic propagates.
        let v = eval(
            &CalcExpr::bin(BinOp::Add, CalcExpr::var("n"), CalcExpr::int(1)),
            &env,
            &ctx,
        )
        .unwrap();
        assert!(v.is_null());
        // NULL comparison is false.
        let v = eval(
            &CalcExpr::bin(BinOp::Lt, CalcExpr::var("n"), CalcExpr::int(1)),
            &env,
            &ctx,
        )
        .unwrap();
        assert_eq!(v, Value::Bool(false));
        // Projection through NULL is NULL.
        let v = eval(&CalcExpr::proj(CalcExpr::var("n"), "f"), &env, &ctx).unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn exists_and_division() {
        let ctx = EvalCtx::new().with_table("t", nums(&[1]));
        let e = CalcExpr::Exists(Box::new(CalcExpr::TableRef("t".into())));
        assert_eq!(eval(&e, &vec![], &ctx).unwrap(), Value::Bool(true));
        let e = CalcExpr::bin(BinOp::Div, CalcExpr::int(1), CalcExpr::int(0));
        assert!(eval(&e, &vec![], &ctx).unwrap().is_null());
    }
}
