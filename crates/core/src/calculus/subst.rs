//! Capture-avoiding substitution and free-variable analysis.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use super::expr::{CalcExpr, Comprehension, Qual};

static FRESH: AtomicU64 = AtomicU64::new(0);

/// A globally fresh variable name (used when unnesting would capture).
pub fn fresh_var(base: &str) -> String {
    let n = FRESH.fetch_add(1, Ordering::Relaxed);
    format!("{base}${n}")
}

/// Free variables of an expression.
pub fn free_vars(expr: &CalcExpr) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_free(expr, &mut HashSet::new(), &mut out);
    out
}

fn collect_free(expr: &CalcExpr, bound: &mut HashSet<String>, out: &mut HashSet<String>) {
    match expr {
        CalcExpr::Const(_) | CalcExpr::TableRef(_) => {}
        CalcExpr::Var(v) => {
            if !bound.contains(v) {
                out.insert(v.clone());
            }
        }
        CalcExpr::Record(fields) => {
            for (_, e) in fields {
                collect_free(e, bound, out);
            }
        }
        CalcExpr::Proj(e, _) | CalcExpr::Not(e) | CalcExpr::Exists(e) => {
            collect_free(e, bound, out)
        }
        CalcExpr::BinOp(_, l, r) | CalcExpr::Merge(_, l, r) => {
            collect_free(l, bound, out);
            collect_free(r, bound, out);
        }
        CalcExpr::If(c, t, e) => {
            collect_free(c, bound, out);
            collect_free(t, bound, out);
            collect_free(e, bound, out);
        }
        CalcExpr::Call(_, args) => {
            for a in args {
                collect_free(a, bound, out);
            }
        }
        CalcExpr::Comp(c) => {
            let mut newly_bound: Vec<String> = Vec::new();
            for q in &c.quals {
                match q {
                    Qual::Gen(v, e) | Qual::Bind(v, e) => {
                        collect_free(e, bound, out);
                        if bound.insert(v.clone()) {
                            newly_bound.push(v.clone());
                        }
                    }
                    Qual::Pred(e) => collect_free(e, bound, out),
                }
            }
            collect_free(&c.head, bound, out);
            for v in newly_bound {
                bound.remove(&v);
            }
        }
    }
}

/// Substitute `value` for free occurrences of `var` in `expr`
/// (capture-avoiding: shadowing binders stop the substitution; binders whose
/// body would capture a free variable of `value` are α-renamed).
pub fn substitute(expr: &CalcExpr, var: &str, value: &CalcExpr) -> CalcExpr {
    match expr {
        CalcExpr::Const(_) | CalcExpr::TableRef(_) => expr.clone(),
        CalcExpr::Var(v) => {
            if v == var {
                value.clone()
            } else {
                expr.clone()
            }
        }
        CalcExpr::Record(fields) => CalcExpr::Record(
            fields
                .iter()
                .map(|(n, e)| (n.clone(), substitute(e, var, value)))
                .collect(),
        ),
        CalcExpr::Proj(e, f) => CalcExpr::Proj(Box::new(substitute(e, var, value)), f.clone()),
        CalcExpr::Not(e) => CalcExpr::Not(Box::new(substitute(e, var, value))),
        CalcExpr::Exists(e) => CalcExpr::Exists(Box::new(substitute(e, var, value))),
        CalcExpr::BinOp(op, l, r) => CalcExpr::BinOp(
            *op,
            Box::new(substitute(l, var, value)),
            Box::new(substitute(r, var, value)),
        ),
        CalcExpr::Merge(m, l, r) => CalcExpr::Merge(
            m.clone(),
            Box::new(substitute(l, var, value)),
            Box::new(substitute(r, var, value)),
        ),
        CalcExpr::If(c, t, e) => CalcExpr::If(
            Box::new(substitute(c, var, value)),
            Box::new(substitute(t, var, value)),
            Box::new(substitute(e, var, value)),
        ),
        CalcExpr::Call(f, args) => CalcExpr::Call(
            f.clone(),
            args.iter().map(|a| substitute(a, var, value)).collect(),
        ),
        CalcExpr::Comp(c) => CalcExpr::Comp(substitute_comp(c, var, value)),
    }
}

fn substitute_comp(c: &Comprehension, var: &str, value: &CalcExpr) -> Comprehension {
    let value_free = free_vars(value);
    let mut quals: Vec<Qual> = Vec::with_capacity(c.quals.len());
    let mut shadowed = false;
    // Renamings applied to the remainder of the comprehension (α-conversion
    // of binders that would capture a free var of `value`).
    let mut renames: Vec<(String, String)> = Vec::new();

    let apply_renames = |e: &CalcExpr, renames: &[(String, String)]| -> CalcExpr {
        let mut out = e.clone();
        for (from, to) in renames {
            out = substitute(&out, from, &CalcExpr::Var(to.clone()));
        }
        out
    };

    for q in &c.quals {
        match q {
            Qual::Gen(v, e) | Qual::Bind(v, e) => {
                let is_gen = matches!(q, Qual::Gen(..));
                // Substitute in the source expression first (binder not yet
                // in scope there), unless an earlier binder shadowed `var`.
                let mut e2 = apply_renames(e, &renames);
                if !shadowed {
                    e2 = substitute(&e2, var, value);
                }
                let mut v2 = v.clone();
                if v == var {
                    shadowed = true;
                } else if value_free.contains(v) && !shadowed {
                    // α-rename this binder to avoid capturing `value`'s var.
                    v2 = fresh_var(v);
                    renames.push((v.clone(), v2.clone()));
                }
                quals.push(if is_gen {
                    Qual::Gen(v2, e2)
                } else {
                    Qual::Bind(v2, e2)
                });
            }
            Qual::Pred(e) => {
                let mut e2 = apply_renames(e, &renames);
                if !shadowed {
                    e2 = substitute(&e2, var, value);
                }
                quals.push(Qual::Pred(e2));
            }
        }
    }
    let mut head = apply_renames(&c.head, &renames);
    if !shadowed {
        head = substitute(&head, var, value);
    }
    Comprehension {
        monoid: c.monoid.clone(),
        head: Box::new(head),
        quals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::expr::{BinOp, MonoidKind};

    #[test]
    fn free_vars_basics() {
        let e = CalcExpr::bin(
            BinOp::Add,
            CalcExpr::var("x"),
            CalcExpr::proj(CalcExpr::var("y"), "f"),
        );
        let fv = free_vars(&e);
        assert!(fv.contains("x") && fv.contains("y"));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn comprehension_binds() {
        // sum{ x + z | x <- t }: x bound, z free.
        let c = CalcExpr::comp(
            MonoidKind::Sum,
            CalcExpr::bin(BinOp::Add, CalcExpr::var("x"), CalcExpr::var("z")),
            vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
        );
        let fv = free_vars(&c);
        assert!(fv.contains("z"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn substitute_respects_shadowing() {
        // sum{ x | x <- xs }: substituting x does nothing inside.
        let c = CalcExpr::comp(
            MonoidKind::Sum,
            CalcExpr::var("x"),
            vec![Qual::Gen("x".into(), CalcExpr::var("xs"))],
        );
        let out = substitute(&c, "x", &CalcExpr::int(9));
        assert_eq!(out, c);
        // …but xs does get substituted.
        let out = substitute(&c, "xs", &CalcExpr::TableRef("t".into()));
        match out {
            CalcExpr::Comp(c2) => {
                assert_eq!(
                    c2.quals[0],
                    Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn substitute_avoids_capture() {
        // sum{ y + k | y <- t }: substitute k := y. The binder y must be
        // renamed, otherwise the free y of the value is captured.
        let c = CalcExpr::comp(
            MonoidKind::Sum,
            CalcExpr::bin(BinOp::Add, CalcExpr::var("y"), CalcExpr::var("k")),
            vec![Qual::Gen("y".into(), CalcExpr::TableRef("t".into()))],
        );
        let out = substitute(&c, "k", &CalcExpr::var("y"));
        match out {
            CalcExpr::Comp(c2) => {
                let Qual::Gen(binder, _) = &c2.quals[0] else {
                    panic!()
                };
                assert_ne!(binder, "y", "binder must be α-renamed");
                // Head: binder + y (the substituted free y remains free).
                let fv = free_vars(&CalcExpr::Comp(c2));
                assert!(fv.contains("y"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fresh_names_are_distinct() {
        assert_ne!(fresh_var("v"), fresh_var("v"));
    }
}
