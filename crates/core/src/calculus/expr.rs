//! Expression IR of the monoid comprehension calculus.

use std::fmt;
use std::sync::Arc;

use cleanm_text::Metric;
use cleanm_values::Value;

/// A monoid: the ⊕ of a comprehension `⊕{ e | … }`.
///
/// Primitive monoids aggregate scalars; collection monoids build
/// collections; *filter monoids* (§4.3) group elements by blocker key —
/// they take `{key, item}` records and produce `{key, partition}` groups.
#[derive(Debug, Clone, PartialEq)]
pub enum MonoidKind {
    // --- primitive
    Sum,
    Prod,
    Min,
    Max,
    /// Logical OR (`some`).
    Any,
    /// Logical AND (`all`).
    All,
    // --- collection
    Bag,
    Set,
    List,
    /// Grouping monoid: groups head records `{key, item}` into
    /// `{key, partition}` groups, merging partitions per key. The blocking
    /// algorithm is carried for plan explanation; the *keys themselves* are
    /// produced by the head expression (see [`Func::BlockKeys`]).
    Filter(FilterAlgo),
}

impl MonoidKind {
    /// Zero element Z⊕.
    pub fn zero(&self) -> Value {
        match self {
            MonoidKind::Sum => Value::Int(0),
            MonoidKind::Prod => Value::Int(1),
            MonoidKind::Min => Value::Null, // identity of min over nullable domain
            MonoidKind::Max => Value::Null,
            MonoidKind::Any => Value::Bool(false),
            MonoidKind::All => Value::Bool(true),
            MonoidKind::Bag | MonoidKind::Set | MonoidKind::List | MonoidKind::Filter(_) => {
                Value::list([])
            }
        }
    }

    /// Is ⊕ commutative? (All of ours are except List.)
    pub fn commutative(&self) -> bool {
        !matches!(self, MonoidKind::List)
    }

    /// Is ⊕ idempotent? (x ⊕ x = x)
    pub fn idempotent(&self) -> bool {
        matches!(
            self,
            MonoidKind::Min | MonoidKind::Max | MonoidKind::Any | MonoidKind::All | MonoidKind::Set
        )
    }

    /// Collection monoids produce collections a generator can iterate.
    pub fn is_collection(&self) -> bool {
        matches!(
            self,
            MonoidKind::Bag | MonoidKind::Set | MonoidKind::List | MonoidKind::Filter(_)
        )
    }
}

/// The blocking algorithm of a filter monoid (the `<op>` of `DEDUP(op, …)`).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterAlgo {
    /// Group by the exact (normalized) value — FD grouping.
    Exact,
    /// q-gram token filtering (§4.3).
    TokenFilter { q: usize },
    /// Single-pass k-means with reservoir-sampled centers (§4.3).
    KMeans { k: usize, delta: usize, seed: u64 },
    /// Length-band blocking (extensibility example).
    LengthBand { width: usize },
}

impl fmt::Display for FilterAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterAlgo::Exact => write!(f, "exact"),
            FilterAlgo::TokenFilter { q } => write!(f, "token_filtering(q={q})"),
            FilterAlgo::KMeans { k, delta, .. } => write!(f, "kmeans(k={k}, delta={delta})"),
            FilterAlgo::LengthBand { width } => write!(f, "length_band({width})"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Builtin functions — the "low-level operations" CleanM exposes as
/// first-class calculus citizens (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Func {
    /// `prefix(s)` — the running example's `prefix(phone)`: chars before the
    /// first `-` (or the first 3).
    Prefix,
    /// `lower(s)`.
    Lower,
    /// `upper(s)`.
    Upper,
    /// `trim(s)` — strip leading/trailing whitespace.
    Trim,
    /// `length(x)` — string chars or collection size.
    Length,
    /// `count(coll)`.
    Count,
    /// `count_distinct(coll)`.
    CountDistinct,
    /// `avg(coll)` of numeric values, ignoring nulls.
    Avg,
    /// `similar(a, b)` under a metric/threshold.
    Similar(Metric, f64),
    /// `similarity(a, b)` — the raw score.
    Similarity(Metric),
    /// `block_keys(term)` — the blocker's group keys for a term (the unit
    /// function of the filter monoid, §4.3).
    BlockKeys(FilterAlgo),
    /// `split(s, sep)` → list of strings.
    Split(String),
    /// `concat(parts…)` → string.
    Concat,
    /// `is_null(x)`.
    IsNull,
    /// `coalesce(x, y)` — `y` if `x` is null.
    Coalesce,
    /// `distinct(coll)`.
    Distinct,
}

/// One qualifier of a comprehension body.
#[derive(Debug, Clone, PartialEq)]
pub enum Qual {
    /// `v ← e`: iterate a collection.
    Gen(String, CalcExpr),
    /// A filter predicate.
    Pred(CalcExpr),
    /// `v := e`: a local binding (removed by beta reduction).
    Bind(String, CalcExpr),
}

/// `⊕{ head | quals }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comprehension {
    pub monoid: MonoidKind,
    pub head: Box<CalcExpr>,
    pub quals: Vec<Qual>,
}

/// The calculus expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum CalcExpr {
    Const(Value),
    /// A bound variable.
    Var(String),
    /// A named input collection (base table).
    TableRef(String),
    /// Record constructor.
    Record(Vec<(String, CalcExpr)>),
    /// Field projection `e.f`.
    Proj(Box<CalcExpr>, String),
    BinOp(BinOp, Box<CalcExpr>, Box<CalcExpr>),
    Not(Box<CalcExpr>),
    If(Box<CalcExpr>, Box<CalcExpr>, Box<CalcExpr>),
    Call(Func, Vec<CalcExpr>),
    /// `exists e` — true iff the collection `e` is non-empty.
    Exists(Box<CalcExpr>),
    Comp(Comprehension),
    /// Explicit merge `e₁ ⊕ e₂` (introduced by if-splitting).
    Merge(MonoidKind, Box<CalcExpr>, Box<CalcExpr>),
}

impl CalcExpr {
    // -- constructor helpers used across the crate and in tests ------------

    pub fn int(i: i64) -> Self {
        CalcExpr::Const(Value::Int(i))
    }
    pub fn float(f: f64) -> Self {
        CalcExpr::Const(Value::Float(f))
    }
    pub fn str(s: &str) -> Self {
        CalcExpr::Const(Value::str(s))
    }
    pub fn boolean(b: bool) -> Self {
        CalcExpr::Const(Value::Bool(b))
    }
    pub fn var(name: &str) -> Self {
        CalcExpr::Var(name.to_string())
    }
    pub fn proj(e: CalcExpr, field: &str) -> Self {
        CalcExpr::Proj(Box::new(e), field.to_string())
    }
    pub fn bin(op: BinOp, l: CalcExpr, r: CalcExpr) -> Self {
        CalcExpr::BinOp(op, Box::new(l), Box::new(r))
    }
    pub fn call(f: Func, args: Vec<CalcExpr>) -> Self {
        CalcExpr::Call(f, args)
    }
    pub fn comp(monoid: MonoidKind, head: CalcExpr, quals: Vec<Qual>) -> Self {
        CalcExpr::Comp(Comprehension {
            monoid,
            head: Box::new(head),
            quals,
        })
    }
    pub fn record(fields: Vec<(&str, CalcExpr)>) -> Self {
        CalcExpr::Record(
            fields
                .into_iter()
                .map(|(n, e)| (n.to_string(), e))
                .collect(),
        )
    }

    /// Visit every *direct* child expression. The match is exhaustive with
    /// no wildcard arm, so adding a `CalcExpr` variant forces this one place
    /// to be updated — and every tree walker built on it (table-reference
    /// collection, column extraction, similarity detection, …) stays
    /// complete for free.
    pub fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a CalcExpr)) {
        match self {
            CalcExpr::Const(_) | CalcExpr::Var(_) | CalcExpr::TableRef(_) => {}
            CalcExpr::Record(fields) => fields.iter().for_each(|(_, e)| f(e)),
            CalcExpr::Proj(e, _) | CalcExpr::Not(e) | CalcExpr::Exists(e) => f(e),
            CalcExpr::BinOp(_, l, r) | CalcExpr::Merge(_, l, r) => {
                f(l);
                f(r);
            }
            CalcExpr::If(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
            CalcExpr::Call(_, args) => args.iter().for_each(&mut *f),
            CalcExpr::Comp(c) => {
                f(&c.head);
                for q in &c.quals {
                    match q {
                        Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => f(e),
                    }
                }
            }
        }
    }

    /// Does any node in the tree (including `self`) satisfy `pred`?
    pub fn any_node(&self, pred: &mut impl FnMut(&CalcExpr) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        let mut found = false;
        self.for_each_child(&mut |child| {
            if !found && child.any_node(pred) {
                found = true;
            }
        });
        found
    }

    /// Number of nodes — used by the normalizer's fuel bound and by tests.
    pub fn size(&self) -> usize {
        match self {
            CalcExpr::Const(_) | CalcExpr::Var(_) | CalcExpr::TableRef(_) => 1,
            CalcExpr::Record(fields) => 1 + fields.iter().map(|(_, e)| e.size()).sum::<usize>(),
            CalcExpr::Proj(e, _) | CalcExpr::Not(e) | CalcExpr::Exists(e) => 1 + e.size(),
            CalcExpr::BinOp(_, l, r) | CalcExpr::Merge(_, l, r) => 1 + l.size() + r.size(),
            CalcExpr::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            CalcExpr::Call(_, args) => 1 + args.iter().map(|a| a.size()).sum::<usize>(),
            CalcExpr::Comp(c) => {
                1 + c.head.size()
                    + c.quals
                        .iter()
                        .map(|q| match q {
                            Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => e.size(),
                        })
                        .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for CalcExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalcExpr::Const(v) => write!(f, "{v}"),
            CalcExpr::Var(n) => write!(f, "{n}"),
            CalcExpr::TableRef(t) => write!(f, "table({t})"),
            CalcExpr::Record(fields) => {
                write!(f, "{{")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {e}")?;
                }
                write!(f, "}}")
            }
            CalcExpr::Proj(e, field) => write!(f, "{e}.{field}"),
            CalcExpr::BinOp(op, l, r) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Eq => "=",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "and",
                    BinOp::Or => "or",
                };
                write!(f, "({l} {sym} {r})")
            }
            CalcExpr::Not(e) => write!(f, "not({e})"),
            CalcExpr::If(c, t, e) => write!(f, "if {c} then {t} else {e}"),
            CalcExpr::Call(func, args) => {
                write!(f, "{func:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            CalcExpr::Exists(e) => write!(f, "exists({e})"),
            CalcExpr::Comp(c) => {
                write!(f, "{:?}{{ {} | ", c.monoid, c.head)?;
                for (i, q) in c.quals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match q {
                        Qual::Gen(v, e) => write!(f, "{v} <- {e}")?,
                        Qual::Pred(e) => write!(f, "{e}")?,
                        Qual::Bind(v, e) => write!(f, "{v} := {e}")?,
                    }
                }
                write!(f, " }}")
            }
            CalcExpr::Merge(m, l, r) => write!(f, "merge[{m:?}]({l}, {r})"),
        }
    }
}

/// Convert a [`FilterAlgo`] into a runnable blocker from `cleanm-cluster`.
/// K-means centers are sampled from the provided corpus (term validation
/// samples them from the dictionary, as in §8.1).
pub fn make_blocker(
    algo: &FilterAlgo,
    center_corpus: &[String],
) -> Arc<dyn cleanm_cluster::Blocker> {
    use cleanm_cluster::{
        BlockerKind, CenterInit, ExactKey, KMeansBlocker, LengthBand, TokenFilter,
    };
    let kind = match algo {
        FilterAlgo::Exact => BlockerKind::Exact(ExactKey),
        FilterAlgo::TokenFilter { q } => BlockerKind::TokenFilter(TokenFilter::new(*q)),
        FilterAlgo::KMeans { k, delta, seed } => {
            let corpus: Vec<&str> = center_corpus.iter().map(|s| s.as_str()).collect();
            assert!(
                !corpus.is_empty(),
                "k-means blocking requires a center corpus (e.g. the dictionary)"
            );
            BlockerKind::KMeans(KMeansBlocker::from_corpus(
                corpus,
                *k,
                CenterInit::Reservoir { seed: *seed },
                *delta,
            ))
        }
        FilterAlgo::LengthBand { width } => BlockerKind::LengthBand(LengthBand::new(*width)),
    };
    Arc::new(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monoid_properties() {
        assert!(MonoidKind::Set.idempotent());
        assert!(!MonoidKind::Bag.idempotent());
        assert!(MonoidKind::Sum.commutative());
        assert!(!MonoidKind::List.commutative());
        assert!(MonoidKind::Filter(FilterAlgo::Exact).is_collection());
        assert!(!MonoidKind::Max.is_collection());
    }

    #[test]
    fn zeros() {
        assert_eq!(MonoidKind::Sum.zero(), Value::Int(0));
        assert_eq!(MonoidKind::All.zero(), Value::Bool(true));
        assert_eq!(MonoidKind::Bag.zero(), Value::list([]));
    }

    #[test]
    fn size_counts_nodes() {
        let e = CalcExpr::bin(
            BinOp::Add,
            CalcExpr::int(1),
            CalcExpr::proj(CalcExpr::var("x"), "f"),
        );
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn display_comprehension() {
        let c = CalcExpr::comp(
            MonoidKind::Sum,
            CalcExpr::var("x"),
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("t".into())),
                Qual::Pred(CalcExpr::bin(
                    BinOp::Lt,
                    CalcExpr::var("x"),
                    CalcExpr::int(5),
                )),
            ],
        );
        let s = c.to_string();
        assert!(s.contains("x <- table(t)"), "{s}");
        assert!(s.contains("(x < 5)"), "{s}");
    }

    #[test]
    fn blocker_construction() {
        let b = make_blocker(&FilterAlgo::TokenFilter { q: 2 }, &[]);
        assert!(!b.keys("anna").is_empty());
        let corpus: Vec<String> = vec!["alpha".into(), "beta".into(), "gamma".into()];
        let b = make_blocker(
            &FilterAlgo::KMeans {
                k: 2,
                delta: 0,
                seed: 1,
            },
            &corpus,
        );
        assert!(!b.keys("alpha").is_empty());
    }
}
