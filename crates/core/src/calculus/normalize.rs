//! Comprehension normalization — the §4.2 "domain-agnostic optimizations".
//!
//! The normalizer applies a small set of rewrite rules bottom-up until a
//! fixpoint (with a fuel bound against pathological growth):
//!
//! * **beta reduction** — `v := e` bindings are substituted away, which also
//!   unnests UDFs defined as comprehensions;
//! * **generator flattening** — `v ← ⊗{e' | q̄'}` becomes `q̄', v := e'`,
//!   removing nested comprehensions (Fegaras & Maier's unnesting rules);
//! * **if-splitting** — `⊕{if c then e₁ else e₂ | q̄}` becomes
//!   `⊕{e₁ | q̄, c} ⊕ ⊕{e₂ | q̄, ¬c}` so each branch optimizes separately;
//! * **existential unnesting** — `…, exists ⊗{…| q̄'}, …` inlines `q̄'`
//!   (for idempotent target monoids, where multiplicity cannot matter);
//! * **filter pushdown** — predicates move directly after the qualifier
//!   that binds their last free variable;
//! * **static simplification** — constant folding, `true`/`false` predicate
//!   elimination, empty-collection propagation, and projection of record
//!   constructors.

use cleanm_values::Value;

use super::eval::eval_binop;
use super::expr::{BinOp, CalcExpr, Comprehension, MonoidKind, Qual};
use super::subst::{free_vars, fresh_var, substitute};

/// Which rules fired how many times — exposed for tests and the `repro`
/// harness's optimizer report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NormalizeStats {
    pub beta_reductions: usize,
    pub generators_flattened: usize,
    pub ifs_split: usize,
    pub exists_unnested: usize,
    pub filters_pushed: usize,
    pub simplifications: usize,
    pub passes: usize,
}

impl NormalizeStats {
    pub fn total(&self) -> usize {
        self.beta_reductions
            + self.generators_flattened
            + self.ifs_split
            + self.exists_unnested
            + self.filters_pushed
            + self.simplifications
    }
}

const MAX_PASSES: usize = 64;
const MAX_SIZE: usize = 100_000;

/// Normalize an expression to fixpoint. Returns the rewritten expression
/// and the rule-application statistics.
pub fn normalize(expr: &CalcExpr) -> (CalcExpr, NormalizeStats) {
    let mut stats = NormalizeStats::default();
    let mut current = expr.clone();
    for _ in 0..MAX_PASSES {
        stats.passes += 1;
        let before = stats.total();
        current = rewrite(current, &mut stats);
        if stats.total() == before || current.size() > MAX_SIZE {
            break;
        }
    }
    (current, stats)
}

/// One bottom-up pass.
fn rewrite(expr: CalcExpr, stats: &mut NormalizeStats) -> CalcExpr {
    // First rewrite children…
    let expr = match expr {
        CalcExpr::Const(_) | CalcExpr::Var(_) | CalcExpr::TableRef(_) => expr,
        CalcExpr::Record(fields) => CalcExpr::Record(
            fields
                .into_iter()
                .map(|(n, e)| (n, rewrite(e, stats)))
                .collect(),
        ),
        CalcExpr::Proj(e, f) => CalcExpr::Proj(Box::new(rewrite(*e, stats)), f),
        CalcExpr::Not(e) => CalcExpr::Not(Box::new(rewrite(*e, stats))),
        CalcExpr::Exists(e) => CalcExpr::Exists(Box::new(rewrite(*e, stats))),
        CalcExpr::BinOp(op, l, r) => CalcExpr::BinOp(
            op,
            Box::new(rewrite(*l, stats)),
            Box::new(rewrite(*r, stats)),
        ),
        CalcExpr::Merge(m, l, r) => CalcExpr::Merge(
            m,
            Box::new(rewrite(*l, stats)),
            Box::new(rewrite(*r, stats)),
        ),
        CalcExpr::If(c, t, e) => CalcExpr::If(
            Box::new(rewrite(*c, stats)),
            Box::new(rewrite(*t, stats)),
            Box::new(rewrite(*e, stats)),
        ),
        CalcExpr::Call(f, args) => {
            CalcExpr::Call(f, args.into_iter().map(|a| rewrite(a, stats)).collect())
        }
        CalcExpr::Comp(c) => {
            let head = rewrite(*c.head, stats);
            let quals = c
                .quals
                .into_iter()
                .map(|q| match q {
                    Qual::Gen(v, e) => Qual::Gen(v, rewrite(e, stats)),
                    Qual::Bind(v, e) => Qual::Bind(v, rewrite(e, stats)),
                    Qual::Pred(e) => Qual::Pred(rewrite(e, stats)),
                })
                .collect();
            CalcExpr::Comp(Comprehension {
                monoid: c.monoid,
                head: Box::new(head),
                quals,
            })
        }
    };
    // …then try the rules at this node.
    apply_node_rules(expr, stats)
}

fn apply_node_rules(expr: CalcExpr, stats: &mut NormalizeStats) -> CalcExpr {
    let expr = simplify_static(expr, stats);
    match expr {
        CalcExpr::Comp(c) => rewrite_comp(c, stats),
        other => other,
    }
}

// ------------------------------------------------------------- static rules

fn simplify_static(expr: CalcExpr, stats: &mut NormalizeStats) -> CalcExpr {
    match expr {
        // Constant folding of scalar binops.
        CalcExpr::BinOp(op, l, r) => match (&*l, &*r) {
            (CalcExpr::Const(a), CalcExpr::Const(b)) if !matches!(op, BinOp::And | BinOp::Or) => {
                match eval_binop(op, a, b) {
                    Ok(v) => {
                        stats.simplifications += 1;
                        CalcExpr::Const(v)
                    }
                    Err(_) => CalcExpr::BinOp(op, l, r),
                }
            }
            // Boolean identities.
            (CalcExpr::Const(Value::Bool(true)), _) if op == BinOp::And => {
                stats.simplifications += 1;
                *r
            }
            (_, CalcExpr::Const(Value::Bool(true))) if op == BinOp::And => {
                stats.simplifications += 1;
                *l
            }
            (CalcExpr::Const(Value::Bool(false)), _) if op == BinOp::And => {
                stats.simplifications += 1;
                CalcExpr::boolean(false)
            }
            (CalcExpr::Const(Value::Bool(false)), _) if op == BinOp::Or => {
                stats.simplifications += 1;
                *r
            }
            (_, CalcExpr::Const(Value::Bool(false))) if op == BinOp::Or => {
                stats.simplifications += 1;
                *l
            }
            (CalcExpr::Const(Value::Bool(true)), _) if op == BinOp::Or => {
                stats.simplifications += 1;
                CalcExpr::boolean(true)
            }
            _ => CalcExpr::BinOp(op, l, r),
        },
        CalcExpr::Not(e) => match &*e {
            CalcExpr::Const(Value::Bool(b)) => {
                stats.simplifications += 1;
                CalcExpr::boolean(!*b)
            }
            CalcExpr::Not(inner) => {
                stats.simplifications += 1;
                (**inner).clone()
            }
            _ => CalcExpr::Not(e),
        },
        CalcExpr::If(c, t, e) => match &*c {
            CalcExpr::Const(Value::Bool(true)) => {
                stats.simplifications += 1;
                *t
            }
            CalcExpr::Const(Value::Bool(false)) => {
                stats.simplifications += 1;
                *e
            }
            _ => CalcExpr::If(c, t, e),
        },
        // Projection of a record constructor.
        CalcExpr::Proj(e, field) => match &*e {
            CalcExpr::Record(fields) => match fields.iter().find(|(n, _)| *n == field) {
                Some((_, v)) => {
                    stats.simplifications += 1;
                    v.clone()
                }
                None => CalcExpr::Proj(e, field),
            },
            _ => CalcExpr::Proj(e, field),
        },
        // exists over a constant collection.
        CalcExpr::Exists(e) => match &*e {
            CalcExpr::Const(Value::List(items)) => {
                stats.simplifications += 1;
                CalcExpr::boolean(!items.is_empty())
            }
            _ => CalcExpr::Exists(e),
        },
        // Merge with a known-zero side.
        CalcExpr::Merge(m, l, r) => {
            let zero = m.zero();
            match (&*l, &*r) {
                (CalcExpr::Const(v), _) if *v == zero => {
                    stats.simplifications += 1;
                    *r
                }
                (_, CalcExpr::Const(v)) if *v == zero => {
                    stats.simplifications += 1;
                    *l
                }
                _ => CalcExpr::Merge(m, l, r),
            }
        }
        other => other,
    }
}

// -------------------------------------------------------- comprehension rules

fn rewrite_comp(c: Comprehension, stats: &mut NormalizeStats) -> CalcExpr {
    // 1. A statically false predicate annihilates the comprehension.
    if c.quals
        .iter()
        .any(|q| matches!(q, Qual::Pred(CalcExpr::Const(Value::Bool(false)))))
    {
        stats.simplifications += 1;
        return CalcExpr::Const(c.monoid.zero());
    }
    // 2. Drop statically true predicates.
    let before = c.quals.len();
    let mut quals: Vec<Qual> = c
        .quals
        .into_iter()
        .filter(|q| !matches!(q, Qual::Pred(CalcExpr::Const(Value::Bool(true)))))
        .collect();
    if quals.len() != before {
        stats.simplifications += before - quals.len();
    }
    // 3. A generator over a statically empty collection annihilates.
    if quals
        .iter()
        .any(|q| matches!(q, Qual::Gen(_, CalcExpr::Const(Value::List(items))) if items.is_empty()))
    {
        stats.simplifications += 1;
        return CalcExpr::Const(c.monoid.zero());
    }

    // 4. Beta reduction: substitute the first Bind away. Skipped when a
    //    later qualifier rebinds a free variable of the bound expression —
    //    substituting past such a binder would capture it. (The evaluator
    //    handles residual Binds natively, so skipping is always safe.)
    if let Some(pos) = quals.iter().position(|q| {
        if let Qual::Bind(_, e) = q {
            let e_free = free_vars(e);
            let later = quals.iter().skip_while(|q2| !std::ptr::eq(*q2, q)).skip(1);
            !later
                .filter_map(|q2| match q2 {
                    Qual::Gen(b, _) | Qual::Bind(b, _) => Some(b),
                    Qual::Pred(_) => None,
                })
                .any(|b| e_free.contains(b))
        } else {
            false
        }
    }) {
        let Qual::Bind(v, e) = quals.remove(pos) else {
            unreachable!()
        };
        stats.beta_reductions += 1;
        let mut head = *c.head;
        let mut shadowed = false;
        for q in quals.iter_mut().skip(pos) {
            match q {
                Qual::Gen(bv, ge) => {
                    if !shadowed {
                        *ge = substitute(ge, &v, &e);
                    }
                    if *bv == v {
                        shadowed = true;
                    }
                }
                Qual::Bind(bv, be) => {
                    if !shadowed {
                        *be = substitute(be, &v, &e);
                    }
                    if *bv == v {
                        shadowed = true;
                    }
                }
                Qual::Pred(pe) => {
                    if !shadowed {
                        *pe = substitute(pe, &v, &e);
                    }
                }
            }
        }
        if !shadowed {
            head = substitute(&head, &v, &e);
        }
        return CalcExpr::Comp(Comprehension {
            monoid: c.monoid,
            head: Box::new(head),
            quals,
        });
    }

    // 5. Generator flattening: v ← ⊗{e' | q̄'} ⇒ q̄' (α-renamed), v := e'.
    if let Some(pos) = quals.iter().position(|q| {
        matches!(q, Qual::Gen(_, CalcExpr::Comp(inner))
            if flattenable(&inner.monoid, &c.monoid))
    }) {
        let Qual::Gen(v, CalcExpr::Comp(inner)) = quals.remove(pos) else {
            unreachable!()
        };
        stats.generators_flattened += 1;
        // α-rename the inner binders so they cannot clash with outer names.
        let mut inner_quals = inner.quals;
        let mut inner_head = *inner.head;
        let binders: Vec<String> = inner_quals
            .iter()
            .filter_map(|q| match q {
                Qual::Gen(b, _) | Qual::Bind(b, _) => Some(b.clone()),
                Qual::Pred(_) => None,
            })
            .collect();
        for b in binders {
            let nb = fresh_var(&b);
            for q in inner_quals.iter_mut() {
                match q {
                    Qual::Gen(bv, e) | Qual::Bind(bv, e) => {
                        *e = substitute(e, &b, &CalcExpr::Var(nb.clone()));
                        if *bv == b {
                            *bv = nb.clone();
                        }
                    }
                    Qual::Pred(e) => {
                        *e = substitute(e, &b, &CalcExpr::Var(nb.clone()));
                    }
                }
            }
            inner_head = substitute(&inner_head, &b, &CalcExpr::Var(nb.clone()));
        }
        let mut new_quals = Vec::with_capacity(quals.len() + inner_quals.len() + 1);
        new_quals.extend_from_slice(&quals[..pos]);
        new_quals.extend(inner_quals);
        new_quals.push(Qual::Bind(v, inner_head));
        new_quals.extend_from_slice(&quals[pos..]);
        return CalcExpr::Comp(Comprehension {
            monoid: c.monoid,
            head: c.head,
            quals: new_quals,
        });
    }

    // 6. Existential unnesting (idempotent targets only — multiplicity
    //    introduced by the inlined generators must not be observable).
    if c.monoid.idempotent() {
        if let Some(pos) = quals.iter().position(|q| {
            matches!(q, Qual::Pred(CalcExpr::Exists(inner))
                if matches!(&**inner, CalcExpr::Comp(ic) if ic.monoid.is_collection()))
        }) {
            let Qual::Pred(CalcExpr::Exists(inner)) = quals.remove(pos) else {
                unreachable!()
            };
            let CalcExpr::Comp(ic) = *inner else {
                unreachable!()
            };
            stats.exists_unnested += 1;
            let mut new_quals = Vec::with_capacity(quals.len() + ic.quals.len());
            new_quals.extend_from_slice(&quals[..pos]);
            new_quals.extend(ic.quals);
            new_quals.extend_from_slice(&quals[pos..]);
            return CalcExpr::Comp(Comprehension {
                monoid: c.monoid,
                head: c.head,
                quals: new_quals,
            });
        }
    }

    // 7. If-splitting of the head.
    if let CalcExpr::If(cond, then_e, else_e) = &*c.head {
        // Only when the comprehension still iterates something — otherwise
        // simplification handles it — and the merge is well-defined.
        stats.ifs_split += 1;
        let mut then_quals = quals.clone();
        then_quals.push(Qual::Pred((**cond).clone()));
        let mut else_quals = quals.clone();
        else_quals.push(Qual::Pred(CalcExpr::Not(cond.clone())));
        return CalcExpr::Merge(
            c.monoid.clone(),
            Box::new(CalcExpr::Comp(Comprehension {
                monoid: c.monoid.clone(),
                head: then_e.clone(),
                quals: then_quals,
            })),
            Box::new(CalcExpr::Comp(Comprehension {
                monoid: c.monoid.clone(),
                head: else_e.clone(),
                quals: else_quals,
            })),
        );
    }

    // 8. Filter pushdown: place each predicate right after the last binder
    //    of its free variables (never reordering across binders it needs).
    let pushed = push_filters(&mut quals);
    if pushed > 0 {
        stats.filters_pushed += pushed;
    }

    CalcExpr::Comp(Comprehension {
        monoid: c.monoid,
        head: c.head,
        quals,
    })
}

/// Inner collection monoids that may be flattened into an outer
/// comprehension: Bag/List always preserve multiplicity and element order of
/// visits; Set only when the outer monoid is idempotent (it cannot observe
/// the lost dedup).
fn flattenable(inner: &MonoidKind, outer: &MonoidKind) -> bool {
    match inner {
        MonoidKind::Bag | MonoidKind::List => true,
        MonoidKind::Set => outer.idempotent(),
        _ => false,
    }
}

/// Stable predicate pushdown. Returns how many predicates moved.
fn push_filters(quals: &mut [Qual]) -> usize {
    let mut moved = 0;
    // Repeatedly move any Pred one slot left when it does not depend on the
    // binder immediately before it (bubble toward its dependencies).
    loop {
        let mut changed = false;
        for i in 1..quals.len() {
            let can_swap = match (&quals[i], &quals[i - 1]) {
                (Qual::Pred(p), Qual::Gen(v, _)) | (Qual::Pred(p), Qual::Bind(v, _)) => {
                    !free_vars(p).contains(v)
                }
                // Don't reorder predicates among themselves.
                _ => false,
            };
            if can_swap {
                quals.swap(i, i - 1);
                moved += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::eval::{eval, EvalCtx};
    use cleanm_values::Value;

    fn nums(ns: &[i64]) -> Value {
        Value::list(ns.iter().map(|&n| Value::Int(n)))
    }

    fn sum_comp(quals: Vec<Qual>, head: CalcExpr) -> CalcExpr {
        CalcExpr::comp(MonoidKind::Sum, head, quals)
    }

    #[test]
    fn beta_reduction_removes_binds() {
        // sum{ y | x <- t, y := x + 1 }  ⇒  sum{ x + 1 | x <- t }
        let e = sum_comp(
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("t".into())),
                Qual::Bind(
                    "y".into(),
                    CalcExpr::bin(BinOp::Add, CalcExpr::var("x"), CalcExpr::int(1)),
                ),
            ],
            CalcExpr::var("y"),
        );
        let (n, stats) = normalize(&e);
        assert!(stats.beta_reductions >= 1);
        match &n {
            CalcExpr::Comp(c) => {
                assert_eq!(c.quals.len(), 1);
                assert_eq!(
                    *c.head,
                    CalcExpr::bin(BinOp::Add, CalcExpr::var("x"), CalcExpr::int(1))
                );
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn generator_flattening_unnests() {
        // sum{ y | y <- bag{ x*2 | x <- t } } ⇒ sum{ x*2 | x <- t }
        let inner = CalcExpr::comp(
            MonoidKind::Bag,
            CalcExpr::bin(BinOp::Mul, CalcExpr::var("x"), CalcExpr::int(2)),
            vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
        );
        let e = sum_comp(vec![Qual::Gen("y".into(), inner)], CalcExpr::var("y"));
        let (n, stats) = normalize(&e);
        assert!(stats.generators_flattened >= 1);
        assert!(stats.beta_reductions >= 1);
        // Result is a single flat comprehension.
        match &n {
            CalcExpr::Comp(c) => {
                assert_eq!(c.quals.len(), 1);
                assert!(matches!(&c.quals[0], Qual::Gen(_, CalcExpr::TableRef(t)) if t == "t"));
            }
            other => panic!("{other}"),
        }
        // Semantics preserved.
        let ctx = EvalCtx::new().with_table("t", nums(&[1, 2, 3]));
        assert_eq!(
            eval(&e, &vec![], &ctx).unwrap(),
            eval(&n, &vec![], &ctx).unwrap()
        );
    }

    #[test]
    fn if_split_partitions() {
        // bag{ if x < 2 then 0 else 1 | x <- t }
        let e = CalcExpr::comp(
            MonoidKind::Bag,
            CalcExpr::If(
                Box::new(CalcExpr::bin(
                    BinOp::Lt,
                    CalcExpr::var("x"),
                    CalcExpr::int(2),
                )),
                Box::new(CalcExpr::int(0)),
                Box::new(CalcExpr::int(1)),
            ),
            vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
        );
        let (n, stats) = normalize(&e);
        assert!(stats.ifs_split >= 1);
        assert!(matches!(n, CalcExpr::Merge(MonoidKind::Bag, _, _)));
        let ctx = EvalCtx::new().with_table("t", nums(&[1, 2, 3]));
        let a = eval(&e, &vec![], &ctx).unwrap();
        let b = eval(&n, &vec![], &ctx).unwrap();
        // Bag semantics: compare as multisets.
        let sort = |v: &Value| {
            let mut items = v.as_list().unwrap().to_vec();
            items.sort();
            items
        };
        assert_eq!(sort(&a), sort(&b));
    }

    #[test]
    fn exists_unnesting_for_idempotent() {
        // set{ x | x <- t, exists bag{ y | y <- u, y = x } }
        let inner = CalcExpr::comp(
            MonoidKind::Bag,
            CalcExpr::var("y"),
            vec![
                Qual::Gen("y".into(), CalcExpr::TableRef("u".into())),
                Qual::Pred(CalcExpr::bin(
                    BinOp::Eq,
                    CalcExpr::var("y"),
                    CalcExpr::var("x"),
                )),
            ],
        );
        let e = CalcExpr::comp(
            MonoidKind::Set,
            CalcExpr::var("x"),
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("t".into())),
                Qual::Pred(CalcExpr::Exists(Box::new(inner))),
            ],
        );
        let (n, stats) = normalize(&e);
        assert!(stats.exists_unnested >= 1, "{stats:?}");
        let ctx = EvalCtx::new()
            .with_table("t", nums(&[1, 2, 3, 4]))
            .with_table("u", nums(&[2, 4, 4, 6]));
        assert_eq!(
            eval(&n, &vec![], &ctx).unwrap(),
            nums(&[2, 4]),
            "normalized: {n}"
        );
        assert_eq!(eval(&e, &vec![], &ctx).unwrap(), nums(&[2, 4]));
    }

    #[test]
    fn exists_not_unnested_for_bag() {
        // Multiplicity would change for a Bag target: rule must not fire.
        let inner = CalcExpr::comp(
            MonoidKind::Bag,
            CalcExpr::var("y"),
            vec![Qual::Gen("y".into(), CalcExpr::TableRef("u".into()))],
        );
        let e = CalcExpr::comp(
            MonoidKind::Bag,
            CalcExpr::var("x"),
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("t".into())),
                Qual::Pred(CalcExpr::Exists(Box::new(inner))),
            ],
        );
        let (_, stats) = normalize(&e);
        assert_eq!(stats.exists_unnested, 0);
    }

    #[test]
    fn filter_pushdown_reorders() {
        // sum{ x+y | x <- t, y <- u, x > 1 }: the x-predicate moves before
        // the y generator.
        let e = sum_comp(
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("t".into())),
                Qual::Gen("y".into(), CalcExpr::TableRef("u".into())),
                Qual::Pred(CalcExpr::bin(
                    BinOp::Gt,
                    CalcExpr::var("x"),
                    CalcExpr::int(1),
                )),
            ],
            CalcExpr::bin(BinOp::Add, CalcExpr::var("x"), CalcExpr::var("y")),
        );
        let (n, stats) = normalize(&e);
        assert!(stats.filters_pushed >= 1);
        match &n {
            CalcExpr::Comp(c) => {
                assert!(matches!(&c.quals[0], Qual::Gen(v, _) if v == "x"));
                assert!(matches!(&c.quals[1], Qual::Pred(_)));
                assert!(matches!(&c.quals[2], Qual::Gen(v, _) if v == "y"));
            }
            other => panic!("{other}"),
        }
        let ctx = EvalCtx::new()
            .with_table("t", nums(&[1, 2]))
            .with_table("u", nums(&[10, 20]));
        assert_eq!(
            eval(&e, &vec![], &ctx).unwrap(),
            eval(&n, &vec![], &ctx).unwrap()
        );
    }

    #[test]
    fn static_simplifications() {
        // if true then a else b ⇒ a; 1 + 2 ⇒ 3; pred false annihilates.
        let e = CalcExpr::If(
            Box::new(CalcExpr::boolean(true)),
            Box::new(CalcExpr::bin(
                BinOp::Add,
                CalcExpr::int(1),
                CalcExpr::int(2),
            )),
            Box::new(CalcExpr::int(0)),
        );
        let (n, _) = normalize(&e);
        assert_eq!(n, CalcExpr::int(3));

        let dead = sum_comp(
            vec![
                Qual::Gen("x".into(), CalcExpr::TableRef("t".into())),
                Qual::Pred(CalcExpr::boolean(false)),
            ],
            CalcExpr::var("x"),
        );
        let (n, _) = normalize(&dead);
        assert_eq!(n, CalcExpr::Const(Value::Int(0)));

        let empty_gen = sum_comp(
            vec![Qual::Gen("x".into(), CalcExpr::Const(Value::list([])))],
            CalcExpr::var("x"),
        );
        let (n, _) = normalize(&empty_gen);
        assert_eq!(n, CalcExpr::Const(Value::Int(0)));
    }

    #[test]
    fn projection_of_record_folds() {
        let e = CalcExpr::proj(
            CalcExpr::record(vec![("a", CalcExpr::int(1)), ("b", CalcExpr::var("z"))]),
            "b",
        );
        let (n, _) = normalize(&e);
        assert_eq!(n, CalcExpr::var("z"));
    }

    #[test]
    fn normalization_is_idempotent() {
        let inner = CalcExpr::comp(
            MonoidKind::Bag,
            CalcExpr::bin(BinOp::Mul, CalcExpr::var("x"), CalcExpr::int(2)),
            vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
        );
        let e = sum_comp(
            vec![
                Qual::Gen("y".into(), inner),
                Qual::Pred(CalcExpr::bin(
                    BinOp::Gt,
                    CalcExpr::var("y"),
                    CalcExpr::int(0),
                )),
            ],
            CalcExpr::var("y"),
        );
        let (n1, _) = normalize(&e);
        let (n2, stats2) = normalize(&n1);
        assert_eq!(n1, n2);
        assert_eq!(stats2.total(), 0, "{stats2:?}");
    }
}
