//! Compilation of calculus expressions to flat, slot-resolved programs.
//!
//! The reference evaluator ([`super::eval()`]) re-interprets the `CalcExpr`
//! tree for every row: each variable reference scans the string-keyed
//! environment, each struct access scans field names, and every node costs
//! a recursive call. This module is the paper's third-level code-generation
//! idea (§6: cleaning queries should run at hand-written-loop speed) in
//! ahead-of-time form: [`Program::compile`] lowers an expression against a known
//! *scope* (the ordered variable names of the row environment, which the
//! physical planner knows statically per plan node) into a [`Program`] — a
//! flat instruction sequence over a value stack in which
//!
//! * variables are numeric environment **slots** resolved once at compile
//!   time,
//! * constant subtrees are **pre-evaluated** (including pure builtin calls),
//! * table references and blocker calls are **pre-bound** to their runtime
//!   objects, so no string-keyed map lookup happens per row, and
//! * struct field accesses carry a self-tuning positional **hint**: after
//!   the first row, the field index is a direct load verified by a single
//!   name check.
//!
//! Programs are evaluated by a non-recursive loop over a reusable scratch
//! stack ([`Program::eval_with`]), with a batch entry point
//! ([`Program::eval_batch`]) that amortizes the scratch across a whole
//! partition. Comprehensions and explicit merges nested inside an
//! expression fall back to the tree-walking interpreter via an
//! [`Instr::Interp`] island — the reference semantics stay the single
//! source of truth, and the differential property tests pin
//! compiled ≡ interpreted.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use cleanm_cluster::Blocker;
use cleanm_values::{Error, Result, Value};

use super::eval::{eval, eval_binop, eval_func, truthy, Env, EvalCtx};
use super::expr::{BinOp, CalcExpr, Func};

/// One instruction of a compiled program. The machine is a value stack:
/// every instruction pops a fixed number of operands and pushes at most one
/// result, except the jump family which steers control flow for
/// short-circuit `and`/`or` and `if`.
pub enum Instr {
    /// Push a (pre-evaluated) constant.
    Const(Value),
    /// Push the value bound at environment slot `n`.
    Slot(u16),
    /// Push `field` of the struct at slot `slot` (fused `Var`+`Proj`, the
    /// single most common shape in cleaning predicates: `c.column`).
    SlotField {
        slot: u16,
        field: Arc<str>,
        hint: AtomicU32,
    },
    /// Pop a struct, push its `field`.
    Proj { field: Arc<str>, hint: AtomicU32 },
    /// Pop `names.len()` values (pushed in field order), push a struct.
    Record(Arc<[Arc<str>]>),
    /// Build a struct straight from addressable operands — the desugared
    /// shape of every FD / DEDUP grouping key (`tuple_key`: a record of
    /// column projections) collapses to this single instruction.
    RecordFused {
        names: Arc<[Arc<str>]>,
        ops: Box<[Operand]>,
    },
    /// Pop `r` then `l`, push `l op r` (non-short-circuit operators only).
    Bin(BinOp),
    /// Fused three-address `lhs op rhs` over directly addressable operands
    /// — no stack traffic and no value clones. This is the dominant shape
    /// of cleaning predicates (`c.col < const`, `t1.col ≤ t2.col`).
    BinFused {
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Pop, push `Bool(!truthy)`.
    Not,
    /// Pop, push `Bool(truthy)`.
    Truthy,
    /// Pop a list, push `Bool(non-empty)`.
    Exists,
    /// Push the result of a fused predicate tree: comparisons over
    /// addressable operands combined with `and` / `or` / `not`, evaluated
    /// by native short-circuit without touching the value stack. A whole
    /// denial-constraint predicate collapses to one of these.
    Pred(BoolExpr),
    /// Guarded projection: evaluate `cond` natively and resolve only the
    /// taken branch — the fused form of `if c then t else e` with a
    /// predicate-tree condition and addressable branches. A Select chain
    /// fused into a scalar Reduce compiles to a single one of these per
    /// row (`if pred then head else null`, `null` being the monoid's
    /// fold identity).
    IfFused {
        cond: BoolExpr,
        then: Operand,
        els: Operand,
    },
    /// Pop; if truthiness equals `when`, push `Bool(when)` and jump to
    /// `target` — the short-circuit of `and` (`when: false`) / `or`
    /// (`when: true`).
    ShortCircuit { when: bool, target: usize },
    /// Pop; jump to `target` when not truthy (no push) — `if` dispatch.
    JumpIfFalse(usize),
    /// Unconditional jump.
    Jump(usize),
    /// Pop `argc` arguments (in call order), push the builtin's result.
    Call { func: Func, argc: usize },
    /// Single-argument builtin over an addressable operand — the dominant
    /// transform shape (`lower(c.name)`, `prefix(c.phone)`): the argument
    /// is resolved by reference and borrowed straight into the builtin,
    /// no stack traffic and no argument clone.
    CallFused { func: Func, arg: Operand },
    /// Pop the term, push the pre-bound blocker's keys as a string list.
    BlockKeys(Arc<dyn Blocker>),
    /// Interpreter island: evaluate `expr` with the reference evaluator
    /// over an environment rebuilt from the slots (comprehensions and
    /// explicit monoid merges — the documented fallback).
    Interp(Arc<CalcExpr>),
}

/// A directly addressable operand of a fused instruction: resolved by
/// reference (or, for nested arithmetic, by value) without passing through
/// the value stack.
pub enum Operand {
    Const(Value),
    Slot(u16),
    SlotField {
        slot: u16,
        field: Arc<str>,
        hint: AtomicU32,
    },
    /// Nested arithmetic over operands (`c.acctbal * 1.5`), evaluated in
    /// the interpreter's operand order.
    Bin {
        op: BinOp,
        l: Box<Operand>,
        r: Box<Operand>,
    },
}

/// Resolve an operand that may contain nested arithmetic. Addressable
/// leaves stay borrowed; only computed results are owned.
fn operand_val<'v>(op: &'v Operand, slots: &Slots<'v>) -> Result<std::borrow::Cow<'v, Value>> {
    use std::borrow::Cow;
    match op {
        Operand::Bin { op, l, r } => {
            let lv = operand_val(l, slots)?;
            let rv = operand_val(r, slots)?;
            eval_binop(*op, &lv, &rv).map(Cow::Owned)
        }
        addressable => operand_ref(addressable, slots).map(Cow::Borrowed),
    }
}

/// Apply `op` to two operands, taking the all-reference fast path when
/// neither side computes.
#[inline]
fn fused_binop(op: BinOp, lhs: &Operand, rhs: &Operand, slots: &Slots<'_>) -> Result<Value> {
    if matches!(lhs, Operand::Bin { .. }) || matches!(rhs, Operand::Bin { .. }) {
        let l = operand_val(lhs, slots)?;
        let r = operand_val(rhs, slots)?;
        eval_binop(op, &l, &r)
    } else {
        eval_binop(op, operand_ref(lhs, slots)?, operand_ref(rhs, slots)?)
    }
}

/// A fused boolean tree over addressable operands. Evaluation short-circuits
/// exactly like the interpreter — `and` / `or` do not evaluate (and so do
/// not raise errors from) a right side the left side decides — but returns
/// a bare `bool` with no value-stack traffic. `and` / `or` chains are
/// flattened into contiguous [`BoolExpr::AllOf`] / [`BoolExpr::AnyOf`]
/// lists at compile time: a denial-constraint conjunction (or a fused
/// Select chain) evaluates as one tight loop over a slice instead of a
/// recursive descent through boxed nodes.
pub enum BoolExpr {
    Cmp {
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    Not(Box<BoolExpr>),
    /// Conjunction list in evaluation order (left-to-right short-circuit).
    AllOf(Box<[BoolExpr]>),
    /// Disjunction list in evaluation order (left-to-right short-circuit).
    AnyOf(Box<[BoolExpr]>),
    /// Conjunction whose atoms are all plain comparisons — the flattened
    /// fast form of a fused Select chain or a denial-constraint
    /// conjunction: one tight loop over contiguous triples, no per-atom
    /// enum dispatch.
    AllCmp(Box<[(BinOp, Operand, Operand)]>),
}

fn eval_bool(e: &BoolExpr, slots: &Slots<'_>) -> Result<bool> {
    // Comparison leaves inside a flattened chain evaluate inline — no
    // recursive call per atom.
    #[inline(always)]
    fn leaf(e: &BoolExpr, slots: &Slots<'_>) -> Result<bool> {
        match e {
            BoolExpr::Cmp { op, lhs, rhs } => Ok(truthy(&fused_binop(*op, lhs, rhs, slots)?)),
            other => eval_bool(other, slots),
        }
    }
    match e {
        BoolExpr::Cmp { op, lhs, rhs } => Ok(truthy(&fused_binop(*op, lhs, rhs, slots)?)),
        BoolExpr::Not(inner) => Ok(!eval_bool(inner, slots)?),
        BoolExpr::AllOf(xs) => {
            for x in xs.iter() {
                if !leaf(x, slots)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        BoolExpr::AnyOf(xs) => {
            for x in xs.iter() {
                if leaf(x, slots)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        BoolExpr::AllCmp(cmps) => {
            for (op, lhs, rhs) in cmps.iter() {
                if !truthy(&fused_binop(*op, lhs, rhs, slots)?) {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

/// `Value::Null` with a `'static` borrow, for null-propagating projections
/// resolved by reference.
static NULL_VALUE: Value = Value::Null;

/// Build a fused record: resolve every operand by reference first, then
/// construct the struct in a single exact-size allocation (the zip/map is
/// `TrustedLen`). Field names are shared `Arc<str>`s — no per-row name
/// interning, unlike the interpreter's `Value::record`.
fn build_record(names: &Arc<[Arc<str>]>, ops: &[Operand], slots: &Slots<'_>) -> Result<Value> {
    const MAX_INLINE: usize = 16;
    if ops.len() <= MAX_INLINE {
        let mut refs: [&Value; MAX_INLINE] = [&NULL_VALUE; MAX_INLINE];
        for (slot, o) in refs.iter_mut().zip(ops.iter()) {
            *slot = operand_ref(o, slots)?;
        }
        let fields: Arc<[(Arc<str>, Value)]> = names
            .iter()
            .zip(&refs[..ops.len()])
            .map(|(n, v)| (Arc::clone(n), (*v).clone()))
            .collect();
        Ok(Value::Struct(fields))
    } else {
        let mut fields = Vec::with_capacity(ops.len());
        for (n, o) in names.iter().zip(ops.iter()) {
            fields.push((Arc::clone(n), operand_ref(o, slots)?.clone()));
        }
        Ok(Value::Struct(Arc::from(fields)))
    }
}

#[inline(always)]
fn operand_ref<'v>(op: &'v Operand, slots: &Slots<'v>) -> Result<&'v Value> {
    match op {
        Operand::Const(v) => Ok(v),
        Operand::Slot(i) => Ok(slots.get(*i as usize)),
        Operand::SlotField { slot, field, hint } => {
            project_ref(slots.get(*slot as usize), field, hint)
        }
        Operand::Bin { .. } => Err(Error::Invalid(
            "computed operand in an addressable-only position".to_string(),
        )),
    }
}

/// A compiled, slot-resolved expression program.
///
/// A program is immutable and `Sync`: the projection hints are relaxed
/// atomics, so one program compiled per plan node is shared by every worker
/// evaluating that node's partitions.
pub struct Program {
    instrs: Vec<Instr>,
    /// The slot names the program was compiled against, in slot order.
    scope: Vec<String>,
    /// Static bound on the evaluation stack depth.
    max_stack: usize,
}

/// The two row shapes programs evaluate against: one environment slice, or
/// a (left, right) pair of slices addressed as one concatenated scope —
/// which lets theta-join predicates run without materializing a merged
/// environment per candidate pair.
#[derive(Clone, Copy)]
enum Slots<'a> {
    Env(&'a [(String, Value)]),
    Pair(&'a [(String, Value)], &'a [(String, Value)]),
}

impl<'a> Slots<'a> {
    #[inline]
    fn get(&self, i: usize) -> &'a Value {
        match self {
            Slots::Env(env) => &env[i].1,
            Slots::Pair(l, r) => {
                if i < l.len() {
                    &l[i].1
                } else {
                    &r[i - l.len()].1
                }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Slots::Env(env) => env.len(),
            Slots::Pair(l, r) => l.len() + r.len(),
        }
    }

    /// Rebuild a name→value environment for an interpreter island.
    fn rebuild_env(&self) -> Env {
        match self {
            Slots::Env(env) => env.to_vec(),
            Slots::Pair(l, r) => {
                let mut env = l.to_vec();
                env.extend(r.iter().cloned());
                env
            }
        }
    }
}

impl Program {
    /// Compile `expr` against the ordered slot names `scope`. Fails when a
    /// variable is not in scope or a table reference is unknown — callers
    /// fall back to the interpreter in that case.
    pub fn compile(expr: &CalcExpr, scope: &[String], ctx: &EvalCtx) -> Result<Program> {
        let mut c = Compiler {
            instrs: Vec::new(),
            scope,
            ctx,
            depth: 0,
            max_depth: 0,
        };
        c.emit(expr)?;
        debug_assert_eq!(c.depth, 1, "program must leave exactly one result");
        Ok(Program {
            instrs: c.instrs,
            scope: scope.to_vec(),
            max_stack: c.max_depth,
        })
    }

    /// Number of environment slots the program expects.
    pub fn scope_len(&self) -> usize {
        self.scope.len()
    }

    /// The slot names the program was compiled against.
    pub fn scope(&self) -> &[String] {
        &self.scope
    }

    /// Number of instructions (tests / explain output).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction sequence — read by the columnar kernel compiler
    /// ([`crate::physical::kernel`]) to recognize vectorizable program
    /// shapes (a single fused predicate tree, a fused record build, a
    /// builtin-per-field projection).
    pub(crate) fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Evaluate against one row environment, reusing `scratch` as the value
    /// stack. The environment must have the compiled scope's layout.
    pub fn eval_with(
        &self,
        env: &[(String, Value)],
        ctx: &EvalCtx,
        scratch: &mut Vec<Value>,
    ) -> Result<Value> {
        self.run(Slots::Env(env), ctx, scratch)
    }

    /// Evaluate against a concatenated (left, right) environment pair
    /// without materializing the merged environment.
    pub fn eval_pair(
        &self,
        left: &[(String, Value)],
        right: &[(String, Value)],
        ctx: &EvalCtx,
        scratch: &mut Vec<Value>,
    ) -> Result<Value> {
        self.run(Slots::Pair(left, right), ctx, scratch)
    }

    /// Convenience single-shot evaluation (tests; hot paths use
    /// [`Program::eval_with`] / [`Program::eval_batch`]).
    pub fn eval(&self, env: &Env, ctx: &EvalCtx) -> Result<Value> {
        let mut scratch = Vec::with_capacity(self.max_stack);
        self.eval_with(env, ctx, &mut scratch)
    }

    /// Batch entry point: evaluate every row of a partition with one shared
    /// scratch stack — no per-row environment `Vec`s, name lookups, or
    /// `String` clones in the loop.
    pub fn eval_batch(&self, rows: &[Env], ctx: &EvalCtx) -> Result<Vec<Value>> {
        let mut scratch = Vec::with_capacity(self.max_stack);
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            out.push(self.eval_with(row, ctx, &mut scratch)?);
        }
        Ok(out)
    }

    fn run(&self, slots: Slots<'_>, ctx: &EvalCtx, stack: &mut Vec<Value>) -> Result<Value> {
        if slots.len() != self.scope.len() {
            return Err(Error::Invalid(format!(
                "program compiled for {} slots, row has {}",
                self.scope.len(),
                slots.len()
            )));
        }
        // Fully fused programs — one predicate tree, one record build, one
        // three-address op — bypass the stack machine entirely. These are
        // the common shapes of filter predicates and grouping keys.
        if let [single] = self.instrs.as_slice() {
            match single {
                Instr::Pred(p) => return Ok(Value::Bool(eval_bool(p, &slots)?)),
                Instr::BinFused { op, lhs, rhs } => return fused_binop(*op, lhs, rhs, &slots),
                Instr::IfFused { cond, then, els } => {
                    let branch = if eval_bool(cond, &slots)? { then } else { els };
                    return operand_val(branch, &slots).map(std::borrow::Cow::into_owned);
                }
                Instr::CallFused { func, arg } => {
                    let v = operand_val(arg, &slots)?;
                    return eval_func(func, std::slice::from_ref(v.as_ref()), ctx);
                }
                Instr::Const(v) => return Ok(v.clone()),
                Instr::Slot(i) => return Ok(slots.get(*i as usize).clone()),
                Instr::SlotField { slot, field, hint } => {
                    return project_ref(slots.get(*slot as usize), field, hint).cloned()
                }
                Instr::RecordFused { names, ops } => return build_record(names, ops, &slots),
                _ => {}
            }
        }
        stack.clear();
        stack.reserve(self.max_stack);
        let mut pc = 0usize;
        while pc < self.instrs.len() {
            match &self.instrs[pc] {
                Instr::Const(v) => stack.push(v.clone()),
                Instr::Slot(i) => stack.push(slots.get(*i as usize).clone()),
                Instr::SlotField { slot, field, hint } => {
                    stack.push(project_ref(slots.get(*slot as usize), field, hint)?.clone());
                }
                Instr::Proj { field, hint } => {
                    let v = stack.pop().expect("proj operand");
                    let f = project_ref(&v, field, hint)?.clone();
                    stack.push(f);
                }
                Instr::Record(names) => {
                    // Drain in place: no intermediate argument vector, and
                    // the field names are shared `Arc<str>`s — unlike the
                    // interpreter, which re-interns every name per row.
                    let at = stack.len() - names.len();
                    let fields: Arc<[(Arc<str>, Value)]> =
                        names.iter().cloned().zip(stack.drain(at..)).collect();
                    stack.push(Value::Struct(fields));
                }
                Instr::RecordFused { names, ops } => {
                    stack.push(build_record(names, ops, &slots)?);
                }
                Instr::Bin(op) => {
                    let r = stack.pop().expect("binop rhs");
                    let l = stack.pop().expect("binop lhs");
                    stack.push(eval_binop(*op, &l, &r)?);
                }
                Instr::BinFused { op, lhs, rhs } => {
                    stack.push(fused_binop(*op, lhs, rhs, &slots)?);
                }
                Instr::Not => {
                    let v = stack.pop().expect("not operand");
                    stack.push(Value::Bool(!truthy(&v)));
                }
                Instr::Truthy => {
                    let v = stack.pop().expect("truthy operand");
                    stack.push(Value::Bool(truthy(&v)));
                }
                Instr::Exists => {
                    let v = stack.pop().expect("exists operand");
                    stack.push(Value::Bool(!v.as_list()?.is_empty()));
                }
                Instr::Pred(p) => {
                    stack.push(Value::Bool(eval_bool(p, &slots)?));
                }
                Instr::IfFused { cond, then, els } => {
                    let branch = if eval_bool(cond, &slots)? { then } else { els };
                    stack.push(operand_val(branch, &slots)?.into_owned());
                }
                Instr::ShortCircuit { when, target } => {
                    let v = stack.pop().expect("short-circuit operand");
                    if truthy(&v) == *when {
                        stack.push(Value::Bool(*when));
                        pc = *target;
                        continue;
                    }
                }
                Instr::JumpIfFalse(target) => {
                    let v = stack.pop().expect("jump condition");
                    if !truthy(&v) {
                        pc = *target;
                        continue;
                    }
                }
                Instr::Jump(target) => {
                    pc = *target;
                    continue;
                }
                Instr::Call { func, argc } => {
                    // Arguments are borrowed off the top of the stack — no
                    // per-call argument vector.
                    let at = stack.len() - argc;
                    let v = eval_func(func, &stack[at..], ctx)?;
                    stack.truncate(at);
                    stack.push(v);
                }
                Instr::CallFused { func, arg } => {
                    let v = operand_val(arg, &slots)?;
                    stack.push(eval_func(func, std::slice::from_ref(v.as_ref()), ctx)?);
                }
                Instr::BlockKeys(blocker) => {
                    let term = stack.pop().expect("block_keys term");
                    let keys = match &term {
                        Value::Str(s) => blocker.keys(s),
                        other => blocker.keys(&other.to_text()),
                    };
                    stack.push(Value::list(keys.into_iter().map(Value::from)));
                }
                Instr::Interp(expr) => {
                    let env = slots.rebuild_env();
                    stack.push(eval(expr, &env, ctx)?);
                }
            }
            pc += 1;
        }
        Ok(stack.pop().expect("program result"))
    }
}

/// Struct field load by reference, with a self-tuning positional hint:
/// rows of a partition share a schema, so after the first row the access
/// is a direct index plus one name equality check.
#[inline]
fn project_ref<'v>(base: &'v Value, field: &str, hint: &AtomicU32) -> Result<&'v Value> {
    if base.is_null() {
        return Ok(&NULL_VALUE);
    }
    let fields = base.as_struct()?;
    let h = hint.load(Ordering::Relaxed) as usize;
    if let Some((n, v)) = fields.get(h) {
        if n.as_ref() == field {
            return Ok(v);
        }
    }
    let idx = fields
        .iter()
        .position(|(n, _)| n.as_ref() == field)
        .ok_or_else(|| Error::UnknownField(field.to_string()))?;
    hint.store(idx as u32, Ordering::Relaxed);
    Ok(&fields[idx].1)
}

struct Compiler<'a> {
    instrs: Vec<Instr>,
    scope: &'a [String],
    ctx: &'a EvalCtx,
    depth: usize,
    max_depth: usize,
}

impl Compiler<'_> {
    fn push_instr(&mut self, i: Instr, stack_delta: isize) {
        self.instrs.push(i);
        self.depth = self.depth.checked_add_signed(stack_delta).expect("stack");
        self.max_depth = self.max_depth.max(self.depth);
    }

    /// Lower `e` to a directly addressable operand, if it is one
    /// (constant, variable, or `var.field` projection).
    fn try_operand(&self, e: &CalcExpr) -> Result<Option<Operand>> {
        Ok(match e {
            CalcExpr::Const(v) => Some(Operand::Const(v.clone())),
            CalcExpr::Var(n) => Some(Operand::Slot(self.slot_of(n)?)),
            CalcExpr::Proj(inner, field) => match &**inner {
                CalcExpr::Var(n) => Some(Operand::SlotField {
                    slot: self.slot_of(n)?,
                    field: Arc::from(field.as_str()),
                    hint: AtomicU32::new(0),
                }),
                _ => None,
            },
            _ => None,
        })
    }

    /// Lower `e` to an operand allowing nested arithmetic over addressable
    /// leaves (`c.acctbal * 1.5`).
    fn try_operand_deep(&self, e: &CalcExpr) -> Result<Option<Operand>> {
        if let Some(op) = self.try_operand(e)? {
            return Ok(Some(op));
        }
        if let CalcExpr::BinOp(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div), l, r) = e {
            if let (Some(a), Some(b)) = (self.try_operand_deep(l)?, self.try_operand_deep(r)?) {
                return Ok(Some(Operand::Bin {
                    op: *op,
                    l: Box::new(a),
                    r: Box::new(b),
                }));
            }
        }
        Ok(None)
    }

    /// Lower `e` to a fused boolean tree, if every leaf is a comparison
    /// over (possibly arithmetic) operands and every combinator is
    /// `and`/`or`/`not`.
    fn try_bool_expr(&self, e: &CalcExpr) -> Result<Option<BoolExpr>> {
        Ok(match e {
            CalcExpr::BinOp(op, l, r) if op.is_comparison() => {
                match (self.try_operand_deep(l)?, self.try_operand_deep(r)?) {
                    (Some(lhs), Some(rhs)) => Some(BoolExpr::Cmp { op: *op, lhs, rhs }),
                    _ => None,
                }
            }
            CalcExpr::BinOp(op @ (BinOp::And | BinOp::Or), l, r) => {
                match (self.try_bool_expr(l)?, self.try_bool_expr(r)?) {
                    (Some(a), Some(b)) => {
                        // Flatten nested chains of the same connective into
                        // one contiguous list, preserving left-to-right
                        // evaluation order (and therefore short-circuit and
                        // error semantics).
                        let and = *op == BinOp::And;
                        let mut xs: Vec<BoolExpr> = Vec::new();
                        for side in [a, b] {
                            match side {
                                BoolExpr::AllOf(inner) if and => xs.extend(inner.into_vec()),
                                BoolExpr::AllCmp(inner) if and => xs.extend(
                                    inner
                                        .into_vec()
                                        .into_iter()
                                        .map(|(op, lhs, rhs)| BoolExpr::Cmp { op, lhs, rhs }),
                                ),
                                BoolExpr::AnyOf(inner) if !and => xs.extend(inner.into_vec()),
                                other => xs.push(other),
                            }
                        }
                        Some(if and {
                            // An all-comparison conjunction tightens
                            // further into the triple-list form.
                            if xs.iter().all(|x| matches!(x, BoolExpr::Cmp { .. })) {
                                BoolExpr::AllCmp(
                                    xs.into_iter()
                                        .map(|x| match x {
                                            BoolExpr::Cmp { op, lhs, rhs } => (op, lhs, rhs),
                                            _ => unreachable!("checked above"),
                                        })
                                        .collect(),
                                )
                            } else {
                                BoolExpr::AllOf(xs.into_boxed_slice())
                            }
                        } else {
                            BoolExpr::AnyOf(xs.into_boxed_slice())
                        })
                    }
                    _ => None,
                }
            }
            CalcExpr::Not(inner) => self
                .try_bool_expr(inner)?
                .map(|b| BoolExpr::Not(Box::new(b))),
            _ => None,
        })
    }

    fn slot_of(&self, name: &str) -> Result<u16> {
        // Innermost binding wins, matching the interpreter's reverse scan.
        self.scope
            .iter()
            .rposition(|n| n == name)
            .map(|i| i as u16)
            .ok_or_else(|| Error::Invalid(format!("unbound variable `{name}`")))
    }

    /// Is the subtree a compile-time constant with row-independent, pure
    /// semantics? Similarity calls are excluded — they tick the comparison
    /// counter per evaluation, which folding would lose — as are blockers
    /// and table references (pre-bound separately).
    fn is_pure_const(e: &CalcExpr) -> bool {
        !e.any_node(&mut |n| {
            matches!(
                n,
                CalcExpr::Var(_)
                    | CalcExpr::TableRef(_)
                    | CalcExpr::Call(
                        Func::Similar(..) | Func::Similarity(..) | Func::BlockKeys(..),
                        _
                    )
            )
        })
    }

    fn emit(&mut self, e: &CalcExpr) -> Result<()> {
        // Constant pre-evaluation: fold any pure constant subtree now. If
        // constant evaluation fails (a type error the interpreter would
        // also raise per row), emit the unfolded code so the runtime error
        // is identical.
        if !matches!(e, CalcExpr::Const(_)) && Self::is_pure_const(e) {
            if let Ok(v) = eval(e, &Vec::new(), self.ctx) {
                self.push_instr(Instr::Const(v), 1);
                return Ok(());
            }
        }
        match e {
            CalcExpr::Const(v) => self.push_instr(Instr::Const(v.clone()), 1),
            CalcExpr::Var(n) => {
                let slot = self.slot_of(n)?;
                self.push_instr(Instr::Slot(slot), 1);
            }
            CalcExpr::TableRef(t) => {
                let rows = self
                    .ctx
                    .table(t)
                    .ok_or_else(|| Error::Invalid(format!("unknown table `{t}`")))?
                    .clone();
                self.push_instr(Instr::Const(rows), 1);
            }
            CalcExpr::Record(fields) => {
                let names: Arc<[Arc<str>]> =
                    fields.iter().map(|(n, _)| Arc::from(n.as_str())).collect();
                // A record of addressable operands (the `tuple_key` shape
                // of grouping keys) fuses into one instruction.
                let mut ops = Vec::with_capacity(fields.len());
                for (_, fe) in fields {
                    match self.try_operand(fe)? {
                        Some(op) => ops.push(op),
                        None => {
                            ops.clear();
                            break;
                        }
                    }
                }
                if !fields.is_empty() && ops.len() == fields.len() {
                    self.push_instr(
                        Instr::RecordFused {
                            names,
                            ops: ops.into_boxed_slice(),
                        },
                        1,
                    );
                    return Ok(());
                }
                for (_, fe) in fields {
                    self.emit(fe)?;
                }
                let delta = 1 - fields.len() as isize;
                self.push_instr(Instr::Record(names), delta);
            }
            CalcExpr::Proj(inner, field) => {
                if let CalcExpr::Var(n) = &**inner {
                    let slot = self.slot_of(n)?;
                    self.push_instr(
                        Instr::SlotField {
                            slot,
                            field: Arc::from(field.as_str()),
                            hint: AtomicU32::new(0),
                        },
                        1,
                    );
                } else {
                    self.emit(inner)?;
                    self.push_instr(
                        Instr::Proj {
                            field: Arc::from(field.as_str()),
                            hint: AtomicU32::new(0),
                        },
                        0,
                    );
                }
            }
            CalcExpr::BinOp(op @ (BinOp::And | BinOp::Or), l, r) => {
                // A fully comparison-shaped boolean tree fuses into one
                // natively short-circuiting instruction.
                if let Some(pred) = self.try_bool_expr(e)? {
                    self.push_instr(Instr::Pred(pred), 1);
                    return Ok(());
                }
                self.emit(l)?;
                let patch = self.instrs.len();
                self.push_instr(
                    Instr::ShortCircuit {
                        when: *op == BinOp::Or,
                        target: 0, // patched below
                    },
                    -1,
                );
                self.emit(r)?;
                self.push_instr(Instr::Truthy, 0);
                let end = self.instrs.len();
                if let Instr::ShortCircuit { target, .. } = &mut self.instrs[patch] {
                    *target = end;
                }
            }
            CalcExpr::BinOp(op, l, r) => {
                // Fuse `operand op operand` into a single three-address
                // instruction (no stack traffic, operands by reference,
                // nested arithmetic allowed).
                if let (Some(lhs), Some(rhs)) =
                    (self.try_operand_deep(l)?, self.try_operand_deep(r)?)
                {
                    self.push_instr(Instr::BinFused { op: *op, lhs, rhs }, 1);
                    return Ok(());
                }
                self.emit(l)?;
                self.emit(r)?;
                self.push_instr(Instr::Bin(*op), -1);
            }
            CalcExpr::Not(inner) => {
                if let Some(pred) = self.try_bool_expr(e)? {
                    self.push_instr(Instr::Pred(pred), 1);
                    return Ok(());
                }
                self.emit(inner)?;
                self.push_instr(Instr::Not, 0);
            }
            CalcExpr::If(c, t, els) => {
                // A predicate-tree condition with addressable branches
                // fuses into one guarded-projection instruction: only the
                // taken branch is resolved, matching the interpreter.
                if let Some(cond) = self.try_bool_expr(c)? {
                    if let (Some(then_op), Some(else_op)) =
                        (self.try_operand_deep(t)?, self.try_operand_deep(els)?)
                    {
                        self.push_instr(
                            Instr::IfFused {
                                cond,
                                then: then_op,
                                els: else_op,
                            },
                            1,
                        );
                        return Ok(());
                    }
                }
                self.emit(c)?;
                let cond_patch = self.instrs.len();
                self.push_instr(Instr::JumpIfFalse(0), -1);
                let base_depth = self.depth;
                self.emit(t)?;
                let then_patch = self.instrs.len();
                self.push_instr(Instr::Jump(0), 0);
                let else_start = self.instrs.len();
                // The else branch starts from the pre-then stack depth.
                self.depth = base_depth;
                self.emit(els)?;
                let end = self.instrs.len();
                if let Instr::JumpIfFalse(target) = &mut self.instrs[cond_patch] {
                    *target = else_start;
                }
                if let Instr::Jump(target) = &mut self.instrs[then_patch] {
                    *target = end;
                }
            }
            CalcExpr::Call(f, args) => {
                // A single addressable argument fuses call and load into
                // one instruction (blocker calls keep their pre-bound
                // instruction below).
                if let [arg] = args.as_slice() {
                    if !matches!(f, Func::BlockKeys(_)) {
                        if let Some(op) = self.try_operand_deep(arg)? {
                            self.push_instr(
                                Instr::CallFused {
                                    func: f.clone(),
                                    arg: op,
                                },
                                1,
                            );
                            return Ok(());
                        }
                    }
                }
                for a in args {
                    self.emit(a)?;
                }
                let delta = 1 - args.len() as isize;
                // Pre-bind the blocker when the context already prepared it;
                // otherwise the generic call errors at runtime exactly like
                // the interpreter.
                if let Func::BlockKeys(algo) = f {
                    if args.len() == 1 {
                        if let Some(blocker) = self.ctx.prepared_blocker(algo) {
                            self.push_instr(Instr::BlockKeys(blocker), delta);
                            return Ok(());
                        }
                    }
                }
                self.push_instr(
                    Instr::Call {
                        func: f.clone(),
                        argc: args.len(),
                    },
                    delta,
                );
            }
            CalcExpr::Exists(inner) => {
                self.emit(inner)?;
                self.push_instr(Instr::Exists, 0);
            }
            CalcExpr::Comp(_) | CalcExpr::Merge(..) => {
                // Interpreter island. Verify free variables resolve now so
                // an unbound name is a compile error, not a per-row one.
                for name in super::subst::free_vars(e) {
                    self.slot_of(&name)?;
                }
                self.push_instr(Instr::Interp(Arc::new(e.clone())), 1);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::expr::{FilterAlgo, MonoidKind, Qual};

    fn scope() -> Vec<String> {
        vec!["x".to_string(), "row".to_string()]
    }

    fn env() -> Env {
        vec![
            ("x".to_string(), Value::Int(7)),
            (
                "row".to_string(),
                Value::record([("a", Value::Int(1)), ("b", Value::str("hi"))]),
            ),
        ]
    }

    fn check(expr: &CalcExpr) {
        let ctx = EvalCtx::new();
        let prog = Program::compile(expr, &scope(), &ctx).unwrap();
        let env = env();
        assert_eq!(
            prog.eval(&env, &ctx).unwrap(),
            eval(expr, &env, &ctx).unwrap(),
            "{expr}"
        );
    }

    #[test]
    fn slots_and_fields_resolve() {
        check(&CalcExpr::var("x"));
        check(&CalcExpr::proj(CalcExpr::var("row"), "b"));
        check(&CalcExpr::bin(
            BinOp::Add,
            CalcExpr::proj(CalcExpr::var("row"), "a"),
            CalcExpr::var("x"),
        ));
    }

    #[test]
    fn constants_fold_to_one_instruction() {
        let ctx = EvalCtx::new();
        let e = CalcExpr::bin(
            BinOp::Mul,
            CalcExpr::bin(BinOp::Add, CalcExpr::int(2), CalcExpr::int(3)),
            CalcExpr::int(4),
        );
        let prog = Program::compile(&e, &[], &ctx).unwrap();
        assert_eq!(prog.len(), 1, "constant subtree pre-evaluated");
        assert_eq!(prog.eval(&vec![], &ctx).unwrap(), Value::Int(20));
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // `false and (1 + "x")`: the interpreter never evaluates the
        // ill-typed right side; the compiled program must not either.
        let e = CalcExpr::bin(
            BinOp::And,
            CalcExpr::bin(BinOp::Lt, CalcExpr::var("x"), CalcExpr::int(0)),
            CalcExpr::bin(BinOp::Add, CalcExpr::int(1), CalcExpr::str("x")),
        );
        check(&e);
        let or = CalcExpr::bin(
            BinOp::Or,
            CalcExpr::bin(BinOp::Gt, CalcExpr::var("x"), CalcExpr::int(0)),
            CalcExpr::bin(BinOp::Add, CalcExpr::int(1), CalcExpr::str("x")),
        );
        check(&or);
    }

    #[test]
    fn if_branches_only_taken_side() {
        let e = CalcExpr::If(
            Box::new(CalcExpr::bin(
                BinOp::Gt,
                CalcExpr::var("x"),
                CalcExpr::int(0),
            )),
            Box::new(CalcExpr::var("x")),
            Box::new(CalcExpr::bin(
                BinOp::Add,
                CalcExpr::int(1),
                CalcExpr::str("x"),
            )),
        );
        check(&e);
    }

    #[test]
    fn unbound_variable_is_a_compile_error() {
        let ctx = EvalCtx::new();
        assert!(Program::compile(&CalcExpr::var("nope"), &scope(), &ctx).is_err());
    }

    #[test]
    fn innermost_binding_shadows() {
        let ctx = EvalCtx::new();
        let scope = vec!["x".to_string(), "x".to_string()];
        let env = vec![
            ("x".to_string(), Value::Int(1)),
            ("x".to_string(), Value::Int(2)),
        ];
        let prog = Program::compile(&CalcExpr::var("x"), &scope, &ctx).unwrap();
        assert_eq!(prog.eval(&env, &ctx).unwrap(), Value::Int(2));
        assert_eq!(
            eval(&CalcExpr::var("x"), &env, &ctx).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn tables_are_prebound() {
        let ctx = EvalCtx::new().with_table("t", Value::list([Value::Int(1), Value::Int(2)]));
        let e = CalcExpr::Exists(Box::new(CalcExpr::TableRef("t".into())));
        let prog = Program::compile(&e, &[], &ctx).unwrap();
        assert_eq!(prog.eval(&vec![], &ctx).unwrap(), Value::Bool(true));
        // Unknown tables fail at compile time (callers fall back).
        assert!(Program::compile(&CalcExpr::TableRef("nope".into()), &[], &ctx).is_err());
    }

    #[test]
    fn blockers_are_prebound() {
        let algo = FilterAlgo::TokenFilter { q: 2 };
        let e = CalcExpr::call(Func::BlockKeys(algo.clone()), vec![CalcExpr::var("x")]);
        let mut ctx = EvalCtx::new();
        ctx.prepare_blockers(&e, &[]);
        let scope = vec!["x".to_string()];
        let prog = Program::compile(&e, &scope, &ctx).unwrap();
        assert!(
            prog.instrs.iter().any(|i| matches!(i, Instr::BlockKeys(_))),
            "blocker call must be pre-bound"
        );
        let env = vec![("x".to_string(), Value::str("anna"))];
        assert_eq!(
            prog.eval(&env, &ctx).unwrap(),
            eval(&e, &env, &ctx).unwrap()
        );
    }

    #[test]
    fn comprehension_falls_back_to_interp_island() {
        let ctx = EvalCtx::new();
        // sum{ v + x | v <- [1,2,3] } over slot x.
        let e = CalcExpr::comp(
            MonoidKind::Sum,
            CalcExpr::bin(BinOp::Add, CalcExpr::var("v"), CalcExpr::var("x")),
            vec![Qual::Gen(
                "v".into(),
                CalcExpr::Const(Value::list([Value::Int(1), Value::Int(2), Value::Int(3)])),
            )],
        );
        let scope = vec!["x".to_string()];
        let prog = Program::compile(&e, &scope, &ctx).unwrap();
        assert!(prog.instrs.iter().any(|i| matches!(i, Instr::Interp(_))));
        let env = vec![("x".to_string(), Value::Int(10))];
        assert_eq!(prog.eval(&env, &ctx).unwrap(), Value::Int(36));
    }

    #[test]
    fn batch_matches_per_row() {
        let ctx = EvalCtx::new();
        let e = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("row"), "a"),
            CalcExpr::var("x"),
        );
        let prog = Program::compile(&e, &scope(), &ctx).unwrap();
        let rows: Vec<Env> = (0..50)
            .map(|i| {
                vec![
                    ("x".to_string(), Value::Int(25)),
                    (
                        "row".to_string(),
                        Value::record([("a", Value::Int(i)), ("b", Value::str("s"))]),
                    ),
                ]
            })
            .collect();
        let batch = prog.eval_batch(&rows, &ctx).unwrap();
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(got, &eval(&e, row, &ctx).unwrap());
        }
    }

    #[test]
    fn pair_evaluation_matches_merged_env() {
        let ctx = EvalCtx::new();
        let scope = vec!["l".to_string(), "r".to_string()];
        let e = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("l"), "k"),
            CalcExpr::proj(CalcExpr::var("r"), "k"),
        );
        let prog = Program::compile(&e, &scope, &ctx).unwrap();
        let l = vec![("l".to_string(), Value::record([("k", Value::Int(1))]))];
        let r = vec![("r".to_string(), Value::record([("k", Value::Int(2))]))];
        let mut scratch = Vec::new();
        let got = prog.eval_pair(&l, &r, &ctx, &mut scratch).unwrap();
        let mut env = l.clone();
        env.extend(r.iter().cloned());
        assert_eq!(got, eval(&e, &env, &ctx).unwrap());
    }

    #[test]
    fn layout_mismatch_is_detected() {
        let ctx = EvalCtx::new();
        let prog = Program::compile(&CalcExpr::var("x"), &scope(), &ctx).unwrap();
        let short = vec![("x".to_string(), Value::Int(1))];
        assert!(prog.eval(&short, &ctx).is_err());
    }

    #[test]
    fn projection_hint_self_tunes() {
        let ctx = EvalCtx::new();
        let e = CalcExpr::proj(CalcExpr::var("row"), "b");
        let prog = Program::compile(&e, &scope(), &ctx).unwrap();
        // Two different field orders: the hint adapts and stays correct.
        let env1 = env();
        let env2 = vec![
            ("x".to_string(), Value::Int(7)),
            (
                "row".to_string(),
                Value::record([("b", Value::str("first")), ("a", Value::Int(1))]),
            ),
        ];
        assert_eq!(prog.eval(&env1, &ctx).unwrap(), Value::str("hi"));
        assert_eq!(prog.eval(&env2, &ctx).unwrap(), Value::str("first"));
        assert_eq!(prog.eval(&env1, &ctx).unwrap(), Value::str("hi"));
    }
}
