//! The Monoid Rewriter: de-sugarize a CleanM AST into monoid comprehensions,
//! following the per-operator semantics given in §4.4 of the paper.
//!
//! Shapes emitted (and relied upon by `algebra::lower`):
//!
//! * **FD** — `bag{ g | g ← filter{ {key: lhs(d), item: d} | d ← t },
//!   count_distinct(bag{ rhs(x) | x ← g.partition }) > 1 }`
//! * **DEDUP** — `bag{ {left: p1, right: p2} | g ← filter{…}, p1 ←
//!   g.partition, p2 ← g.partition, p1.__rowid < p2.__rowid,
//!   similar(p1.atts, p2.atts) }`
//! * **CLUSTER BY** — two filter groupings (data and dictionary), joined on
//!   group key, unnested, similarity-checked:
//!   `list{ {term, repair} | g1 ← dataGroup, g2 ← dictGroup, g1.key = g2.key,
//!   t ← g1.partition, w ← g2.partition, similar(t, w) }`
//!
//! Rows flow through the calculus as structs; the engine injects a
//! `__rowid` field so pair enumeration can break symmetry.
//!
//! Attribute conventions for `DEDUP(op, metric, θ, a₀, a₁, …)`: `a₀` is the
//! blocking attribute; similarity compares the concatenation of `a₁…`
//! (falling back to `a₀` when no others are given). The dictionary table of
//! CLUSTER BY exposes its term under the column `term`.

use cleanm_text::Metric;
use cleanm_values::{Error, Result};

use crate::lang::ast::{BlockSpec, CleanOp, Expr, Query};

use super::expr::{BinOp, CalcExpr, FilterAlgo, Func, MonoidKind, Qual};

/// The hidden row-identity field the engine injects into row structs.
pub const ROWID_FIELD: &str = "__rowid";
/// The dictionary term column CLUSTER BY expects.
pub const DICT_TERM_FIELD: &str = "term";

/// One desugared cleaning operation.
#[derive(Debug, Clone, PartialEq)]
pub struct DesugaredOp {
    /// Human-readable label for reports (`"FD(address → prefix(phone))"`).
    pub label: String,
    /// The §4.4 comprehension.
    pub comp: CalcExpr,
    pub kind: OpKind,
}

/// Which operator family a desugared comprehension implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Fd,
    Dedup,
    TermValidation,
    Select,
}

/// The full desugared query: the plain select part (if meaningful) plus one
/// comprehension per cleaning operator.
#[derive(Debug, Clone, PartialEq)]
pub struct DesugaredQuery {
    pub ops: Vec<DesugaredOp>,
}

/// Convert a surface expression to a calculus expression, resolving column
/// references against `row_vars`: alias → comprehension variable.
pub fn expr_to_calc(e: &Expr, row_vars: &[(Option<&str>, &str)]) -> Result<CalcExpr> {
    match e {
        Expr::Literal(v) => Ok(CalcExpr::Const(v.clone())),
        Expr::Star => Err(Error::Invalid(
            "`*` cannot appear in this position".to_string(),
        )),
        Expr::Column { table, name } => {
            let var = match table {
                Some(alias) => row_vars
                    .iter()
                    .find(|(a, _)| a.as_deref() == Some(alias.as_str()))
                    .map(|(_, v)| *v)
                    .ok_or_else(|| Error::Invalid(format!("unknown alias `{alias}`")))?,
                None => row_vars
                    .first()
                    .map(|(_, v)| *v)
                    .ok_or_else(|| Error::Invalid("no row in scope".to_string()))?,
            };
            Ok(CalcExpr::proj(CalcExpr::var(var), name))
        }
        Expr::Not(inner) => Ok(CalcExpr::Not(Box::new(expr_to_calc(inner, row_vars)?))),
        Expr::BinOp { op, left, right } => {
            let l = expr_to_calc(left, row_vars)?;
            let r = expr_to_calc(right, row_vars)?;
            let op = match op.as_str() {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                "=" => BinOp::Eq,
                "<>" | "!=" => BinOp::Ne,
                "<" => BinOp::Lt,
                "<=" => BinOp::Le,
                ">" => BinOp::Gt,
                ">=" => BinOp::Ge,
                "AND" => BinOp::And,
                "OR" => BinOp::Or,
                other => return Err(Error::Invalid(format!("unknown operator `{other}`"))),
            };
            Ok(CalcExpr::bin(op, l, r))
        }
        Expr::Call { name, args } => {
            let calc_args: Vec<CalcExpr> = args
                .iter()
                .map(|a| expr_to_calc(a, row_vars))
                .collect::<Result<_>>()?;
            let func = match name.to_lowercase().as_str() {
                "prefix" => Func::Prefix,
                "lower" => Func::Lower,
                "upper" => Func::Upper,
                "trim" => Func::Trim,
                "length" => Func::Length,
                "count" => Func::Count,
                "count_distinct" => Func::CountDistinct,
                "avg" => Func::Avg,
                "concat" => Func::Concat,
                "is_null" => Func::IsNull,
                "coalesce" => Func::Coalesce,
                "distinct" => Func::Distinct,
                "split" => {
                    // split(expr, 'sep') — the separator must be a literal.
                    let Some(Expr::Literal(sep)) = args.get(1) else {
                        return Err(Error::Invalid(
                            "split() needs a literal separator".to_string(),
                        ));
                    };
                    return Ok(CalcExpr::call(
                        Func::Split(sep.to_text()),
                        vec![calc_args.into_iter().next().ok_or_else(|| {
                            Error::Invalid("split() needs an argument".to_string())
                        })?],
                    ));
                }
                other => return Err(Error::Invalid(format!("unknown function `{other}`"))),
            };
            Ok(CalcExpr::call(func, calc_args))
        }
    }
}

/// The inner grouping comprehension
/// `filter{ {key, item: d} | d ← table, where? }`.
fn grouping_comp(
    algo: FilterAlgo,
    table: &str,
    row_var: &str,
    key: CalcExpr,
    item: CalcExpr,
    where_pred: Option<CalcExpr>,
) -> CalcExpr {
    let mut quals = vec![Qual::Gen(
        row_var.to_string(),
        CalcExpr::TableRef(table.into()),
    )];
    if let Some(p) = where_pred {
        quals.push(Qual::Pred(p));
    }
    CalcExpr::comp(
        MonoidKind::Filter(algo),
        CalcExpr::Record(vec![("key".into(), key), ("item".into(), item)]),
        quals,
    )
}

fn block_spec_to_algo(spec: &BlockSpec, seed: u64) -> FilterAlgo {
    match spec {
        BlockSpec::TokenFiltering { q } => FilterAlgo::TokenFilter { q: *q },
        BlockSpec::KMeans { k } => FilterAlgo::KMeans {
            k: *k,
            delta: 0,
            seed,
        },
        BlockSpec::Exact => FilterAlgo::Exact,
        BlockSpec::LengthBand { width } => FilterAlgo::LengthBand { width: *width },
    }
}

/// Concatenate attribute expressions into one comparable text.
fn concat_attrs(attrs: &[CalcExpr]) -> CalcExpr {
    if attrs.len() == 1 {
        attrs[0].clone()
    } else {
        // Interpose a separator so ("ab","c") != ("a","bc").
        let mut args = Vec::with_capacity(attrs.len() * 2 - 1);
        for (i, a) in attrs.iter().enumerate() {
            if i > 0 {
                args.push(CalcExpr::str("\u{1}"));
            }
            args.push(a.clone());
        }
        CalcExpr::call(Func::Concat, args)
    }
}

/// A composite key from several expressions (single expr stays scalar).
fn tuple_key(exprs: &[CalcExpr]) -> CalcExpr {
    if exprs.len() == 1 {
        exprs[0].clone()
    } else {
        CalcExpr::Record(
            exprs
                .iter()
                .enumerate()
                .map(|(i, e)| (format!("k{i}"), e.clone()))
                .collect(),
        )
    }
}

/// Desugar a parsed query into per-operator comprehensions. `seed`
/// parameterizes randomized blockers (k-means center sampling).
pub fn desugar_query(q: &Query, seed: u64) -> Result<DesugaredQuery> {
    let primary = q
        .primary_table()
        .ok_or_else(|| Error::Invalid("query has no FROM table".to_string()))?;
    let table = primary.name.clone();
    let alias = primary.alias.clone();
    let d = "d0"; // canonical row variable for the primary table
    let row_vars: Vec<(Option<&str>, &str)> = vec![(alias.as_deref().or(Some(&table)), d)];
    // Accept both the alias and the bare table name for unqualified columns.
    let where_pred = q
        .where_clause
        .as_ref()
        .map(|w| expr_to_calc(w, &row_vars))
        .transpose()?;

    if !q.clean_ops.is_empty() && !q.group_by.is_empty() {
        return Err(Error::Invalid(
            "GROUP BY cannot be combined with cleaning operators; run the \
             aggregation and the cleaning as separate queries"
                .to_string(),
        ));
    }

    let mut ops = Vec::new();
    for (i, op) in q.clean_ops.iter().enumerate() {
        match op {
            CleanOp::Fd { lhs, rhs } => {
                let lhs_calc: Vec<CalcExpr> = lhs
                    .iter()
                    .map(|e| expr_to_calc(e, &row_vars))
                    .collect::<Result<_>>()?;
                // RHS is evaluated over partition members bound to `x0`.
                let x_vars: Vec<(Option<&str>, &str)> =
                    vec![(alias.as_deref().or(Some(&table)), "x0")];
                let rhs_calc: Vec<CalcExpr> = rhs
                    .iter()
                    .map(|e| expr_to_calc(e, &x_vars))
                    .collect::<Result<_>>()?;

                let groups = grouping_comp(
                    FilterAlgo::Exact,
                    &table,
                    d,
                    tuple_key(&lhs_calc),
                    CalcExpr::var(d),
                    where_pred.clone(),
                );
                // count_distinct(bag{ rhs(x) | x <- g.partition }) > 1
                let rhs_bag = CalcExpr::comp(
                    MonoidKind::Bag,
                    tuple_key(&rhs_calc),
                    vec![Qual::Gen(
                        "x0".into(),
                        CalcExpr::proj(CalcExpr::var("g"), "partition"),
                    )],
                );
                let violation_pred = CalcExpr::bin(
                    BinOp::Gt,
                    CalcExpr::call(Func::CountDistinct, vec![rhs_bag]),
                    CalcExpr::int(1),
                );
                let comp = CalcExpr::comp(
                    MonoidKind::Bag,
                    CalcExpr::var("g"),
                    vec![Qual::Gen("g".into(), groups), Qual::Pred(violation_pred)],
                );
                ops.push(DesugaredOp {
                    label: format!("FD#{i}"),
                    comp,
                    kind: OpKind::Fd,
                });
            }
            CleanOp::Dedup {
                op,
                metric,
                theta,
                attributes,
            } => {
                if attributes.is_empty() {
                    return Err(Error::Invalid(
                        "DEDUP needs at least one attribute".to_string(),
                    ));
                }
                let algo = block_spec_to_algo(op, seed);
                let attr_calc: Vec<CalcExpr> = attributes
                    .iter()
                    .map(|e| expr_to_calc(e, &row_vars))
                    .collect::<Result<_>>()?;
                let block_attr = attr_calc[0].clone();
                let key = match algo {
                    FilterAlgo::Exact => block_attr,
                    ref a => CalcExpr::call(Func::BlockKeys(a.clone()), vec![block_attr]),
                };
                let groups =
                    grouping_comp(algo, &table, d, key, CalcExpr::var(d), where_pred.clone());

                // Similarity attributes: the non-blocking attributes, or the
                // blocking one when it is alone. Rewritten over p1/p2.
                let sim_attrs: &[Expr] = if attributes.len() > 1 {
                    &attributes[1..]
                } else {
                    &attributes[..1]
                };
                let p1_vars: Vec<(Option<&str>, &str)> =
                    vec![(alias.as_deref().or(Some(&table)), "p1")];
                let p2_vars: Vec<(Option<&str>, &str)> =
                    vec![(alias.as_deref().or(Some(&table)), "p2")];
                let sim1: Vec<CalcExpr> = sim_attrs
                    .iter()
                    .map(|e| expr_to_calc(e, &p1_vars))
                    .collect::<Result<_>>()?;
                let sim2: Vec<CalcExpr> = sim_attrs
                    .iter()
                    .map(|e| expr_to_calc(e, &p2_vars))
                    .collect::<Result<_>>()?;

                let comp = CalcExpr::comp(
                    MonoidKind::Bag,
                    CalcExpr::record(vec![
                        ("left", CalcExpr::var("p1")),
                        ("right", CalcExpr::var("p2")),
                    ]),
                    vec![
                        Qual::Gen("g".into(), groups),
                        Qual::Gen("p1".into(), CalcExpr::proj(CalcExpr::var("g"), "partition")),
                        Qual::Gen("p2".into(), CalcExpr::proj(CalcExpr::var("g"), "partition")),
                        Qual::Pred(CalcExpr::bin(
                            BinOp::Lt,
                            CalcExpr::proj(CalcExpr::var("p1"), ROWID_FIELD),
                            CalcExpr::proj(CalcExpr::var("p2"), ROWID_FIELD),
                        )),
                        Qual::Pred(CalcExpr::call(
                            Func::Similar(*metric, *theta),
                            vec![concat_attrs(&sim1), concat_attrs(&sim2)],
                        )),
                    ],
                );
                ops.push(DesugaredOp {
                    label: format!("DEDUP#{i}"),
                    comp,
                    kind: OpKind::Dedup,
                });
            }
            CleanOp::ClusterBy {
                op,
                metric,
                theta,
                term,
            } => {
                let dict = q.auxiliary_table().ok_or_else(|| {
                    Error::Invalid(
                        "CLUSTER BY needs a dictionary as the second FROM table".to_string(),
                    )
                })?;
                let algo = block_spec_to_algo(op, seed);
                let term_calc = expr_to_calc(term, &row_vars)?;
                let data_group = grouping_comp(
                    algo.clone(),
                    &table,
                    d,
                    CalcExpr::call(Func::BlockKeys(algo.clone()), vec![term_calc.clone()]),
                    term_calc,
                    where_pred.clone(),
                );
                let dict_term = CalcExpr::proj(CalcExpr::var("w0"), DICT_TERM_FIELD);
                let dict_group = grouping_comp(
                    algo.clone(),
                    &dict.name,
                    "w0",
                    CalcExpr::call(Func::BlockKeys(algo.clone()), vec![dict_term.clone()]),
                    dict_term,
                    None,
                );
                let comp = CalcExpr::comp(
                    MonoidKind::List,
                    CalcExpr::record(vec![
                        ("term", CalcExpr::var("t")),
                        ("repair", CalcExpr::var("w")),
                    ]),
                    vec![
                        Qual::Gen("g1".into(), data_group),
                        Qual::Gen("g2".into(), dict_group),
                        Qual::Pred(CalcExpr::bin(
                            BinOp::Eq,
                            CalcExpr::proj(CalcExpr::var("g1"), "key"),
                            CalcExpr::proj(CalcExpr::var("g2"), "key"),
                        )),
                        Qual::Gen("t".into(), CalcExpr::proj(CalcExpr::var("g1"), "partition")),
                        Qual::Gen("w".into(), CalcExpr::proj(CalcExpr::var("g2"), "partition")),
                        Qual::Pred(CalcExpr::call(
                            Func::Similar(*metric, *theta),
                            vec![CalcExpr::var("t"), CalcExpr::var("w")],
                        )),
                    ],
                );
                ops.push(DesugaredOp {
                    label: format!("CLUSTERBY#{i}"),
                    comp,
                    kind: OpKind::TermValidation,
                });
            }
        }
    }

    // Plain select part (used when no cleaning operators are present).
    if ops.is_empty() {
        let monoid = if q.distinct {
            MonoidKind::Set
        } else {
            MonoidKind::Bag
        };
        let comp = if q.group_by.is_empty() {
            let head = select_head(q, &row_vars)?;
            let mut quals = vec![Qual::Gen(d.to_string(), CalcExpr::TableRef(table.clone()))];
            if let Some(p) = where_pred {
                quals.push(Qual::Pred(p));
            }
            CalcExpr::comp(monoid, head, quals)
        } else {
            desugar_group_by(q, &table, d, where_pred, monoid, &row_vars)?
        };
        ops.push(DesugaredOp {
            label: "SELECT".to_string(),
            comp,
            kind: OpKind::Select,
        });
    }

    Ok(DesugaredQuery { ops })
}

/// Desugar `GROUP BY … [HAVING …]` into a filter-monoid grouping:
/// `⊕{ head(g) | g ← filter{ {key: gb(d), item: d} | d ← t, where }, having(g) }`
/// where aggregate calls in the head/HAVING become nested comprehensions
/// over `g.partition` and bare group-key expressions become key projections.
fn desugar_group_by(
    q: &Query,
    table: &str,
    d: &str,
    where_pred: Option<CalcExpr>,
    monoid: MonoidKind,
    row_vars: &[(Option<&str>, &str)],
) -> Result<CalcExpr> {
    let key_exprs: Vec<CalcExpr> = q
        .group_by
        .iter()
        .map(|e| expr_to_calc(e, row_vars))
        .collect::<Result<_>>()?;
    let groups = grouping_comp(
        FilterAlgo::Exact,
        table,
        d,
        tuple_key(&key_exprs),
        CalcExpr::var(d),
        where_pred,
    );

    let mut fields = Vec::with_capacity(q.select.len());
    for (i, item) in q.select.iter().enumerate() {
        let name = item.alias.clone().unwrap_or_else(|| match &item.expr {
            Expr::Column { name, .. } => name.clone(),
            Expr::Call { name, .. } => name.clone(),
            _ => format!("col{i}"),
        });
        fields.push((name, grouped_expr(&item.expr, q, &key_exprs, row_vars)?));
    }
    let head = CalcExpr::Record(fields);

    let mut quals = vec![Qual::Gen("g".into(), groups)];
    if let Some(h) = &q.having {
        quals.push(Qual::Pred(grouped_expr(h, q, &key_exprs, row_vars)?));
    }
    Ok(CalcExpr::comp(monoid, head, quals))
}

const AGGREGATES: &[&str] = &["count", "count_distinct", "sum", "avg", "min", "max"];

/// Convert a select/HAVING expression in a grouped query: aggregates become
/// comprehensions over the group's partition; group-key expressions become
/// key projections; anything else referencing the row is an error, as in
/// SQL.
fn grouped_expr(
    e: &Expr,
    q: &Query,
    key_exprs: &[CalcExpr],
    row_vars: &[(Option<&str>, &str)],
) -> Result<CalcExpr> {
    // A group-by expression is replaced by the matching key component.
    for (i, gb) in q.group_by.iter().enumerate() {
        if gb == e {
            let key = CalcExpr::proj(CalcExpr::var("g"), "key");
            return Ok(if key_exprs.len() == 1 {
                key
            } else {
                CalcExpr::Proj(Box::new(key), format!("k{i}"))
            });
        }
    }
    match e {
        Expr::Literal(v) => Ok(CalcExpr::Const(v.clone())),
        Expr::Call { name, args } if AGGREGATES.contains(&name.to_lowercase().as_str()) => {
            let lname = name.to_lowercase();
            // count(*) counts rows; other aggregates evaluate their
            // argument per partition member `x0`.
            let member_vars: Vec<(Option<&str>, &str)> =
                row_vars.iter().map(|(a, _)| (*a, "x0")).collect();
            let arg = match args.first() {
                Some(Expr::Star) | None => CalcExpr::int(1),
                Some(a) => expr_to_calc(a, &member_vars)?,
            };
            let over_partition = |m: MonoidKind, head: CalcExpr| {
                CalcExpr::comp(
                    m,
                    head,
                    vec![Qual::Gen(
                        "x0".into(),
                        CalcExpr::proj(CalcExpr::var("g"), "partition"),
                    )],
                )
            };
            Ok(match lname.as_str() {
                "count" => over_partition(MonoidKind::Sum, CalcExpr::int(1)),
                "sum" => over_partition(MonoidKind::Sum, arg),
                "min" => over_partition(MonoidKind::Min, arg),
                "max" => over_partition(MonoidKind::Max, arg),
                "avg" => CalcExpr::call(Func::Avg, vec![over_partition(MonoidKind::Bag, arg)]),
                _ => CalcExpr::call(
                    Func::CountDistinct,
                    vec![over_partition(MonoidKind::Bag, arg)],
                ),
            })
        }
        Expr::BinOp { op, left, right } => {
            let l = grouped_expr(left, q, key_exprs, row_vars)?;
            let r = grouped_expr(right, q, key_exprs, row_vars)?;
            // Reuse the operator mapping by round-tripping through a
            // synthetic surface expression is clumsy; map directly.
            let op = match op.as_str() {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                "=" => BinOp::Eq,
                "<>" | "!=" => BinOp::Ne,
                "<" => BinOp::Lt,
                "<=" => BinOp::Le,
                ">" => BinOp::Gt,
                ">=" => BinOp::Ge,
                "AND" => BinOp::And,
                "OR" => BinOp::Or,
                other => return Err(Error::Invalid(format!("unknown operator `{other}`"))),
            };
            Ok(CalcExpr::bin(op, l, r))
        }
        Expr::Not(inner) => Ok(CalcExpr::Not(Box::new(grouped_expr(
            inner, q, key_exprs, row_vars,
        )?))),
        Expr::Column { name, .. } => Err(Error::Invalid(format!(
            "column `{name}` must appear in GROUP BY or inside an aggregate"
        ))),
        other => Err(Error::Invalid(format!(
            "unsupported expression in grouped select: {other:?}"
        ))),
    }
}

fn select_head(q: &Query, row_vars: &[(Option<&str>, &str)]) -> Result<CalcExpr> {
    // `SELECT *` keeps the whole row struct.
    if q.select.len() == 1 && matches!(q.select[0].expr, Expr::Star) {
        return Ok(CalcExpr::var(row_vars[0].1));
    }
    let mut fields = Vec::with_capacity(q.select.len());
    for (i, item) in q.select.iter().enumerate() {
        if matches!(item.expr, Expr::Star) {
            // Mixed star: keep the row under a reserved name.
            fields.push(("__row".to_string(), CalcExpr::var(row_vars[0].1)));
            continue;
        }
        let name = item.alias.clone().unwrap_or_else(|| match &item.expr {
            Expr::Column { name, .. } => name.clone(),
            _ => format!("col{i}"),
        });
        fields.push((name, expr_to_calc(&item.expr, row_vars)?));
    }
    Ok(CalcExpr::Record(fields))
}

/// Metric re-export point for desugar consumers.
pub fn default_metric() -> Metric {
    Metric::Levenshtein
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::eval::{eval, EvalCtx};
    use crate::lang::parse_query;
    use cleanm_values::Value;

    fn row(id: i64, addr: &str, nation: i64, phone: &str, name: &str) -> Value {
        Value::record([
            (ROWID_FIELD, Value::Int(id)),
            ("address", Value::str(addr)),
            ("nationkey", Value::Int(nation)),
            ("phone", Value::str(phone)),
            ("name", Value::str(name)),
        ])
    }

    #[test]
    fn fd_comprehension_detects_violations() {
        let q = parse_query("SELECT * FROM customer c FD(c.address, c.nationkey)").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops.len(), 1);
        assert_eq!(dq.ops[0].kind, OpKind::Fd);

        let data = Value::list([
            row(0, "a st", 1, "101-1", "ann"),
            row(1, "a st", 2, "101-2", "ann b"), // violates: a st -> {1, 2}
            row(2, "b st", 3, "103-1", "bob"),
            row(3, "b st", 3, "103-2", "bobby"),
        ]);
        let mut ctx = EvalCtx::new().with_table("customer", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let groups = v.as_list().unwrap();
        assert_eq!(groups.len(), 1, "only `a st` violates: {v}");
        assert_eq!(groups[0].field("key").unwrap(), &Value::str("a st"));
    }

    #[test]
    fn fd_with_derived_rhs() {
        // The running example: address -> prefix(phone).
        let q = parse_query("SELECT * FROM customer c FD(c.address, prefix(c.phone))").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let data = Value::list([
            row(0, "a st", 1, "101-111", "x"),
            row(1, "a st", 1, "102-222", "y"), // same nation, different prefix
        ]);
        let mut ctx = EvalCtx::new().with_table("customer", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 1);
    }

    #[test]
    fn dedup_comprehension_finds_similar_pairs() {
        let q = parse_query("SELECT * FROM customer c DEDUP(exact, LD, 0.8, c.address, c.name)")
            .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops[0].kind, OpKind::Dedup);
        let data = Value::list([
            row(0, "a st", 1, "101-1", "anderson"),
            row(1, "a st", 1, "101-2", "andersen"), // same address, similar name
            row(2, "a st", 1, "101-3", "zhang"),    // same address, dissimilar
            row(3, "b st", 1, "101-4", "anderson"), // different address
        ]);
        let mut ctx = EvalCtx::new().with_table("customer", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let pairs = v.as_list().unwrap();
        assert_eq!(pairs.len(), 1, "{v}");
        let left = pairs[0].field("left").unwrap();
        assert_eq!(left.field("name").unwrap(), &Value::str("anderson"));
    }

    #[test]
    fn dedup_pairs_are_asymmetric() {
        // No (x, x) self pairs and no (b, a) mirror of (a, b).
        let q = parse_query("SELECT * FROM t DEDUP(token_filtering(2), LD, 0.8, t.name)").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let data = Value::list([row(0, "x", 1, "1", "smith"), row(1, "x", 1, "1", "smyth")]);
        let mut ctx = EvalCtx::new().with_table("t", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        // smith/smyth share tokens; exactly one ordered pair despite multi-
        // key blocking possibly co-locating them in several groups… the
        // rowid order kills mirrors but shared tokens may duplicate pairs;
        // both orders never appear.
        for p in v.as_list().unwrap() {
            let l = p.field("left").unwrap().field(ROWID_FIELD).unwrap();
            let r = p.field("right").unwrap().field(ROWID_FIELD).unwrap();
            assert!(l < r);
        }
        assert!(!v.as_list().unwrap().is_empty());
    }

    #[test]
    fn cluster_by_suggests_repairs() {
        let q = parse_query(
            "SELECT * FROM data x, dict w CLUSTER BY(token_filtering(2), LD, 0.75, x.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops[0].kind, OpKind::TermValidation);
        let data = Value::list([Value::record([
            (ROWID_FIELD, Value::Int(0)),
            ("name", Value::str("andersen")),
        ])]);
        let dict = Value::list([
            Value::record([("term", Value::str("anderson"))]),
            Value::record([("term", Value::str("zhang"))]),
        ]);
        let mut ctx = EvalCtx::new()
            .with_table("data", data)
            .with_table("dict", dict);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let repairs = v.as_list().unwrap();
        assert!(!repairs.is_empty());
        assert!(repairs
            .iter()
            .all(|r| r.field("repair").unwrap() == &Value::str("anderson")));
    }

    #[test]
    fn plain_select_desugars_to_bag() {
        let q = parse_query("SELECT c.name AS n FROM customer c WHERE c.nationkey = 1").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops.len(), 1);
        assert_eq!(dq.ops[0].kind, OpKind::Select);
        let data = Value::list([row(0, "a", 1, "1", "ann"), row(1, "b", 2, "2", "bob")]);
        let ctx = EvalCtx::new().with_table("customer", data);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let rows = v.as_list().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].field("n").unwrap(), &Value::str("ann"));
    }

    #[test]
    fn unknown_alias_is_error() {
        let q = parse_query("SELECT zz.name FROM customer c").unwrap();
        assert!(desugar_query(&q, 1).is_err());
    }

    #[test]
    fn cluster_by_without_dictionary_is_error() {
        let q = parse_query("SELECT * FROM t CLUSTER BY(tf, LD, 0.8, t.name)").unwrap();
        assert!(desugar_query(&q, 1).is_err());
    }

    #[test]
    fn running_example_desugars_to_three_ops() {
        let q = parse_query(
            "SELECT c.name, c.address, * FROM customer c, dictionary d \
             FD(c.address, prefix(c.phone)) \
             DEDUP(token_filtering, LD, 0.8, c.address) \
             CLUSTER BY(token_filtering, LD, 0.8, c.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 7).unwrap();
        assert_eq!(dq.ops.len(), 3);
        assert_eq!(dq.ops[0].kind, OpKind::Fd);
        assert_eq!(dq.ops[1].kind, OpKind::Dedup);
        assert_eq!(dq.ops[2].kind, OpKind::TermValidation);
    }
}
