//! The Monoid Rewriter: de-sugarize a CleanM AST into monoid comprehensions,
//! following the per-operator semantics given in §4.4 of the paper.
//!
//! Shapes emitted (and relied upon by `algebra::lower`):
//!
//! * **FD** — `bag{ g | g ← filter{ {key: lhs(d), item: d} | d ← t },
//!   count_distinct(bag{ rhs(x) | x ← g.partition }) > 1 }`
//! * **DEDUP** — `bag{ {left: p1, right: p2} | g ← filter{…}, p1 ←
//!   g.partition, p2 ← g.partition, p1.__rowid < p2.__rowid,
//!   similar(p1.atts, p2.atts) }`
//! * **CLUSTER BY** — two filter groupings (data and dictionary), joined on
//!   group key, unnested, similarity-checked:
//!   `list{ {term, repair} | g1 ← dataGroup, g2 ← dictGroup, g1.key = g2.key,
//!   t ← g1.partition, w ← g2.partition, similar(t, w) }`
//! * **DC** — like DEDUP, but the pairwise predicate is the user's denial
//!   predicate over `t1`/`t2` and blocking keys come from its
//!   `t1.x = t2.x` equality conjuncts (single block when there are none):
//!   `bag{ {left: p1, right: p2} | g ← filter{…}, p1 ← g.partition,
//!   p2 ← g.partition, p1.__rowid ≠ p2.__rowid, pred(p1, p2) }`
//!
//! Rows flow through the calculus as structs; the engine injects a
//! `__rowid` field so pair enumeration can break symmetry.
//!
//! Attribute conventions for `DEDUP(op, metric, θ, a₀, a₁, …)`: `a₀` is the
//! blocking attribute; similarity compares the concatenation of `a₁…`
//! (falling back to `a₀` when no others are given). The dictionary table of
//! CLUSTER BY exposes its term under the column `term`.
//!
//! Errors are span-carrying [`Diagnostic`]s ([`desugar_query_diag`]); the
//! plain [`desugar_query`] wrapper flattens them into `Error::Invalid` for
//! engine callers.

use cleanm_text::Metric;
use cleanm_values::{Error, Result};

use crate::lang::ast::{BlockSpec, CleanOp, Expr, ExprKind, Query};
use crate::lang::diag::{
    Diagnostic, Phase, Span, E201_UNKNOWN_ALIAS, E202_UNKNOWN_FUNCTION, E203_MISPLACED_STAR,
    E204_GROUP_BY_WITH_CLEANING, E205_OPERATOR_SHAPE, E206_DC_VARS,
};

use super::expr::{BinOp, CalcExpr, FilterAlgo, Func, MonoidKind, Qual};

/// The hidden row-identity field the engine injects into row structs.
pub const ROWID_FIELD: &str = "__rowid";
/// The dictionary term column CLUSTER BY expects.
pub const DICT_TERM_FIELD: &str = "term";

/// One desugared cleaning operation.
#[derive(Debug, Clone, PartialEq)]
pub struct DesugaredOp {
    /// Human-readable label for reports (`"FD#0"`).
    pub label: String,
    /// The §4.4 comprehension.
    pub comp: CalcExpr,
    pub kind: OpKind,
}

/// Which operator family a desugared comprehension implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Fd,
    Dedup,
    TermValidation,
    Dc,
    Select,
}

/// The full desugared query: the plain select part (if meaningful) plus one
/// comprehension per cleaning operator.
#[derive(Debug, Clone, PartialEq)]
pub struct DesugaredQuery {
    pub ops: Vec<DesugaredOp>,
}

type DResult<T> = std::result::Result<T, Diagnostic>;

fn diag(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
    Diagnostic::new(code, Phase::Desugar, span, message)
}

/// Convert a surface expression to a calculus expression, resolving column
/// references against `row_vars`: alias → comprehension variable. The
/// public strict wrapper around `expr_calc` used by tests and tools.
pub fn expr_to_calc(e: &Expr, row_vars: &[(Option<&str>, &str)]) -> Result<CalcExpr> {
    expr_calc(e, row_vars).map_err(|d| Error::Invalid(d.message))
}

fn expr_calc(e: &Expr, row_vars: &[(Option<&str>, &str)]) -> DResult<CalcExpr> {
    match &e.kind {
        ExprKind::Literal(v) => Ok(CalcExpr::Const(v.clone())),
        ExprKind::Star => Err(diag(
            E203_MISPLACED_STAR,
            e.span,
            "`*` cannot appear in this position",
        )),
        ExprKind::Column { table, name } => {
            let var = match table {
                Some(alias) => row_vars
                    .iter()
                    .find(|(a, _)| a.as_deref() == Some(alias.as_str()))
                    .map(|(_, v)| *v)
                    .ok_or_else(|| {
                        diag(
                            E201_UNKNOWN_ALIAS,
                            e.span,
                            format!("unknown alias `{alias}`"),
                        )
                        .with_note(format!(
                            "tables in scope: {}",
                            row_vars
                                .iter()
                                .filter_map(|(a, _)| *a)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    })?,
                None => row_vars.first().map(|(_, v)| *v).ok_or_else(|| {
                    diag(E201_UNKNOWN_ALIAS, e.span, "no row in scope".to_string())
                })?,
            };
            Ok(CalcExpr::proj(CalcExpr::var(var), name))
        }
        ExprKind::Not(inner) => Ok(CalcExpr::Not(Box::new(expr_calc(inner, row_vars)?))),
        ExprKind::BinOp { op, left, right } => {
            let l = expr_calc(left, row_vars)?;
            let r = expr_calc(right, row_vars)?;
            let op = surface_binop(op, e.span)?;
            Ok(CalcExpr::bin(op, l, r))
        }
        ExprKind::Call { name, args } => {
            let calc_args: Vec<CalcExpr> = args
                .iter()
                .map(|a| expr_calc(a, row_vars))
                .collect::<DResult<_>>()?;
            let func = match name.to_lowercase().as_str() {
                "prefix" => Func::Prefix,
                "lower" => Func::Lower,
                "upper" => Func::Upper,
                "trim" => Func::Trim,
                "length" => Func::Length,
                "count" => Func::Count,
                "count_distinct" => Func::CountDistinct,
                "avg" => Func::Avg,
                "concat" => Func::Concat,
                "is_null" => Func::IsNull,
                "coalesce" => Func::Coalesce,
                "distinct" => Func::Distinct,
                "split" => {
                    // split(expr, 'sep') — the separator must be a literal.
                    let Some(Expr {
                        kind: ExprKind::Literal(sep),
                        ..
                    }) = args.get(1)
                    else {
                        return Err(diag(
                            E205_OPERATOR_SHAPE,
                            e.span,
                            "split() needs a literal separator",
                        ));
                    };
                    return Ok(CalcExpr::call(
                        Func::Split(sep.to_text()),
                        vec![calc_args.into_iter().next().ok_or_else(|| {
                            diag(E205_OPERATOR_SHAPE, e.span, "split() needs an argument")
                        })?],
                    ));
                }
                other => {
                    return Err(diag(
                        E202_UNKNOWN_FUNCTION,
                        e.span,
                        format!("unknown function `{other}`"),
                    )
                    .with_note(
                        "builtins: prefix, lower, upper, trim, length, concat, split, \
                         is_null, coalesce, distinct, count, count_distinct, sum, avg, \
                         min, max",
                    ))
                }
            };
            Ok(CalcExpr::call(func, calc_args))
        }
    }
}

fn surface_binop(op: &str, span: Span) -> DResult<BinOp> {
    Ok(match op {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "=" => BinOp::Eq,
        "<>" | "!=" => BinOp::Ne,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "AND" => BinOp::And,
        "OR" => BinOp::Or,
        other => {
            return Err(diag(
                E205_OPERATOR_SHAPE,
                span,
                format!("unknown operator `{other}`"),
            ))
        }
    })
}

/// The inner grouping comprehension
/// `filter{ {key, item: d} | d ← table, where? }`.
fn grouping_comp(
    algo: FilterAlgo,
    table: &str,
    row_var: &str,
    key: CalcExpr,
    item: CalcExpr,
    where_pred: Option<CalcExpr>,
) -> CalcExpr {
    let mut quals = vec![Qual::Gen(
        row_var.to_string(),
        CalcExpr::TableRef(table.into()),
    )];
    if let Some(p) = where_pred {
        quals.push(Qual::Pred(p));
    }
    CalcExpr::comp(
        MonoidKind::Filter(algo),
        CalcExpr::Record(vec![("key".into(), key), ("item".into(), item)]),
        quals,
    )
}

fn block_spec_to_algo(spec: &BlockSpec, seed: u64) -> FilterAlgo {
    match spec {
        BlockSpec::TokenFiltering { q } => FilterAlgo::TokenFilter { q: *q },
        BlockSpec::KMeans { k } => FilterAlgo::KMeans {
            k: *k,
            delta: 0,
            seed,
        },
        BlockSpec::Exact => FilterAlgo::Exact,
        BlockSpec::LengthBand { width } => FilterAlgo::LengthBand { width: *width },
    }
}

/// Concatenate attribute expressions into one comparable text.
fn concat_attrs(attrs: &[CalcExpr]) -> CalcExpr {
    if attrs.len() == 1 {
        attrs[0].clone()
    } else {
        // Interpose a separator so ("ab","c") != ("a","bc").
        let mut args = Vec::with_capacity(attrs.len() * 2 - 1);
        for (i, a) in attrs.iter().enumerate() {
            if i > 0 {
                args.push(CalcExpr::str("\u{1}"));
            }
            args.push(a.clone());
        }
        CalcExpr::call(Func::Concat, args)
    }
}

/// A composite key from several expressions (single expr stays scalar).
fn tuple_key(exprs: &[CalcExpr]) -> CalcExpr {
    if exprs.len() == 1 {
        exprs[0].clone()
    } else {
        CalcExpr::Record(
            exprs
                .iter()
                .enumerate()
                .map(|(i, e)| (format!("k{i}"), e.clone()))
                .collect(),
        )
    }
}

/// Desugar a parsed query into per-operator comprehensions. `seed`
/// parameterizes randomized blockers (k-means center sampling). Strict
/// wrapper: the first diagnostic becomes `Error::Invalid`.
pub fn desugar_query(q: &Query, seed: u64) -> Result<DesugaredQuery> {
    desugar_query_diag(q, seed).map_err(|ds| {
        let d = ds.into_iter().next().expect("non-empty diagnostics");
        Error::Invalid(d.message)
    })
}

/// Desugar a parsed query, reporting *every* failing operator with a
/// span-carrying [`Diagnostic`] instead of stopping at the first.
pub fn desugar_query_diag(
    q: &Query,
    seed: u64,
) -> std::result::Result<DesugaredQuery, Vec<Diagnostic>> {
    let Some(primary) = q.primary_table() else {
        return Err(vec![diag(
            E205_OPERATOR_SHAPE,
            Span::default(),
            "query has no FROM table",
        )]);
    };
    let table = primary.name.clone();
    let alias = primary.alias.clone();
    let d = "d0"; // canonical row variable for the primary table
    let row_vars: Vec<(Option<&str>, &str)> = vec![(alias.as_deref().or(Some(&table)), d)];

    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    if !q.clean_ops.is_empty() && !q.group_by.is_empty() {
        let span = q
            .clean_ops
            .iter()
            .map(CleanOp::span)
            .fold(q.group_by[0].span, Span::join);
        return Err(vec![diag(
            E204_GROUP_BY_WITH_CLEANING,
            span,
            "GROUP BY cannot be combined with cleaning operators; run the \
             aggregation and the cleaning as separate queries",
        )]);
    }

    // Accept both the alias and the bare table name for unqualified columns.
    let where_pred = match q
        .where_clause
        .as_ref()
        .map(|w| expr_calc(w, &row_vars))
        .transpose()
    {
        Ok(p) => p,
        Err(d) => {
            diagnostics.push(d);
            None
        }
    };

    let mut ops = Vec::new();
    for (i, op) in q.clean_ops.iter().enumerate() {
        match desugar_clean_op(op, i, q, &table, alias.as_deref(), d, &where_pred, seed) {
            Ok(op) => ops.push(op),
            Err(d) => diagnostics.push(d),
        }
    }

    // Plain select part (used when no cleaning operators are present).
    if ops.is_empty() && diagnostics.is_empty() {
        let monoid = if q.distinct {
            MonoidKind::Set
        } else {
            MonoidKind::Bag
        };
        let comp = if q.group_by.is_empty() {
            match select_head(q, &row_vars) {
                Ok(head) => {
                    let mut quals =
                        vec![Qual::Gen(d.to_string(), CalcExpr::TableRef(table.clone()))];
                    if let Some(p) = where_pred {
                        quals.push(Qual::Pred(p));
                    }
                    Some(CalcExpr::comp(monoid, head, quals))
                }
                Err(d) => {
                    diagnostics.push(d);
                    None
                }
            }
        } else {
            match desugar_group_by(q, &table, d, where_pred, monoid, &row_vars) {
                Ok(c) => Some(c),
                Err(d) => {
                    diagnostics.push(d);
                    None
                }
            }
        };
        if let Some(comp) = comp {
            ops.push(DesugaredOp {
                label: "SELECT".to_string(),
                comp,
                kind: OpKind::Select,
            });
        }
    }

    if diagnostics.is_empty() {
        Ok(DesugaredQuery { ops })
    } else {
        Err(diagnostics)
    }
}

/// Desugar one cleaning operator clause.
#[allow(clippy::too_many_arguments)]
fn desugar_clean_op(
    op: &CleanOp,
    i: usize,
    q: &Query,
    table: &str,
    alias: Option<&str>,
    d: &str,
    where_pred: &Option<CalcExpr>,
    seed: u64,
) -> DResult<DesugaredOp> {
    let row_vars: Vec<(Option<&str>, &str)> = vec![(alias.or(Some(table)), d)];
    match op {
        CleanOp::Fd { lhs, rhs, .. } => {
            let lhs_calc: Vec<CalcExpr> = lhs
                .iter()
                .map(|e| expr_calc(e, &row_vars))
                .collect::<DResult<_>>()?;
            // RHS is evaluated over partition members bound to `x0`.
            let x_vars: Vec<(Option<&str>, &str)> = vec![(alias.or(Some(table)), "x0")];
            let rhs_calc: Vec<CalcExpr> = rhs
                .iter()
                .map(|e| expr_calc(e, &x_vars))
                .collect::<DResult<_>>()?;

            let groups = grouping_comp(
                FilterAlgo::Exact,
                table,
                d,
                tuple_key(&lhs_calc),
                CalcExpr::var(d),
                where_pred.clone(),
            );
            // count_distinct(bag{ rhs(x) | x <- g.partition }) > 1
            let rhs_bag = CalcExpr::comp(
                MonoidKind::Bag,
                tuple_key(&rhs_calc),
                vec![Qual::Gen(
                    "x0".into(),
                    CalcExpr::proj(CalcExpr::var("g"), "partition"),
                )],
            );
            let violation_pred = CalcExpr::bin(
                BinOp::Gt,
                CalcExpr::call(Func::CountDistinct, vec![rhs_bag]),
                CalcExpr::int(1),
            );
            let comp = CalcExpr::comp(
                MonoidKind::Bag,
                CalcExpr::var("g"),
                vec![Qual::Gen("g".into(), groups), Qual::Pred(violation_pred)],
            );
            Ok(DesugaredOp {
                label: format!("FD#{i}"),
                comp,
                kind: OpKind::Fd,
            })
        }
        CleanOp::Dedup {
            op,
            metric,
            theta,
            attributes,
            span,
        } => {
            if attributes.is_empty() {
                return Err(diag(
                    E205_OPERATOR_SHAPE,
                    *span,
                    "DEDUP needs at least one attribute",
                ));
            }
            let algo = block_spec_to_algo(op, seed);
            let attr_calc: Vec<CalcExpr> = attributes
                .iter()
                .map(|e| expr_calc(e, &row_vars))
                .collect::<DResult<_>>()?;
            let block_attr = attr_calc[0].clone();
            let key = match algo {
                FilterAlgo::Exact => block_attr,
                ref a => CalcExpr::call(Func::BlockKeys(a.clone()), vec![block_attr]),
            };
            let groups = grouping_comp(algo, table, d, key, CalcExpr::var(d), where_pred.clone());

            // Similarity attributes: the non-blocking attributes, or the
            // blocking one when it is alone. Rewritten over p1/p2.
            let sim_attrs: &[Expr] = if attributes.len() > 1 {
                &attributes[1..]
            } else {
                &attributes[..1]
            };
            let p1_vars: Vec<(Option<&str>, &str)> = vec![(alias.or(Some(table)), "p1")];
            let p2_vars: Vec<(Option<&str>, &str)> = vec![(alias.or(Some(table)), "p2")];
            let sim1: Vec<CalcExpr> = sim_attrs
                .iter()
                .map(|e| expr_calc(e, &p1_vars))
                .collect::<DResult<_>>()?;
            let sim2: Vec<CalcExpr> = sim_attrs
                .iter()
                .map(|e| expr_calc(e, &p2_vars))
                .collect::<DResult<_>>()?;

            let comp = CalcExpr::comp(
                MonoidKind::Bag,
                CalcExpr::record(vec![
                    ("left", CalcExpr::var("p1")),
                    ("right", CalcExpr::var("p2")),
                ]),
                vec![
                    Qual::Gen("g".into(), groups),
                    Qual::Gen("p1".into(), CalcExpr::proj(CalcExpr::var("g"), "partition")),
                    Qual::Gen("p2".into(), CalcExpr::proj(CalcExpr::var("g"), "partition")),
                    Qual::Pred(CalcExpr::bin(
                        BinOp::Lt,
                        CalcExpr::proj(CalcExpr::var("p1"), ROWID_FIELD),
                        CalcExpr::proj(CalcExpr::var("p2"), ROWID_FIELD),
                    )),
                    Qual::Pred(CalcExpr::call(
                        Func::Similar(*metric, *theta),
                        vec![concat_attrs(&sim1), concat_attrs(&sim2)],
                    )),
                ],
            );
            Ok(DesugaredOp {
                label: format!("DEDUP#{i}"),
                comp,
                kind: OpKind::Dedup,
            })
        }
        CleanOp::ClusterBy {
            op,
            metric,
            theta,
            term,
            span,
        } => {
            let dict = q.auxiliary_table().ok_or_else(|| {
                diag(
                    E205_OPERATOR_SHAPE,
                    *span,
                    "CLUSTER BY needs a dictionary as the second FROM table",
                )
                .with_note("write `FROM data x, dictionary w` and reference the data term")
            })?;
            let algo = block_spec_to_algo(op, seed);
            let term_calc = expr_calc(term, &row_vars)?;
            let data_group = grouping_comp(
                algo.clone(),
                table,
                d,
                CalcExpr::call(Func::BlockKeys(algo.clone()), vec![term_calc.clone()]),
                term_calc,
                where_pred.clone(),
            );
            let dict_term = CalcExpr::proj(CalcExpr::var("w0"), DICT_TERM_FIELD);
            let dict_group = grouping_comp(
                algo.clone(),
                &dict.name,
                "w0",
                CalcExpr::call(Func::BlockKeys(algo.clone()), vec![dict_term.clone()]),
                dict_term,
                None,
            );
            let comp = CalcExpr::comp(
                MonoidKind::List,
                CalcExpr::record(vec![
                    ("term", CalcExpr::var("t")),
                    ("repair", CalcExpr::var("w")),
                ]),
                vec![
                    Qual::Gen("g1".into(), data_group),
                    Qual::Gen("g2".into(), dict_group),
                    Qual::Pred(CalcExpr::bin(
                        BinOp::Eq,
                        CalcExpr::proj(CalcExpr::var("g1"), "key"),
                        CalcExpr::proj(CalcExpr::var("g2"), "key"),
                    )),
                    Qual::Gen("t".into(), CalcExpr::proj(CalcExpr::var("g1"), "partition")),
                    Qual::Gen("w".into(), CalcExpr::proj(CalcExpr::var("g2"), "partition")),
                    Qual::Pred(CalcExpr::call(
                        Func::Similar(*metric, *theta),
                        vec![CalcExpr::var("t"), CalcExpr::var("w")],
                    )),
                ],
            );
            Ok(DesugaredOp {
                label: format!("CLUSTERBY#{i}"),
                comp,
                kind: OpKind::TermValidation,
            })
        }
        CleanOp::Dc { pred, span } => desugar_dc(pred, *span, i, table, d, where_pred),
    }
}

/// Lower `DC(pred)` into a blocked pairwise comprehension. The predicate's
/// columns must be qualified with the tuple variables `t1`/`t2`; equality
/// conjuncts whose two sides are the same expression on opposite tuples
/// (`t1.x = t2.x`) become the blocking key, every other conjunct stays a
/// pairwise predicate, and pairs are distinct ordered rows.
fn desugar_dc(
    pred: &Expr,
    span: Span,
    i: usize,
    table: &str,
    d: &str,
    where_pred: &Option<CalcExpr>,
) -> DResult<DesugaredOp> {
    let (uses_t1, uses_t2) = tuple_var_usage(pred);
    if !uses_t1 || !uses_t2 {
        return Err(diag(
            E206_DC_VARS,
            pred.span,
            "a DC predicate must relate both tuple variables `t1` and `t2`",
        )
        .with_note("example: DC(t1.zip = t2.zip AND t1.city <> t2.city)"));
    }

    // Split the top-level AND chain into conjuncts.
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);

    // Both tuple variables map onto the same row variable for key
    // canonicalization: `t1.x = t2.x` has equal sides under that mapping.
    let canon_vars: Vec<(Option<&str>, &str)> = vec![(Some("t1"), d), (Some("t2"), d)];
    let pair_vars: Vec<(Option<&str>, &str)> = vec![(Some("t1"), "p1"), (Some("t2"), "p2")];

    let mut keys: Vec<CalcExpr> = Vec::new();
    let mut residual: Vec<CalcExpr> = Vec::new();
    for c in &conjuncts {
        if let ExprKind::BinOp { op, left, right } = &c.kind {
            if op == "=" {
                let (l1, l2) = tuple_var_usage(left);
                let (r1, r2) = tuple_var_usage(right);
                let opposite = (l1 && !l2 && r2 && !r1) || (l2 && !l1 && r1 && !r2);
                if opposite {
                    let lk = expr_calc(left, &canon_vars)?;
                    let rk = expr_calc(right, &canon_vars)?;
                    if lk == rk {
                        keys.push(lk);
                        continue;
                    }
                }
            }
        }
        residual.push(expr_calc(c, &pair_vars)?);
    }

    // No equality conjunct: a single block holds the whole table.
    let key = if keys.is_empty() {
        CalcExpr::int(0)
    } else {
        tuple_key(&keys)
    };
    let groups = grouping_comp(
        FilterAlgo::Exact,
        table,
        d,
        key,
        CalcExpr::var(d),
        where_pred.clone(),
    );

    let mut quals = vec![
        Qual::Gen("g".into(), groups),
        Qual::Gen("p1".into(), CalcExpr::proj(CalcExpr::var("g"), "partition")),
        Qual::Gen("p2".into(), CalcExpr::proj(CalcExpr::var("g"), "partition")),
        Qual::Pred(CalcExpr::bin(
            BinOp::Ne,
            CalcExpr::proj(CalcExpr::var("p1"), ROWID_FIELD),
            CalcExpr::proj(CalcExpr::var("p2"), ROWID_FIELD),
        )),
    ];
    quals.extend(residual.into_iter().map(Qual::Pred));
    if quals.len() == 4 {
        // Pure-equality DC (all conjuncts were keys): any distinct pair in a
        // block violates. Nothing to add — the rowid predicate suffices.
        let _ = span;
    }
    let comp = CalcExpr::comp(
        MonoidKind::Bag,
        CalcExpr::record(vec![
            ("left", CalcExpr::var("p1")),
            ("right", CalcExpr::var("p2")),
        ]),
        quals,
    );
    Ok(DesugaredOp {
        label: format!("DC#{i}"),
        comp,
        kind: OpKind::Dc,
    })
}

/// Which of the DC tuple variables (`t1`, `t2`) an expression references.
fn tuple_var_usage(e: &Expr) -> (bool, bool) {
    match &e.kind {
        ExprKind::Column { table, .. } => match table.as_deref() {
            Some("t1") => (true, false),
            Some("t2") => (false, true),
            _ => (false, false),
        },
        ExprKind::Literal(_) | ExprKind::Star => (false, false),
        ExprKind::Call { args, .. } => args.iter().fold((false, false), |(a, b), e| {
            let (x, y) = tuple_var_usage(e);
            (a || x, b || y)
        }),
        ExprKind::BinOp { left, right, .. } => {
            let (a, b) = tuple_var_usage(left);
            let (x, y) = tuple_var_usage(right);
            (a || x, b || y)
        }
        ExprKind::Not(inner) => tuple_var_usage(inner),
    }
}

/// Flatten a top-level AND chain into its conjuncts.
fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let ExprKind::BinOp { op, left, right } = &e.kind {
        if op == "AND" {
            flatten_and(left, out);
            flatten_and(right, out);
            return;
        }
    }
    out.push(e);
}

/// Desugar `GROUP BY … [HAVING …]` into a filter-monoid grouping:
/// `⊕{ head(g) | g ← filter{ {key: gb(d), item: d} | d ← t, where }, having(g) }`
/// where aggregate calls in the head/HAVING become nested comprehensions
/// over `g.partition` and bare group-key expressions become key projections.
fn desugar_group_by(
    q: &Query,
    table: &str,
    d: &str,
    where_pred: Option<CalcExpr>,
    monoid: MonoidKind,
    row_vars: &[(Option<&str>, &str)],
) -> DResult<CalcExpr> {
    let key_exprs: Vec<CalcExpr> = q
        .group_by
        .iter()
        .map(|e| expr_calc(e, row_vars))
        .collect::<DResult<_>>()?;
    let groups = grouping_comp(
        FilterAlgo::Exact,
        table,
        d,
        tuple_key(&key_exprs),
        CalcExpr::var(d),
        where_pred,
    );

    let mut fields = Vec::with_capacity(q.select.len());
    for (i, item) in q.select.iter().enumerate() {
        let name = item.alias.clone().unwrap_or_else(|| match &item.expr.kind {
            ExprKind::Column { name, .. } => name.clone(),
            ExprKind::Call { name, .. } => name.clone(),
            _ => format!("col{i}"),
        });
        fields.push((name, grouped_expr(&item.expr, q, &key_exprs, row_vars)?));
    }
    let head = CalcExpr::Record(fields);

    let mut quals = vec![Qual::Gen("g".into(), groups)];
    if let Some(h) = &q.having {
        quals.push(Qual::Pred(grouped_expr(h, q, &key_exprs, row_vars)?));
    }
    Ok(CalcExpr::comp(monoid, head, quals))
}

const AGGREGATES: &[&str] = &["count", "count_distinct", "sum", "avg", "min", "max"];

/// Convert a select/HAVING expression in a grouped query: aggregates become
/// comprehensions over the group's partition; group-key expressions become
/// key projections; anything else referencing the row is an error, as in
/// SQL.
fn grouped_expr(
    e: &Expr,
    q: &Query,
    key_exprs: &[CalcExpr],
    row_vars: &[(Option<&str>, &str)],
) -> DResult<CalcExpr> {
    // A group-by expression is replaced by the matching key component.
    for (i, gb) in q.group_by.iter().enumerate() {
        if gb.kind == e.kind {
            let key = CalcExpr::proj(CalcExpr::var("g"), "key");
            return Ok(if key_exprs.len() == 1 {
                key
            } else {
                CalcExpr::Proj(Box::new(key), format!("k{i}"))
            });
        }
    }
    match &e.kind {
        ExprKind::Literal(v) => Ok(CalcExpr::Const(v.clone())),
        ExprKind::Call { name, args } if AGGREGATES.contains(&name.to_lowercase().as_str()) => {
            let lname = name.to_lowercase();
            // count(*) counts rows; other aggregates evaluate their
            // argument per partition member `x0`.
            let member_vars: Vec<(Option<&str>, &str)> =
                row_vars.iter().map(|(a, _)| (*a, "x0")).collect();
            let arg = match args.first() {
                None => CalcExpr::int(1),
                Some(a) if matches!(a.kind, ExprKind::Star) => CalcExpr::int(1),
                Some(a) => expr_calc(a, &member_vars)?,
            };
            let over_partition = |m: MonoidKind, head: CalcExpr| {
                CalcExpr::comp(
                    m,
                    head,
                    vec![Qual::Gen(
                        "x0".into(),
                        CalcExpr::proj(CalcExpr::var("g"), "partition"),
                    )],
                )
            };
            Ok(match lname.as_str() {
                "count" => over_partition(MonoidKind::Sum, CalcExpr::int(1)),
                "sum" => over_partition(MonoidKind::Sum, arg),
                "min" => over_partition(MonoidKind::Min, arg),
                "max" => over_partition(MonoidKind::Max, arg),
                "avg" => CalcExpr::call(Func::Avg, vec![over_partition(MonoidKind::Bag, arg)]),
                _ => CalcExpr::call(
                    Func::CountDistinct,
                    vec![over_partition(MonoidKind::Bag, arg)],
                ),
            })
        }
        ExprKind::BinOp { op, left, right } => {
            let l = grouped_expr(left, q, key_exprs, row_vars)?;
            let r = grouped_expr(right, q, key_exprs, row_vars)?;
            let op = surface_binop(op, e.span)?;
            Ok(CalcExpr::bin(op, l, r))
        }
        ExprKind::Not(inner) => Ok(CalcExpr::Not(Box::new(grouped_expr(
            inner, q, key_exprs, row_vars,
        )?))),
        ExprKind::Column { name, .. } => Err(diag(
            E205_OPERATOR_SHAPE,
            e.span,
            format!("column `{name}` must appear in GROUP BY or inside an aggregate"),
        )),
        other => Err(diag(
            E205_OPERATOR_SHAPE,
            e.span,
            format!("unsupported expression in grouped select: {other:?}"),
        )),
    }
}

fn select_head(q: &Query, row_vars: &[(Option<&str>, &str)]) -> DResult<CalcExpr> {
    // `SELECT *` keeps the whole row struct.
    if q.select.len() == 1 && matches!(q.select[0].expr.kind, ExprKind::Star) {
        return Ok(CalcExpr::var(row_vars[0].1));
    }
    let mut fields = Vec::with_capacity(q.select.len());
    for (i, item) in q.select.iter().enumerate() {
        if matches!(item.expr.kind, ExprKind::Star) {
            // Mixed star: keep the row under a reserved name.
            fields.push(("__row".to_string(), CalcExpr::var(row_vars[0].1)));
            continue;
        }
        let name = item.alias.clone().unwrap_or_else(|| match &item.expr.kind {
            ExprKind::Column { name, .. } => name.clone(),
            _ => format!("col{i}"),
        });
        fields.push((name, expr_calc(&item.expr, row_vars)?));
    }
    Ok(CalcExpr::Record(fields))
}

/// Metric re-export point for desugar consumers.
pub fn default_metric() -> Metric {
    Metric::Levenshtein
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::eval::{eval, EvalCtx};
    use crate::lang::parse_query;
    use cleanm_values::Value;

    fn row(id: i64, addr: &str, nation: i64, phone: &str, name: &str) -> Value {
        Value::record([
            (ROWID_FIELD, Value::Int(id)),
            ("address", Value::str(addr)),
            ("nationkey", Value::Int(nation)),
            ("phone", Value::str(phone)),
            ("name", Value::str(name)),
        ])
    }

    #[test]
    fn fd_comprehension_detects_violations() {
        let q = parse_query("SELECT * FROM customer c FD(c.address, c.nationkey)").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops.len(), 1);
        assert_eq!(dq.ops[0].kind, OpKind::Fd);

        let data = Value::list([
            row(0, "a st", 1, "101-1", "ann"),
            row(1, "a st", 2, "101-2", "ann b"), // violates: a st -> {1, 2}
            row(2, "b st", 3, "103-1", "bob"),
            row(3, "b st", 3, "103-2", "bobby"),
        ]);
        let mut ctx = EvalCtx::new().with_table("customer", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let groups = v.as_list().unwrap();
        assert_eq!(groups.len(), 1, "only `a st` violates: {v}");
        assert_eq!(groups[0].field("key").unwrap(), &Value::str("a st"));
    }

    #[test]
    fn fd_with_derived_rhs() {
        // The running example: address -> prefix(phone).
        let q = parse_query("SELECT * FROM customer c FD(c.address, prefix(c.phone))").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let data = Value::list([
            row(0, "a st", 1, "101-111", "x"),
            row(1, "a st", 1, "102-222", "y"), // same nation, different prefix
        ]);
        let mut ctx = EvalCtx::new().with_table("customer", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 1);
    }

    #[test]
    fn dedup_comprehension_finds_similar_pairs() {
        let q = parse_query("SELECT * FROM customer c DEDUP(exact, LD, 0.8, c.address, c.name)")
            .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops[0].kind, OpKind::Dedup);
        let data = Value::list([
            row(0, "a st", 1, "101-1", "anderson"),
            row(1, "a st", 1, "101-2", "andersen"), // same address, similar name
            row(2, "a st", 1, "101-3", "zhang"),    // same address, dissimilar
            row(3, "b st", 1, "101-4", "anderson"), // different address
        ]);
        let mut ctx = EvalCtx::new().with_table("customer", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let pairs = v.as_list().unwrap();
        assert_eq!(pairs.len(), 1, "{v}");
        let left = pairs[0].field("left").unwrap();
        assert_eq!(left.field("name").unwrap(), &Value::str("anderson"));
    }

    #[test]
    fn dedup_pairs_are_asymmetric() {
        // No (x, x) self pairs and no (b, a) mirror of (a, b).
        let q = parse_query("SELECT * FROM t DEDUP(token_filtering(2), LD, 0.8, t.name)").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let data = Value::list([row(0, "x", 1, "1", "smith"), row(1, "x", 1, "1", "smyth")]);
        let mut ctx = EvalCtx::new().with_table("t", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        // smith/smyth share tokens; exactly one ordered pair despite multi-
        // key blocking possibly co-locating them in several groups… the
        // rowid order kills mirrors but shared tokens may duplicate pairs;
        // both orders never appear.
        for p in v.as_list().unwrap() {
            let l = p.field("left").unwrap().field(ROWID_FIELD).unwrap();
            let r = p.field("right").unwrap().field(ROWID_FIELD).unwrap();
            assert!(l < r);
        }
        assert!(!v.as_list().unwrap().is_empty());
    }

    #[test]
    fn cluster_by_suggests_repairs() {
        let q = parse_query(
            "SELECT * FROM data x, dict w CLUSTER BY(token_filtering(2), LD, 0.75, x.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops[0].kind, OpKind::TermValidation);
        let data = Value::list([Value::record([
            (ROWID_FIELD, Value::Int(0)),
            ("name", Value::str("andersen")),
        ])]);
        let dict = Value::list([
            Value::record([("term", Value::str("anderson"))]),
            Value::record([("term", Value::str("zhang"))]),
        ]);
        let mut ctx = EvalCtx::new()
            .with_table("data", data)
            .with_table("dict", dict);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let repairs = v.as_list().unwrap();
        assert!(!repairs.is_empty());
        assert!(repairs
            .iter()
            .all(|r| r.field("repair").unwrap() == &Value::str("anderson")));
    }

    #[test]
    fn plain_select_desugars_to_bag() {
        let q = parse_query("SELECT c.name AS n FROM customer c WHERE c.nationkey = 1").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops.len(), 1);
        assert_eq!(dq.ops[0].kind, OpKind::Select);
        let data = Value::list([row(0, "a", 1, "1", "ann"), row(1, "b", 2, "2", "bob")]);
        let ctx = EvalCtx::new().with_table("customer", data);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let rows = v.as_list().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].field("n").unwrap(), &Value::str("ann"));
    }

    #[test]
    fn unknown_alias_is_error() {
        let q = parse_query("SELECT zz.name FROM customer c").unwrap();
        assert!(desugar_query(&q, 1).is_err());
    }

    #[test]
    fn desugar_diagnostics_carry_spans() {
        let src = "SELECT zz.name FROM customer c";
        let q = parse_query(src).unwrap();
        let ds = desugar_query_diag(&q, 1).unwrap_err();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, E201_UNKNOWN_ALIAS);
        assert_eq!(
            &src[ds[0].span.start as usize..ds[0].span.end as usize],
            "zz.name"
        );
    }

    #[test]
    fn cluster_by_without_dictionary_is_error() {
        let q = parse_query("SELECT * FROM t CLUSTER BY(tf, LD, 0.8, t.name)").unwrap();
        assert!(desugar_query(&q, 1).is_err());
    }

    #[test]
    fn dc_desugars_to_pairwise_comprehension() {
        let q =
            parse_query("SELECT * FROM t DC(t1.region = t2.region AND t1.amount > t2.amount + 50)")
                .unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        assert_eq!(dq.ops[0].kind, OpKind::Dc);
        let mk = |id: i64, region: &str, amount: i64| {
            Value::record([
                (ROWID_FIELD, Value::Int(id)),
                ("region", Value::str(region)),
                ("amount", Value::Int(amount)),
            ])
        };
        let data = Value::list([
            mk(0, "east", 10),
            mk(1, "east", 100), // violates with row 0 (100 > 10 + 50)
            mk(2, "west", 100), // different region: no pair
        ]);
        let mut ctx = EvalCtx::new().with_table("t", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        let pairs = v.as_list().unwrap();
        assert_eq!(pairs.len(), 1, "{v}");
        assert_eq!(
            pairs[0].field("left").unwrap().field(ROWID_FIELD).unwrap(),
            &Value::Int(1)
        );
    }

    #[test]
    fn dc_without_equality_uses_single_block() {
        let q = parse_query("SELECT * FROM t DC(t1.amount > t2.amount * 10)").unwrap();
        let dq = desugar_query(&q, 1).unwrap();
        let mk = |id: i64, amount: i64| {
            Value::record([
                (ROWID_FIELD, Value::Int(id)),
                ("amount", Value::Int(amount)),
            ])
        };
        let data = Value::list([mk(0, 1), mk(1, 5), mk(2, 100)]);
        let mut ctx = EvalCtx::new().with_table("t", data);
        ctx.prepare_blockers(&dq.ops[0].comp, &[]);
        let v = eval(&dq.ops[0].comp, &vec![], &ctx).unwrap();
        // 100 > 10*1 and 100 > 10*5: two ordered violating pairs.
        assert_eq!(v.as_list().unwrap().len(), 2, "{v}");
    }

    #[test]
    fn dc_requires_both_tuple_vars() {
        let q = parse_query("SELECT * FROM t DC(t1.amount > 10)").unwrap();
        let ds = desugar_query_diag(&q, 1).unwrap_err();
        assert_eq!(ds[0].code, E206_DC_VARS);
    }

    #[test]
    fn running_example_desugars_to_three_ops() {
        let q = parse_query(
            "SELECT c.name, c.address, * FROM customer c, dictionary d \
             FD(c.address, prefix(c.phone)) \
             DEDUP(token_filtering, LD, 0.8, c.address) \
             CLUSTER BY(token_filtering, LD, 0.8, c.name)",
        )
        .unwrap();
        let dq = desugar_query(&q, 7).unwrap();
        assert_eq!(dq.ops.len(), 3);
        assert_eq!(dq.ops[0].kind, OpKind::Fd);
        assert_eq!(dq.ops[1].kind, OpKind::Dedup);
        assert_eq!(dq.ops[2].kind, OpKind::TermValidation);
    }
}
