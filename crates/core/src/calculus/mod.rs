//! The monoid comprehension calculus — the paper's first abstraction level.
//!
//! Cleaning operations are "first-class citizens of the language instead of
//! black-box UDFs" (§3.2) because they all translate into one IR: monoid
//! comprehensions `⊕{ e | q₁, …, qₙ }` (Fegaras & Maier). This module holds
//!
//! * [`expr`] — the expression IR ([`CalcExpr`], [`Comprehension`],
//!   [`Qual`]) and the monoid vocabulary ([`MonoidKind`], including the
//!   grouping "filter" monoids of §4.3);
//! * [`subst`] — capture-avoiding substitution and free-variable analysis;
//! * [`eval`](mod@eval) — a reference evaluator (single-node semantics; the oracle the
//!   property tests compare the normalizer and the distributed engine
//!   against);
//! * [`compile`](mod@compile) — ahead-of-time lowering of expressions to flat,
//!   slot-resolved [`Program`]s evaluated by a non-recursive register
//!   machine (the hot-path twin of the reference evaluator; comprehensions
//!   fall back to interpreter islands);
//! * [`normalize`](mod@normalize) — the §4.2 rewrites, applied bottom-up to fixpoint;
//! * [`desugar`] — the Monoid Rewriter: CleanM AST → comprehensions, per
//!   the semantics given in §4.4.

pub mod compile;
pub mod desugar;
pub mod eval;
pub mod expr;
pub mod normalize;
pub mod subst;

pub use compile::Program;
pub use desugar::desugar_query;
pub use eval::{eval, EvalCtx};
pub use expr::{BinOp, CalcExpr, Comprehension, FilterAlgo, Func, MonoidKind, Qual};
pub use normalize::{normalize, NormalizeStats};
