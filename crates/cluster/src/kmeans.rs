//! K-means over strings: the single-pass ClusterJoin variation used for
//! blocking, plus the classic multi-pass algorithm (§4.3 "multi-pass
//! partitional algorithms").

use cleanm_text::{fixed_step_sample, levenshtein, normalize, reservoir_sample};

use crate::blocking::Blocker;

/// How to pick the k initial centers — the parameterizations of the function
/// composition monoid described in §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CenterInit {
    /// Reservoir sampling (Vitter) with the given seed.
    Reservoir { seed: u64 },
    /// The deterministic `N/k, 2N/k, …, N`-th items.
    FixedStep,
}

/// Select `k` centers from a corpus (the paper draws them from the
/// dictionary in term validation). Centers are normalized and deduplicated;
/// if dedup leaves fewer than `k`, that smaller set is returned.
pub fn select_centers<'a>(
    corpus: impl IntoIterator<Item = &'a str>,
    k: usize,
    init: CenterInit,
) -> Vec<String> {
    let normalized: Vec<String> = corpus
        .into_iter()
        .map(|t| normalize(t).into_owned())
        .collect();
    let mut centers = match init {
        CenterInit::Reservoir { seed } => reservoir_sample(normalized.iter().cloned(), k, seed),
        CenterInit::FixedStep => {
            let n = normalized.len();
            fixed_step_sample(normalized.iter().cloned(), k, n)
        }
    };
    centers.sort_unstable();
    centers.dedup();
    centers
}

/// Single-pass k-means blocker: assign each term to the center(s) whose edit
/// distance is minimal, or within `delta` of minimal ("minimum plus a delta
/// to favor multiple assignments", §4.3). Group keys are center indices.
#[derive(Debug, Clone)]
pub struct KMeansBlocker {
    centers: Vec<String>,
    /// Extra distance slack for multi-assignment; 0 = strict single cluster
    /// per (possibly tied) minimum.
    pub delta: usize,
}

impl KMeansBlocker {
    /// Build a blocker from explicit centers.
    pub fn new(centers: Vec<String>, delta: usize) -> Self {
        assert!(!centers.is_empty(), "k-means needs at least one center");
        KMeansBlocker { centers, delta }
    }

    /// Convenience: sample `k` centers from a corpus, then build the blocker.
    pub fn from_corpus<'a>(
        corpus: impl IntoIterator<Item = &'a str>,
        k: usize,
        init: CenterInit,
        delta: usize,
    ) -> Self {
        KMeansBlocker::new(select_centers(corpus, k, init), delta)
    }

    pub fn centers(&self) -> &[String] {
        &self.centers
    }

    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Indices of the assigned centers for a term.
    pub fn assign(&self, term: &str) -> Vec<usize> {
        let norm = normalize(term);
        let distances: Vec<usize> = self.centers.iter().map(|c| levenshtein(&norm, c)).collect();
        let min = *distances.iter().min().expect("non-empty centers");
        distances
            .iter()
            .enumerate()
            .filter(|(_, &d)| d <= min + self.delta)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Blocker for KMeansBlocker {
    fn keys(&self, term: &str) -> Vec<String> {
        self.assign(term)
            .into_iter()
            .map(|i| format!("km{i}"))
            .collect()
    }

    fn describe(&self) -> String {
        format!("kmeans(k={}, delta={})", self.centers.len(), self.delta)
    }
}

/// The classic multi-pass k-means (§4.3): `n` assign/recenter iterations,
/// where each iteration is one monoid comprehension over the data and the
/// recentering picks the medoid (the member minimizing total intra-cluster
/// distance — strings have no mean). Returns the final cluster assignment as
/// `clusters[i] = members`.
///
/// The paper notes this "requires multiple iterations before converging …
/// which hurts scalability"; the benchmarks use the single-pass variant and
/// this exists for completeness and the ablation bench.
pub fn kmeans_multipass(
    terms: &[String],
    k: usize,
    iterations: usize,
    seed: u64,
) -> Vec<Vec<String>> {
    if terms.is_empty() || k == 0 {
        return Vec::new();
    }
    let normalized: Vec<String> = terms.iter().map(|t| normalize(t).into_owned()).collect();
    let mut centers = select_centers(
        normalized.iter().map(|s| s.as_str()),
        k,
        CenterInit::Reservoir { seed },
    );
    let mut assignment: Vec<usize> = vec![0; normalized.len()];
    for _ in 0..iterations.max(1) {
        // Assign step (Min monoid per element).
        for (i, term) in normalized.iter().enumerate() {
            assignment[i] = centers
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| levenshtein(term, c))
                .map(|(j, _)| j)
                .unwrap_or(0);
        }
        // Recenter step: medoid of each cluster.
        let mut next_centers = centers.clone();
        for (j, center) in next_centers.iter_mut().enumerate() {
            let members: Vec<&String> = normalized
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == j)
                .map(|(t, _)| t)
                .collect();
            if members.is_empty() {
                continue;
            }
            let medoid = members
                .iter()
                .min_by_key(|cand| {
                    members
                        .iter()
                        .map(|other| levenshtein(cand, other))
                        .sum::<usize>()
                })
                .unwrap();
            *center = (*medoid).clone();
        }
        if next_centers == centers {
            break; // converged
        }
        centers = next_centers;
    }
    let mut clusters: Vec<Vec<String>> = vec![Vec::new(); centers.len()];
    for (term, &a) in terms.iter().zip(&assignment) {
        clusters[a].push(term.clone());
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        [
            "anderson",
            "andersen",
            "anderssen", // cluster A
            "zhang",
            "zhong",
            "zheng", // cluster Z
            "miller",
            "muller",
            "moeller", // cluster M
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn select_centers_reservoir_and_fixed() {
        let c = corpus();
        let r = select_centers(
            c.iter().map(|s| s.as_str()),
            3,
            CenterInit::Reservoir { seed: 1 },
        );
        assert_eq!(r.len(), 3);
        let f = select_centers(c.iter().map(|s| s.as_str()), 3, CenterInit::FixedStep);
        assert_eq!(f.len(), 3);
        // Deterministic.
        assert_eq!(
            f,
            select_centers(c.iter().map(|s| s.as_str()), 3, CenterInit::FixedStep)
        );
    }

    #[test]
    fn centers_dedup() {
        let dup = ["same", "same", "same", "same"];
        let c = select_centers(dup.iter().copied(), 3, CenterInit::FixedStep);
        assert_eq!(c, vec!["same"]);
    }

    #[test]
    fn assignment_groups_similar_words() {
        let blocker =
            KMeansBlocker::new(vec!["anderson".into(), "zhang".into(), "miller".into()], 0);
        let a1 = blocker.keys("andersen");
        let a2 = blocker.keys("anderssen");
        assert_eq!(a1, a2);
        let z = blocker.keys("zhong");
        assert_ne!(a1, z);
    }

    #[test]
    fn delta_widens_assignment() {
        let blocker0 = KMeansBlocker::new(vec!["abcd".into(), "abce".into()], 0);
        let blocker2 = KMeansBlocker::new(vec!["abcd".into(), "abce".into()], 2);
        // "abcf" is distance 1 from both: already multi-assigned at delta 0.
        assert_eq!(blocker0.keys("abcf").len(), 2);
        // "abcd" is distance 0/1: delta 2 captures both.
        assert_eq!(blocker0.keys("abcd").len(), 1);
        assert_eq!(blocker2.keys("abcd").len(), 2);
    }

    #[test]
    fn more_centers_means_smaller_groups() {
        // With more centers, the average group a word lands in is smaller —
        // the effect behind Figure 3's k sweep.
        let c = corpus();
        let b5 =
            KMeansBlocker::from_corpus(c.iter().map(|s| s.as_str()), 2, CenterInit::FixedStep, 0);
        let b9 =
            KMeansBlocker::from_corpus(c.iter().map(|s| s.as_str()), 9, CenterInit::FixedStep, 0);
        assert!(b9.k() > b5.k());
    }

    #[test]
    fn multipass_converges_to_coherent_clusters() {
        let clusters = kmeans_multipass(&corpus(), 3, 10, 7);
        let non_empty: Vec<_> = clusters.iter().filter(|c| !c.is_empty()).collect();
        assert!(non_empty.len() >= 2);
        // Every element appears exactly once.
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, corpus().len());
        // Words with the same prefix family should co-locate.
        let find = |w: &str| {
            clusters
                .iter()
                .position(|c| c.iter().any(|m| m == w))
                .unwrap()
        };
        assert_eq!(find("anderson"), find("andersen"));
    }

    #[test]
    fn multipass_edge_cases() {
        assert!(kmeans_multipass(&[], 3, 5, 1).is_empty());
        assert!(kmeans_multipass(&corpus(), 0, 5, 1).is_empty());
        let one = kmeans_multipass(&corpus(), 1, 1, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len(), corpus().len());
    }
}
