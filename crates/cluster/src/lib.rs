//! Clustering and blocking algorithms expressed as monoids.
//!
//! §4.2–4.3 of the paper prune similarity-join comparisons by first grouping
//! values so that only intra-group pairs are compared. Two families are
//! mapped to the monoid calculus:
//!
//! * **Token filtering** ([`TokenFilter`]) — split each word into q-grams and
//!   place it in one group per token; similar words share at least one token.
//! * **Single-pass k-means** ([`KMeansBlocker`], [`select_centers`]) — the
//!   ClusterJoin-inspired variation: sample k centers once, then assign every
//!   word to its closest center (optionally all centers within `delta` of the
//!   minimum, trading extra comparisons for recall).
//!
//! The common interface is [`Blocker`]: a pure function from a term to the
//! set of group keys it belongs to. Purity is exactly what makes the
//! grouping a monoid homomorphism — merging two partial group-maps is
//! associative and commutative, which [`merge_groups`] implements and the
//! property tests verify.
//!
//! The paper's optional variants are implemented too: [`kmeans_multipass`]
//! (the classic iterative algorithm, §4.3 "multi-pass partitional") and
//! [`hierarchical_cluster`] (§4.3 "hierarchical", a sequence of Min-monoid
//! steps), plus [`LengthBand`] blocking (§4.3 "extensibility").

mod blocking;
mod groups;
mod hierarchical;
mod kmeans;

pub use blocking::{Blocker, BlockerKind, ExactKey, LengthBand, TokenFilter};
pub use groups::{group_all, merge_groups, unit as group_unit, GroupMap};
pub use hierarchical::{hierarchical_cluster, Dendrogram};
pub use kmeans::{kmeans_multipass, select_centers, CenterInit, KMeansBlocker};
