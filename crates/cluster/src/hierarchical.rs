//! Agglomerative hierarchical clustering (§4.3 "hierarchical clustering").
//!
//! Each iteration "computes the items whose distance from each other is
//! minimum" — a Min-monoid step — and merges them. We implement
//! single-linkage agglomeration with a Levenshtein distance matrix and a
//! stopping threshold, returning the dendrogram of merges plus the final
//! clusters.

use cleanm_text::{levenshtein, normalize};

/// One merge step of the agglomeration: which two clusters merged and at what
/// distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dendrogram {
    /// `(left cluster id, right cluster id, distance)` per merge, in order.
    pub merges: Vec<(usize, usize, usize)>,
    /// Final clusters as member indices into the input slice.
    pub clusters: Vec<Vec<usize>>,
}

/// Cluster `terms` until the minimum inter-cluster distance exceeds
/// `max_distance` (single linkage). `O(n³)` worst case — intended for the
/// modest group sizes blocking produces, not whole datasets.
pub fn hierarchical_cluster(terms: &[String], max_distance: usize) -> Dendrogram {
    let normalized: Vec<String> = terms.iter().map(|t| normalize(t).into_owned()).collect();
    let n = normalized.len();
    let mut clusters: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut merges = Vec::new();

    loop {
        // Min monoid over live cluster pairs: the closest pair.
        let mut best: Option<(usize, usize, usize)> = None;
        let live: Vec<usize> = clusters
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
            .collect();
        for (ai, &a) in live.iter().enumerate() {
            for &b in &live[ai + 1..] {
                let d = cluster_distance(
                    clusters[a].as_ref().unwrap(),
                    clusters[b].as_ref().unwrap(),
                    &normalized,
                );
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        match best {
            Some((a, b, d)) if d <= max_distance => {
                let mut bm = clusters[b].take().unwrap();
                clusters[a].as_mut().unwrap().append(&mut bm);
                merges.push((a, b, d));
            }
            _ => break,
        }
    }

    Dendrogram {
        merges,
        clusters: clusters.into_iter().flatten().collect(),
    }
}

/// Single linkage: minimum pairwise member distance.
fn cluster_distance(a: &[usize], b: &[usize], terms: &[String]) -> usize {
    let mut min = usize::MAX;
    for &i in a {
        for &j in b {
            min = min.min(levenshtein(&terms[i], &terms[j]));
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn merges_similar_keeps_dissimilar_apart() {
        let input = terms(&["smith", "smyth", "smithe", "zhang", "zhong"]);
        let d = hierarchical_cluster(&input, 2);
        // Two clusters: the smiths and the zh*ngs.
        assert_eq!(d.clusters.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = d.clusters.iter().map(|c| c.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn zero_threshold_only_merges_identical() {
        let input = terms(&["aa", "aa", "ab"]);
        let d = hierarchical_cluster(&input, 0);
        assert_eq!(d.clusters.len(), 2);
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let input = terms(&["a", "zzzz", "qq"]);
        let d = hierarchical_cluster(&input, 100);
        assert_eq!(d.clusters.len(), 1);
        assert_eq!(d.merges.len(), 2);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(hierarchical_cluster(&[], 3).clusters.is_empty());
        let d = hierarchical_cluster(&terms(&["only"]), 3);
        assert_eq!(d.clusters, vec![vec![0]]);
        assert!(d.merges.is_empty());
    }

    #[test]
    fn merge_distances_are_nondecreasing_under_single_linkage_threshold() {
        let input = terms(&["aaaa", "aaab", "aabb", "abbb", "bbbb"]);
        let d = hierarchical_cluster(&input, 4);
        // Single linkage merge distances never exceed the threshold.
        assert!(d.merges.iter().all(|&(_, _, dist)| dist <= 4));
    }
}
