//! The group-map monoid.
//!
//! §4.3 proves token filtering is a monoid by giving its zero (the empty
//! map), its unit (`str → {(token_i, {str}), …}`) and the associativity of
//! merging group maps. This module is that structure, reified: it is used
//! both by the single-node reference paths and (in merged-per-partition form)
//! by the distributed `aggregateByKey` path, and the property tests assert
//! the monoid laws on random inputs.

use std::collections::BTreeMap;

use crate::blocking::Blocker;

/// A partial grouping: block key → members. `BTreeMap` keeps iteration
/// deterministic, which the experiments rely on for reproducibility.
pub type GroupMap = BTreeMap<String, Vec<String>>;

/// Merge two partial group maps (the monoid's ⊕). Member order within a
/// group is concatenation order; dedup happens at comparison time if needed.
pub fn merge_groups(mut left: GroupMap, right: GroupMap) -> GroupMap {
    for (key, mut members) in right {
        left.entry(key).or_default().append(&mut members);
    }
    left
}

/// The monoid's unit function: a term's singleton group map under a blocker.
pub fn unit(blocker: &dyn Blocker, term: &str) -> GroupMap {
    blocker
        .keys(term)
        .into_iter()
        .map(|k| (k, vec![term.to_string()]))
        .collect()
}

/// Fold a collection of terms into a full group map (the comprehension
/// `for (d <- data) yield filter(d.term, algo)` of §4.4).
pub fn group_all<'a>(blocker: &dyn Blocker, terms: impl IntoIterator<Item = &'a str>) -> GroupMap {
    let mut acc = GroupMap::new();
    for term in terms {
        acc = merge_groups(acc, unit(blocker, term));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::TokenFilter;
    use proptest::prelude::*;

    fn to_multiset(g: &GroupMap) -> BTreeMap<String, BTreeMap<String, usize>> {
        g.iter()
            .map(|(k, members)| {
                let mut counts = BTreeMap::new();
                for m in members {
                    *counts.entry(m.clone()).or_insert(0) += 1;
                }
                (k.clone(), counts)
            })
            .collect()
    }

    #[test]
    fn zero_is_identity() {
        let b = TokenFilter::new(2);
        let g = group_all(&b, ["anna", "bob"]);
        assert_eq!(merge_groups(g.clone(), GroupMap::new()), g);
        assert_eq!(merge_groups(GroupMap::new(), g.clone()), g);
    }

    #[test]
    fn grouping_collects_shared_tokens() {
        let b = TokenFilter::new(2);
        let g = group_all(&b, ["anna", "hanna"]);
        // "an" and "nn" and "na" are shared.
        assert_eq!(g["an"], vec!["anna", "hanna"]);
    }

    proptest! {
        /// ⊕ is associative up to member multiset (order within a group may
        /// differ, which downstream pairwise comparison does not observe).
        #[test]
        fn merge_is_associative(
            a in proptest::collection::vec("[a-d]{0,6}", 0..8),
            b in proptest::collection::vec("[a-d]{0,6}", 0..8),
            c in proptest::collection::vec("[a-d]{0,6}", 0..8),
        ) {
            let blocker = TokenFilter::new(2);
            let ga = group_all(&blocker, a.iter().map(|s| s.as_str()));
            let gb = group_all(&blocker, b.iter().map(|s| s.as_str()));
            let gc = group_all(&blocker, c.iter().map(|s| s.as_str()));
            let left = merge_groups(merge_groups(ga.clone(), gb.clone()), gc.clone());
            let right = merge_groups(ga, merge_groups(gb, gc));
            prop_assert_eq!(to_multiset(&left), to_multiset(&right));
        }

        /// ⊕ is commutative up to member multiset.
        #[test]
        fn merge_is_commutative(
            a in proptest::collection::vec("[a-d]{0,6}", 0..8),
            b in proptest::collection::vec("[a-d]{0,6}", 0..8),
        ) {
            let blocker = TokenFilter::new(2);
            let ga = group_all(&blocker, a.iter().map(|s| s.as_str()));
            let gb = group_all(&blocker, b.iter().map(|s| s.as_str()));
            let ab = merge_groups(ga.clone(), gb.clone());
            let ba = merge_groups(gb, ga);
            prop_assert_eq!(to_multiset(&ab), to_multiset(&ba));
        }

        /// Folding the whole collection equals merging per-partition folds —
        /// the homomorphism property `aggregateByKey` relies on.
        #[test]
        fn partitioned_fold_equals_global_fold(
            terms in proptest::collection::vec("[a-e]{0,8}", 0..20),
            split in 0usize..20,
        ) {
            let blocker = TokenFilter::new(2);
            let split = split.min(terms.len());
            let global = group_all(&blocker, terms.iter().map(|s| s.as_str()));
            let left = group_all(&blocker, terms[..split].iter().map(|s| s.as_str()));
            let right = group_all(&blocker, terms[split..].iter().map(|s| s.as_str()));
            let merged = merge_groups(left, right);
            prop_assert_eq!(to_multiset(&global), to_multiset(&merged));
        }
    }
}
