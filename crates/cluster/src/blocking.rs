//! The blocking interface and its implementations.

use cleanm_text::{normalize, qgrams};

use crate::kmeans::KMeansBlocker;

/// A blocker maps a term to the group keys it belongs to.
///
/// Blockers must be **pure**: the keys of a term may not depend on any other
/// term or on evaluation order. Purity makes "group the dataset by blocker
/// key" a monoid homomorphism — each element's contribution is a singleton
/// group-map, and partial maps merge associatively (see
/// [`crate::merge_groups`]) — which is what lets the paper run blocking
/// inside an `aggregateByKey` without a global pass.
pub trait Blocker: Send + Sync {
    /// The group keys for `term`. Must be non-empty so every record lands in
    /// at least one group (otherwise recall silently drops).
    fn keys(&self, term: &str) -> Vec<String>;

    /// Short description for plans and reports.
    fn describe(&self) -> String;
}

/// Token filtering (§4.3): one group per q-gram of the normalized term.
#[derive(Debug, Clone)]
pub struct TokenFilter {
    /// q-gram length. The paper evaluates q ∈ {2, 3, 4}.
    pub q: usize,
}

impl TokenFilter {
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "token length must be positive");
        TokenFilter { q }
    }
}

impl Blocker for TokenFilter {
    fn keys(&self, term: &str) -> Vec<String> {
        let norm = normalize(term);
        let mut keys: Vec<String> = qgrams(&norm, self.q);
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    fn describe(&self) -> String {
        format!("token_filtering(q={})", self.q)
    }
}

/// Exact-key blocking: one group per normalized term. This is the degenerate
/// blocker equality joins and FD grouping use.
#[derive(Debug, Clone, Default)]
pub struct ExactKey;

impl Blocker for ExactKey {
    fn keys(&self, term: &str) -> Vec<String> {
        vec![normalize(term).into_owned()]
    }

    fn describe(&self) -> String {
        "exact".to_string()
    }
}

/// Length-band blocking (§4.3 "extensibility"): terms group by
/// `len / width`, plus the neighbouring band so off-by-(width-1) lengths can
/// still meet.
#[derive(Debug, Clone)]
pub struct LengthBand {
    pub width: usize,
}

impl LengthBand {
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "band width must be positive");
        LengthBand { width }
    }
}

impl Blocker for LengthBand {
    fn keys(&self, term: &str) -> Vec<String> {
        let len = normalize(term).chars().count();
        let band = len / self.width;
        let mut keys = vec![format!("len{band}")];
        if band > 0 {
            keys.push(format!("len{}", band - 1));
        }
        keys
    }

    fn describe(&self) -> String {
        format!("length_band(width={})", self.width)
    }
}

/// Runtime-selectable blocker, as named in CleanM query text
/// (`DEDUP(token_filtering, …)`, `CLUSTER BY(kmeans, …)`).
#[derive(Debug, Clone)]
pub enum BlockerKind {
    TokenFilter(TokenFilter),
    KMeans(KMeansBlocker),
    Exact(ExactKey),
    LengthBand(LengthBand),
}

impl Blocker for BlockerKind {
    fn keys(&self, term: &str) -> Vec<String> {
        match self {
            BlockerKind::TokenFilter(b) => b.keys(term),
            BlockerKind::KMeans(b) => b.keys(term),
            BlockerKind::Exact(b) => b.keys(term),
            BlockerKind::LengthBand(b) => b.keys(term),
        }
    }

    fn describe(&self) -> String {
        match self {
            BlockerKind::TokenFilter(b) => b.describe(),
            BlockerKind::KMeans(b) => b.describe(),
            BlockerKind::Exact(b) => b.describe(),
            BlockerKind::LengthBand(b) => b.describe(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_filter_keys_are_unique_sorted() {
        let b = TokenFilter::new(2);
        let keys = b.keys("Anna"); // normalized "anna" -> an, nn, na
        assert_eq!(keys, vec!["an", "na", "nn"]);
    }

    #[test]
    fn token_filter_similar_words_share_a_key() {
        let b = TokenFilter::new(3);
        let a = b.keys("johnson");
        let c = b.keys("jonhson"); // transposed
        assert!(a.iter().any(|k| c.contains(k)), "{a:?} vs {c:?}");
    }

    #[test]
    fn every_blocker_covers_every_term() {
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(TokenFilter::new(2)),
            Box::new(ExactKey),
            Box::new(LengthBand::new(4)),
        ];
        for b in &blockers {
            for term in ["", "a", "hello world", "Σigma"] {
                assert!(!b.keys(term).is_empty(), "{} on {term:?}", b.describe());
            }
        }
    }

    #[test]
    fn exact_key_normalizes() {
        assert_eq!(ExactKey.keys("J. Smith"), vec!["j smith"]);
        assert_eq!(ExactKey.keys("j  SMITH!"), vec!["j smith"]);
    }

    #[test]
    fn length_band_adjacency() {
        let b = LengthBand::new(4);
        // len 7 -> band 1 (+band 0); len 8 -> band 2 (+band 1): they overlap on band 1.
        let k7 = b.keys("aaaaaaa");
        let k8 = b.keys("aaaaaaaa");
        assert!(k7.iter().any(|k| k8.contains(k)));
    }
}
