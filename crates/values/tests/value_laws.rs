//! Property tests on the value model: the total order is lawful, equality
//! is consistent with hashing, and grouping keys behave.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use cleanm_values::Value;
use proptest::prelude::*;

fn arb_value() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Includes NaN/infinities via full f64 range plus specials.
        prop_oneof![
            any::<f64>(),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(-0.0f64)
        ]
        .prop_map(Value::Float),
        "[a-zA-Zéß0-9 ]{0,8}".prop_map(Value::from),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::list),
            proptest::collection::vec(("[a-z]{1,3}", inner), 0..3).prop_map(|fields| {
                Value::Struct(
                    fields
                        .into_iter()
                        .map(|(n, v)| (std::sync::Arc::from(n.as_str()), v))
                        .collect(),
                )
            }),
        ]
    })
    .boxed()
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reflexive: every value equals itself (even NaN-bearing ones) — this
    /// is what makes any value usable as a grouping key.
    #[test]
    fn eq_is_reflexive(v in arb_value()) {
        prop_assert_eq!(&v, &v);
        prop_assert_eq!(v.cmp(&v), std::cmp::Ordering::Equal);
    }

    /// Antisymmetry + totality of the ordering.
    #[test]
    fn ord_is_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    /// Transitivity on triples.
    #[test]
    fn ord_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut vals = [a, b, c];
        vals.sort();
        prop_assert!(vals[0] <= vals[1] && vals[1] <= vals[2] && vals[0] <= vals[2]);
    }

    /// Hash is consistent with equality.
    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    /// Sorting is deterministic: two shuffles of the same multiset sort to
    /// the same sequence.
    #[test]
    fn sort_is_canonical(mut vals in proptest::collection::vec(arb_value(), 0..12)) {
        let mut shuffled = vals.clone();
        shuffled.reverse();
        vals.sort();
        shuffled.sort();
        prop_assert_eq!(vals, shuffled);
    }

    /// Cloning preserves equality and hashing (Arc-backed sharing).
    #[test]
    fn clone_preserves_identity(v in arb_value()) {
        let c = v.clone();
        prop_assert_eq!(&v, &c);
        prop_assert_eq!(hash_of(&v), hash_of(&c));
    }
}
