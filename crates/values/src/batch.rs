//! Typed columnar batches: the vectorized storage the physical layer
//! executes over.
//!
//! A [`ColumnBatch`] holds one partition of rows column-wise: per-field
//! vectors of `i64` / `f64` / `bool` / shared `Arc<str>` with a null
//! bitmap, falling back to boxed [`Value`]s for mixed-type or nested
//! columns. The batch is a *view discipline*, not a new data model — every
//! cell reconstructs to exactly the [`Value`] it was built from
//! ([`ColumnBatch::row`] is byte-identical to the source row), so the
//! row-at-a-time interpreter remains the semantics of record and columnar
//! kernels are pinned against it by differential tests.
//!
//! Selection vectors ([`SelVec`]) carry "which rows survive" between
//! kernels as plain row indices: a predicate sweep refines the selection
//! in place and downstream operators gather only the survivors.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// A selection vector: ascending row indices into a [`ColumnBatch`].
pub type SelVec = Vec<u32>;

/// The identity selection over `len` rows.
pub fn sel_all(len: usize) -> SelVec {
    (0..len as u32).collect()
}

/// A null bitmap over one column: bit set ⇒ the slot is NULL (the typed
/// data vector holds a default at that slot).
#[derive(Debug, Clone, Default)]
pub struct NullMask {
    bits: Vec<u64>,
    count: usize,
}

impl NullMask {
    /// An all-valid mask for `len` slots.
    pub fn new(len: usize) -> Self {
        NullMask {
            bits: vec![0u64; len.div_ceil(64)],
            count: 0,
        }
    }

    /// Mark slot `i` as NULL, growing the bitmap if needed.
    pub fn set_null(&mut self, i: usize) {
        if i / 64 >= self.bits.len() {
            self.bits.resize(i / 64 + 1, 0);
        }
        let w = &mut self.bits[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.count += 1;
        }
    }

    /// Is slot `i` NULL? Slots past the bitmap's end are valid (the bitmap
    /// only grows to cover the highest NULL ever set).
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self.bits.get(i / 64) {
            Some(w) => (w >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        self.count
    }
}

/// One typed column of a [`ColumnBatch`]. Typed variants keep a default at
/// NULL slots; [`Column::Val`] is the generic fallback for mixed-type or
/// nested (list/struct) columns.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int {
        /// Cell values (`0` at NULL slots).
        data: Vec<i64>,
        /// NULL positions, when any.
        nulls: Option<NullMask>,
    },
    /// 64-bit floats.
    Float {
        /// Cell values (`0.0` at NULL slots).
        data: Vec<f64>,
        /// NULL positions, when any.
        nulls: Option<NullMask>,
    },
    /// Booleans.
    Bool {
        /// Cell values (`false` at NULL slots).
        data: Vec<bool>,
        /// NULL positions, when any.
        nulls: Option<NullMask>,
    },
    /// Shared strings — cells are refcounted, so gathers and identity
    /// transforms never copy bytes.
    Str {
        /// Cell values (a shared empty string at NULL slots).
        data: Vec<Arc<str>>,
        /// NULL positions, when any.
        nulls: Option<NullMask>,
    },
    /// Generic fallback: boxed values, evaluated row-at-a-time.
    Val(Vec<Value>),
}

impl Column {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { data, .. } => data.len(),
            Column::Float { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
            Column::Str { data, .. } => data.len(),
            Column::Val(data) => data.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is cell `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int { nulls, .. }
            | Column::Float { nulls, .. }
            | Column::Bool { nulls, .. }
            | Column::Str { nulls, .. } => nulls.as_ref().is_some_and(|m| m.is_null(i)),
            Column::Val(data) => data[i].is_null(),
        }
    }

    /// Reconstruct cell `i` as the exact [`Value`] it was built from.
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            Column::Int { data, .. } => Value::Int(data[i]),
            Column::Float { data, .. } => Value::Float(data[i]),
            Column::Bool { data, .. } => Value::Bool(data[i]),
            Column::Str { data, .. } => Value::Str(Arc::clone(&data[i])),
            Column::Val(data) => data[i].clone(),
        }
    }

    /// Build a typed column from owned values (used by format decoders
    /// that already produced one `Vec<Value>` per column). Falls back to
    /// [`Column::Val`] for mixed-type or nested content.
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut b = ColumnBuilder::new();
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    /// Gather the cells selected by `sel` into a new column, preserving
    /// selection order. String cells gather by refcount bump.
    pub fn gather(&self, sel: &[u32]) -> Column {
        fn mask<T: Clone>(data: &[T], nulls: &Option<NullMask>, sel: &[u32]) -> Option<NullMask> {
            let m = nulls.as_ref()?;
            let mut out = NullMask::new(sel.len());
            for (j, &i) in sel.iter().enumerate() {
                if m.is_null(i as usize) {
                    out.set_null(j);
                }
            }
            let _ = data;
            (out.null_count() > 0).then_some(out)
        }
        match self {
            Column::Int { data, nulls } => Column::Int {
                data: sel.iter().map(|&i| data[i as usize]).collect(),
                nulls: mask(data, nulls, sel),
            },
            Column::Float { data, nulls } => Column::Float {
                data: sel.iter().map(|&i| data[i as usize]).collect(),
                nulls: mask(data, nulls, sel),
            },
            Column::Bool { data, nulls } => Column::Bool {
                data: sel.iter().map(|&i| data[i as usize]).collect(),
                nulls: mask(data, nulls, sel),
            },
            Column::Str { data, nulls } => Column::Str {
                data: sel.iter().map(|&i| Arc::clone(&data[i as usize])).collect(),
                nulls: mask(data, nulls, sel),
            },
            Column::Val(data) => {
                Column::Val(sel.iter().map(|&i| data[i as usize].clone()).collect())
            }
        }
    }
}

/// Incremental typed-column builder with progressive type inference:
/// starts untyped, locks to the first non-NULL type it sees, and demotes
/// to the generic [`Column::Val`] fallback on the first mismatch (the
/// already-pushed cells are reconstructed exactly).
#[derive(Debug)]
pub struct ColumnBuilder {
    kind: BuilderKind,
    len: usize,
}

#[derive(Debug)]
enum BuilderKind {
    /// Only NULLs so far (`usize` = how many).
    Empty(usize),
    Int(Vec<i64>, Option<NullMask>),
    Float(Vec<f64>, Option<NullMask>),
    Bool(Vec<bool>, Option<NullMask>),
    Str(Vec<Arc<str>>, Option<NullMask>),
    Val(Vec<Value>),
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::new()
    }
}

fn push_null<T: Default>(data: &mut Vec<T>, nulls: &mut Option<NullMask>, cap_hint: usize) {
    let i = data.len();
    data.push(T::default());
    nulls
        .get_or_insert_with(|| NullMask::new(cap_hint.max(i + 1)))
        .set_null(i);
}

impl ColumnBuilder {
    /// A fresh, untyped builder.
    pub fn new() -> Self {
        ColumnBuilder {
            kind: BuilderKind::Empty(0),
            len: 0,
        }
    }

    /// Number of cells pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No cells pushed yet?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one cell.
    pub fn push(&mut self, v: Value) {
        self.len += 1;
        // Type-lock on first non-null; demote to Val on mismatch.
        let demote = match (&mut self.kind, &v) {
            (BuilderKind::Empty(n), Value::Null) => {
                *n += 1;
                return;
            }
            (BuilderKind::Empty(n), _) => {
                let n = *n;
                let mut kind = match &v {
                    Value::Int(_) => BuilderKind::Int(Vec::new(), None),
                    Value::Float(_) => BuilderKind::Float(Vec::new(), None),
                    Value::Bool(_) => BuilderKind::Bool(Vec::new(), None),
                    Value::Str(_) => BuilderKind::Str(Vec::new(), None),
                    _ => BuilderKind::Val(Vec::new()),
                };
                // Re-play the leading NULLs into the typed storage.
                for _ in 0..n {
                    match &mut kind {
                        BuilderKind::Int(d, m) => push_null(d, m, n),
                        BuilderKind::Float(d, m) => push_null(d, m, n),
                        BuilderKind::Bool(d, m) => push_null(d, m, n),
                        BuilderKind::Str(d, m) => push_null(d, m, n),
                        BuilderKind::Val(d) => d.push(Value::Null),
                        BuilderKind::Empty(_) => unreachable!(),
                    }
                }
                self.kind = kind;
                self.len -= 1; // recurse once for the actual value
                self.push(v);
                return;
            }
            (BuilderKind::Int(d, m), Value::Null) => {
                push_null(d, m, 0);
                return;
            }
            (BuilderKind::Int(d, _), Value::Int(i)) => {
                d.push(*i);
                return;
            }
            (BuilderKind::Float(d, m), Value::Null) => {
                push_null(d, m, 0);
                return;
            }
            (BuilderKind::Float(d, _), Value::Float(f)) => {
                d.push(*f);
                return;
            }
            (BuilderKind::Bool(d, m), Value::Null) => {
                push_null(d, m, 0);
                return;
            }
            (BuilderKind::Bool(d, _), Value::Bool(b)) => {
                d.push(*b);
                return;
            }
            (BuilderKind::Str(d, m), Value::Null) => {
                push_null(d, m, 0);
                return;
            }
            (BuilderKind::Str(d, _), Value::Str(s)) => {
                d.push(Arc::clone(s));
                return;
            }
            (BuilderKind::Val(d), _) => {
                d.push(v);
                return;
            }
            _ => true,
        };
        debug_assert!(demote);
        // Mismatched type: reconstruct what we have as boxed values and
        // continue generic.
        let done = std::mem::replace(&mut self.kind, BuilderKind::Empty(0)).finish();
        let mut vals: Vec<Value> = (0..done.len()).map(|i| done.value(i)).collect();
        vals.push(v);
        self.kind = BuilderKind::Val(vals);
    }

    /// Finish into a [`Column`].
    pub fn finish(self) -> Column {
        self.kind.finish()
    }
}

impl BuilderKind {
    fn finish(self) -> Column {
        match self {
            // An all-NULL column stays generic: no type to vectorize over.
            BuilderKind::Empty(n) => Column::Val(vec![Value::Null; n]),
            BuilderKind::Int(data, nulls) => Column::Int { data, nulls },
            BuilderKind::Float(data, nulls) => Column::Float { data, nulls },
            BuilderKind::Bool(data, nulls) => Column::Bool { data, nulls },
            BuilderKind::Str(data, nulls) => Column::Str { data, nulls },
            BuilderKind::Val(data) => Column::Val(data),
        }
    }
}

/// One partition of rows stored column-wise: shared field names plus one
/// [`Column`] per field. Construction from rows requires every row to be a
/// struct with the *same field names in the same order* (the executor's
/// per-partition schema invariant) — anything else returns `None` and the
/// caller keeps the row path.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    len: usize,
    names: Vec<Arc<str>>,
    cols: Vec<Column>,
}

impl ColumnBatch {
    /// Columnarize `rows` (each a [`Value::Struct`] with an identical
    /// field-name sequence). `None` when the rows are not uniform structs.
    pub fn from_rows(rows: &[Value]) -> Option<ColumnBatch> {
        let Some(first) = rows.first() else {
            return Some(ColumnBatch {
                len: 0,
                names: Vec::new(),
                cols: Vec::new(),
            });
        };
        let Ok(template) = first.as_struct() else {
            return None;
        };
        let names: Vec<Arc<str>> = template.iter().map(|(n, _)| Arc::clone(n)).collect();
        let mut builders: Vec<ColumnBuilder> =
            (0..names.len()).map(|_| ColumnBuilder::new()).collect();
        for row in rows {
            let Ok(fields) = row.as_struct() else {
                return None;
            };
            if fields.len() != names.len() {
                return None;
            }
            for ((name, value), (want, b)) in
                fields.iter().zip(names.iter().zip(builders.iter_mut()))
            {
                if !Arc::ptr_eq(name, want) && name != want {
                    return None; // shuffled or renamed schema → row fallback
                }
                b.push(value.clone());
            }
        }
        Some(ColumnBatch {
            len: rows.len(),
            names,
            cols: builders.into_iter().map(ColumnBuilder::finish).collect(),
        })
    }

    /// Assemble a batch from pre-built columns. Fails when column lengths
    /// disagree.
    pub fn from_columns(names: Vec<Arc<str>>, cols: Vec<Column>) -> Result<ColumnBatch> {
        if names.len() != cols.len() {
            return Err(Error::Invalid(format!(
                "{} column names for {} columns",
                names.len(),
                cols.len()
            )));
        }
        let len = cols.first().map_or(0, Column::len);
        if let Some(bad) = cols.iter().find(|c| c.len() != len) {
            return Err(Error::Invalid(format!(
                "ragged columns: expected {len} rows, found {}",
                bad.len()
            )));
        }
        Ok(ColumnBatch { len, names, cols })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No rows?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Field names, in field order.
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    /// The columns, in field order.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Column index of `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n.as_ref() == name)
    }

    /// The column at field index `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    /// Reconstruct row `i` as the exact [`Value::Struct`] it was built
    /// from (field names shared by refcount).
    pub fn row(&self, i: usize) -> Value {
        let fields: Arc<[(Arc<str>, Value)]> = self
            .names
            .iter()
            .zip(&self.cols)
            .map(|(n, c)| (Arc::clone(n), c.value(i)))
            .collect();
        Value::Struct(fields)
    }

    /// Reconstruct every row (round-trip tests, row-path handoff).
    pub fn to_rows(&self) -> Vec<Value> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Gather the rows selected by `sel` into a new batch.
    pub fn gather(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            len: sel.len(),
            names: self.names.clone(),
            cols: self.cols.iter().map(|c| c.gather(sel)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Value {
        Value::record([
            ("id", Value::Int(i)),
            ("score", Value::Float(i as f64 / 2.0)),
            ("name", Value::str(format!("n{i}"))),
        ])
    }

    #[test]
    fn round_trips_uniform_rows() {
        let rows: Vec<Value> = (0..10).map(row).collect();
        let batch = ColumnBatch::from_rows(&rows).expect("uniform structs columnarize");
        assert_eq!(batch.len(), 10);
        assert!(matches!(batch.column(0), Column::Int { .. }));
        assert!(matches!(batch.column(1), Column::Float { .. }));
        assert!(matches!(batch.column(2), Column::Str { .. }));
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn nulls_round_trip() {
        let rows = vec![
            Value::record([("a", Value::Null), ("b", Value::str("x"))]),
            Value::record([("a", Value::Int(2)), ("b", Value::Null)]),
            Value::record([("a", Value::Null), ("b", Value::str("y"))]),
        ];
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        assert_eq!(batch.to_rows(), rows);
        assert!(batch.column(0).is_null(0));
        assert!(!batch.column(0).is_null(1));
        assert!(batch.column(1).is_null(1));
    }

    #[test]
    fn mixed_type_column_falls_back_to_val() {
        let rows = vec![
            Value::record([("a", Value::Int(1))]),
            Value::record([("a", Value::str("two"))]),
        ];
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        assert!(matches!(batch.column(0), Column::Val(_)));
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn nan_and_negative_zero_round_trip_bitwise() {
        let rows = vec![
            Value::record([("f", Value::Float(f64::NAN))]),
            Value::record([("f", Value::Float(-0.0))]),
        ];
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let back = batch.to_rows();
        match (&back[0], &back[1]) {
            (Value::Struct(a), Value::Struct(b)) => {
                assert!(matches!(a[0].1, Value::Float(f) if f.is_nan()));
                assert!(matches!(b[0].1, Value::Float(f) if f == 0.0 && f.is_sign_negative()));
            }
            _ => panic!("expected structs"),
        }
    }

    #[test]
    fn shuffled_schema_is_rejected() {
        let rows = vec![
            Value::record([("a", Value::Int(1)), ("b", Value::Int(2))]),
            Value::record([("b", Value::Int(2)), ("a", Value::Int(1))]),
        ];
        assert!(ColumnBatch::from_rows(&rows).is_none());
        let ragged = vec![
            Value::record([("a", Value::Int(1))]),
            Value::record([("a", Value::Int(1)), ("b", Value::Int(2))]),
        ];
        assert!(ColumnBatch::from_rows(&ragged).is_none());
        assert!(ColumnBatch::from_rows(&[Value::Int(3)]).is_none());
    }

    #[test]
    fn empty_input_yields_empty_batch() {
        let batch = ColumnBatch::from_rows(&[]).unwrap();
        assert!(batch.is_empty());
        assert!(batch.to_rows().is_empty());
    }

    #[test]
    fn gather_preserves_selection_order_and_nulls() {
        let rows = vec![
            Value::record([("a", Value::Int(0))]),
            Value::record([("a", Value::Null)]),
            Value::record([("a", Value::Int(2))]),
            Value::record([("a", Value::Int(3))]),
        ];
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let picked = batch.gather(&[3, 1]);
        assert_eq!(
            picked.to_rows(),
            vec![
                Value::record([("a", Value::Int(3))]),
                Value::record([("a", Value::Null)]),
            ]
        );
    }

    #[test]
    fn all_null_column_stays_generic() {
        let rows = vec![
            Value::record([("a", Value::Null)]),
            Value::record([("a", Value::Null)]),
        ];
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        assert!(matches!(batch.column(0), Column::Val(_)));
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn builder_demotes_and_reconstructs_exactly() {
        let mut b = ColumnBuilder::new();
        b.push(Value::Float(1.5));
        b.push(Value::Null);
        b.push(Value::Int(7)); // mismatch: Int into a Float column
        let col = b.finish();
        assert!(matches!(col, Column::Val(_)));
        assert_eq!(col.value(0), Value::Float(1.5));
        assert!(col.value(1).is_null());
        // Exact variant preserved — Int(7), not Float(7.0).
        assert!(matches!(col.value(2), Value::Int(7)));
    }

    #[test]
    fn sel_all_covers_every_row() {
        assert_eq!(sel_all(3), vec![0, 1, 2]);
        assert!(sel_all(0).is_empty());
    }
}
