//! Zero-copy string views over shared [`Value::Str`] storage.
//!
//! The text builtins (`prefix`, `lower`, `trim`, tokenizers…) used to
//! return a freshly allocated `String` per call, which made
//! transformation workloads allocation-bound: most calls return either
//! the input unchanged (a string that is already lowercase, already
//! trimmed) or a plain slice of it. [`StrView`] is the intermediate those
//! builtins thread through evaluation instead — it remembers *where the
//! bytes live*, and only materializes an owned value at a record-build
//! boundary ([`StrView::into_value`]). When the view covers its entire
//! shared source, materialization is a reference-count bump on the
//! source's `Arc<str>` — no bytes are copied at all.

use std::sync::Arc;

use crate::value::Value;

/// A string intermediate that remembers where its bytes live: a slice of
/// a shared `Arc<str>`, a plain borrow, or freshly computed text. Built by
/// the zero-copy text builtins; converted to an owned [`Value`] only at
/// record-build boundaries.
///
/// ```
/// use std::sync::Arc;
/// use cleanm_values::{StrView, Value};
///
/// let src: Arc<str> = Arc::from("already lowercase");
/// // A view covering the whole source materializes by bumping the
/// // refcount — the returned value shares the source allocation.
/// let v = StrView::whole(&src).into_value();
/// match v {
///     Value::Str(s) => assert!(Arc::ptr_eq(&s, &src)),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub enum StrView<'a> {
    /// A byte-range slice of a shared source string. `start..end` must lie
    /// on `char` boundaries of `src`.
    Shared {
        /// The shared source the slice points into.
        src: &'a Arc<str>,
        /// Start byte offset (inclusive).
        start: usize,
        /// End byte offset (exclusive).
        end: usize,
    },
    /// Borrowed text with no shared allocation behind it (e.g. rendered
    /// from a non-string value on the caller's stack).
    Borrowed(&'a str),
    /// Freshly computed text (case folding that actually changed bytes,
    /// concatenation).
    Owned(String),
}

impl<'a> StrView<'a> {
    /// A view covering the whole shared source — materializes without
    /// copying.
    pub fn whole(src: &'a Arc<str>) -> Self {
        StrView::Shared {
            src,
            start: 0,
            end: src.len(),
        }
    }

    /// A sub-slice of a shared source by byte range. Panics (on access)
    /// if the range is out of bounds or splits a `char`.
    pub fn slice(src: &'a Arc<str>, start: usize, end: usize) -> Self {
        StrView::Shared { src, start, end }
    }

    /// The viewed text.
    pub fn as_str(&self) -> &str {
        match self {
            StrView::Shared { src, start, end } => &src[*start..*end],
            StrView::Borrowed(s) => s,
            StrView::Owned(s) => s,
        }
    }

    /// Is this view guaranteed to materialize without copying bytes (a
    /// whole-source shared view)?
    pub fn is_zero_copy(&self) -> bool {
        matches!(self, StrView::Shared { src, start, end } if *start == 0 && *end == src.len())
    }

    /// Materialize into an owned [`Value::Str`]. A whole-source shared
    /// view clones the source `Arc` (no bytes copied); everything else
    /// pays exactly one allocation here — the *only* place one can occur.
    pub fn into_value(self) -> Value {
        match self {
            StrView::Shared { src, start, end } if start == 0 && end == src.len() => {
                Value::Str(Arc::clone(src))
            }
            other => Value::Str(Arc::from(other.as_str())),
        }
    }
}

impl<'a> From<&'a str> for StrView<'a> {
    fn from(s: &'a str) -> Self {
        StrView::Borrowed(s)
    }
}

impl From<String> for StrView<'_> {
    fn from(s: String) -> Self {
        StrView::Owned(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_view_materializes_by_refcount() {
        let src: Arc<str> = Arc::from("abc");
        let v = StrView::whole(&src);
        assert!(v.is_zero_copy());
        match v.into_value() {
            Value::Str(s) => assert!(Arc::ptr_eq(&s, &src)),
            other => panic!("expected Str, got {other:?}"),
        }
    }

    #[test]
    fn partial_slice_allocates_once_with_right_bytes() {
        let src: Arc<str> = Arc::from("123-4567");
        let v = StrView::slice(&src, 0, 3);
        assert!(!v.is_zero_copy());
        assert_eq!(v.as_str(), "123");
        assert_eq!(v.into_value(), Value::str("123"));
    }

    #[test]
    fn borrowed_and_owned_views() {
        assert_eq!(StrView::from("xy").as_str(), "xy");
        assert_eq!(
            StrView::from(String::from("z")).into_value(),
            Value::str("z")
        );
    }
}
