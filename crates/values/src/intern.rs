//! A process-wide symbol table for row field names.
//!
//! Every registered row is a [`Value::Struct`](crate::Value) whose field
//! names repeat for every row of a table; allocating a fresh `Arc<str>` per
//! row per field made registration and the string/transform builtins
//! allocation-bound. [`intern`] returns one shared `Arc<str>` per distinct
//! name, so building a million-row table clones a handful of pointers
//! instead of allocating a million short strings.
//!
//! The table only ever holds *field names* (schema columns, operator output
//! fields like `key` / `partition` / `left` / `right`), a small closed set —
//! it is deliberately unbounded, and callers must not intern data values.

use std::sync::{Arc, Mutex, OnceLock};

use crate::fxhash::FxHashSet;

fn table() -> &'static Mutex<FxHashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<FxHashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(FxHashSet::default()))
}

/// The canonical shared `Arc<str>` for a field name.
pub fn intern(name: &str) -> Arc<str> {
    let mut set = table().lock().expect("intern table poisoned");
    if let Some(existing) = set.get(name) {
        return Arc::clone(existing);
    }
    let fresh: Arc<str> = Arc::from(name);
    set.insert(Arc::clone(&fresh));
    fresh
}

/// Intern every name in a schema-like list at once (one lock acquisition).
pub fn intern_all<'a>(names: impl IntoIterator<Item = &'a str>) -> Vec<Arc<str>> {
    let mut set = table().lock().expect("intern table poisoned");
    names
        .into_iter()
        .map(|name| {
            if let Some(existing) = set.get(name) {
                Arc::clone(existing)
            } else {
                let fresh: Arc<str> = Arc::from(name);
                set.insert(Arc::clone(&fresh));
                fresh
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_one_allocation() {
        let a = intern("nationkey");
        let b = intern("nationkey");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.as_ref(), "nationkey");
    }

    #[test]
    fn intern_all_matches_single_interning() {
        let batch = intern_all(["alpha_field", "beta_field"]);
        assert_eq!(batch.len(), 2);
        assert!(Arc::ptr_eq(&batch[0], &intern("alpha_field")));
        assert!(Arc::ptr_eq(&batch[1], &intern("beta_field")));
    }
}
