use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Error, Result};

/// A dynamically typed value.
///
/// `Value` is the unit of data everywhere in the workspace: rows are vectors
/// of values, nested collections are `List`s, and semi-structured records
/// (JSON/XML) are `Struct`s. Strings and containers are reference-counted so
/// cloning a value during shuffles is cheap.
///
/// Equality, ordering and hashing are **total**: floats are compared via
/// canonicalized bits (`NaN` equals `NaN` and sorts last), so any value can be
/// used as a grouping or join key — a requirement for the paper's filter
/// monoids.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// SQL NULL / missing value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, totally ordered via canonical bits.
    Float(f64),
    /// Immutable shared string.
    Str(Arc<str>),
    /// Ordered collection of values (JSON array, XML repeated element).
    List(Arc<[Value]>),
    /// Named fields (JSON object, XML element). Field order is significant
    /// and preserved from the source.
    Struct(Arc<[(Arc<str>, Value)]>),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// Construct a struct value from `(name, value)` pairs.
    pub fn record(fields: impl IntoIterator<Item = (impl AsRef<str>, Value)>) -> Self {
        Value::Struct(
            fields
                .into_iter()
                .map(|(n, v)| (Arc::from(n.as_ref()), v))
                .collect(),
        )
    }

    /// The variant name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Struct(_) => "struct",
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean; `Null` is *not* truthy.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::TypeMismatch {
                expected: "bool",
                found: other.type_name(),
            }),
        }
    }

    /// Extract an integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error::TypeMismatch {
                expected: "int",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a float, widening integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::TypeMismatch {
                expected: "float",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::TypeMismatch {
                expected: "string",
                found: other.type_name(),
            }),
        }
    }

    /// Extract the elements of a list.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(Error::TypeMismatch {
                expected: "list",
                found: other.type_name(),
            }),
        }
    }

    /// Extract the fields of a struct.
    pub fn as_struct(&self) -> Result<&[(Arc<str>, Value)]> {
        match self {
            Value::Struct(fields) => Ok(fields),
            other => Err(Error::TypeMismatch {
                expected: "struct",
                found: other.type_name(),
            }),
        }
    }

    /// Look up a field by name on a struct value.
    pub fn field(&self, name: &str) -> Result<&Value> {
        let fields = self.as_struct()?;
        fields
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::UnknownField(name.to_string()))
    }

    /// A copy of this struct with the named field's value replaced. Errors
    /// on non-structs and unknown fields; every untouched cell is shared
    /// (`Arc` clones), so a single-cell repair of a wide row is cheap.
    pub fn with_field(&self, name: &str, value: Value) -> Result<Value> {
        let fields = self.as_struct()?;
        let mut found = false;
        let out: Vec<(Arc<str>, Value)> = fields
            .iter()
            .map(|(n, v)| {
                if n.as_ref() == name {
                    found = true;
                    (Arc::clone(n), value.clone())
                } else {
                    (Arc::clone(n), v.clone())
                }
            })
            .collect();
        if !found {
            return Err(Error::UnknownField(name.to_string()));
        }
        Ok(Value::Struct(out.into()))
    }

    /// A copy of this struct with the named field removed (identity when
    /// the field is absent). Errors on non-structs.
    pub fn without_field(&self, name: &str) -> Result<Value> {
        let fields = self.as_struct()?;
        Ok(Value::Struct(
            fields
                .iter()
                .filter(|(n, _)| n.as_ref() != name)
                .cloned()
                .collect(),
        ))
    }

    /// Render the value as a plain string: the textual content for scalars
    /// (no quotes), and a JSON-ish rendering for containers. Used when a
    /// cleaning operator needs "the words of" a value.
    pub fn to_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.to_string(),
            Value::List(_) | Value::Struct(_) => self.to_string(),
        }
    }

    /// Canonical bits for a float: all NaNs collapse to one pattern and
    /// `-0.0` collapses to `0.0`, so equal-looking floats group together.
    /// Public so vectorized kernels can replicate the total float order
    /// (and hash) over raw `f64` columns without boxing each cell.
    pub fn float_key(f: f64) -> u64 {
        if f.is_nan() {
            u64::MAX
        } else if f == 0.0 {
            // +0.0 and -0.0 share the mapped key of +0.0.
            1u64 << 63
        } else {
            // Map to a lexicographically ordered bit pattern.
            let bits = f.to_bits();
            if bits >> 63 == 0 {
                bits | (1 << 63)
            } else {
                !bits
            }
        }
    }
}

/// Format a float the way the CSV/JSON writers expect: integral floats keep a
/// trailing `.0` so they round-trip as floats.
pub(crate) fn format_float(f: f64) -> String {
    if f.is_finite() && f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => Value::float_key(*a).cmp(&Value::float_key(*b)),
            // Numeric cross-type comparison so `1` and `1.0` group together.
            (Int(a), Float(b)) => Value::float_key(*a as f64).cmp(&Value::float_key(*b)),
            (Float(a), Int(b)) => Value::float_key(*a).cmp(&Value::float_key(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => a.iter().cmp(b.iter()),
            (Struct(a), Struct(b)) => {
                let by_field = |x: &(Arc<str>, Value), y: &(Arc<str>, Value)| {
                    x.0.cmp(&y.0).then_with(|| x.1.cmp(&y.1))
                };
                let mut ai = a.iter();
                let mut bi = b.iter();
                loop {
                    match (ai.next(), bi.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some(x), Some(y)) => match by_field(x, y) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        },
                    }
                }
            }
            // Cross-type ordering by variant rank keeps `Ord` total.
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Value {
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::List(_) => 4,
            Value::Struct(_) => 5,
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Float hash identically when numerically equal, matching
            // the cross-type Ord above.
            Value::Int(i) => {
                state.write_u8(2);
                Value::float_key(*i as f64).hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                Value::float_key(*f).hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::List(items) => {
                state.write_u8(4);
                for v in items.iter() {
                    v.hash(state);
                }
            }
            Value::Struct(fields) => {
                state.write_u8(5);
                for (n, v) in fields.iter() {
                    n.hash(state);
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", format_float(*x)),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Struct(fields) => {
                write!(f, "{{")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert_eq!(Value::Float(2.5).as_float().unwrap(), 2.5);
        assert_eq!(Value::Int(2).as_float().unwrap(), 2.0);
        assert_eq!(Value::str("x").as_str().unwrap(), "x");
        assert!(Value::Null.as_int().is_err());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn int_float_numeric_equivalence() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(hash_of(&Value::Int(1)), hash_of(&Value::Float(1.0)));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
    }

    #[test]
    fn nan_is_total() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, Value::Float(f64::NAN));
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
        assert!(Value::Float(1e300) < nan);
    }

    #[test]
    fn negative_zero_groups_with_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn float_ordering_matches_ieee_on_normals() {
        let xs = [-3.5, -1.0, 0.0, 0.25, 2.0, 1e10];
        for w in xs.windows(2) {
            assert!(
                Value::Float(w[0]) < Value::Float(w[1]),
                "{} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn struct_field_lookup() {
        let v = Value::record([("a", Value::Int(1)), ("b", Value::str("x"))]);
        assert_eq!(v.field("a").unwrap(), &Value::Int(1));
        assert!(matches!(v.field("zz"), Err(Error::UnknownField(_))));
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::list([Value::Int(1), Value::Int(2)]);
        let b = Value::list([Value::Int(1), Value::Int(3)]);
        let c = Value::list([Value::Int(1)]);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn display_roundtrips_shape() {
        let v = Value::record([
            ("name", Value::str("Ann")),
            ("tags", Value::list([Value::str("x"), Value::str("y")])),
        ]);
        assert_eq!(v.to_string(), "{name: Ann, tags: [x, y]}");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Float(3.25).to_string(), "3.25");
    }

    #[test]
    fn cross_type_order_is_stable() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(9) < Value::str(""));
        assert!(Value::str("zz") < Value::list([]));
    }

    #[test]
    fn to_text_renders_scalars_plainly() {
        assert_eq!(Value::str("abc").to_text(), "abc");
        assert_eq!(Value::Int(-4).to_text(), "-4");
        assert_eq!(Value::Null.to_text(), "");
    }
}
