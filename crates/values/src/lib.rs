#![warn(missing_docs)]

//! Nested data model for the CleanM reproduction.
//!
//! The paper's CleanDB queries heterogeneous data (CSV, JSON, XML, columnar
//! binary), so the value model must represent both flat relational tuples and
//! nested collections (e.g. a DBLP publication with a list of authors).
//!
//! * [`Value`] — a dynamically typed value with total equality, ordering and
//!   hashing (floats are compared by canonicalized bits so values can be used
//!   as grouping keys).
//! * [`DataType`] / [`Schema`] / [`Field`] — logical types.
//! * [`Row`] — one record: a boxed slice of values positionally matching a
//!   schema.

mod batch;
mod error;
mod fxhash;
mod intern;
mod row;
mod strview;
mod types;
mod value;

pub use batch::{sel_all, Column, ColumnBatch, ColumnBuilder, NullMask, SelVec};
pub use error::{Error, Result};
pub use fxhash::{fx_hash, FxBuildHasher, FxHashMap, FxHashSet, FxHasher, HASH_SEED};
pub use intern::{intern, intern_all};
pub use row::{Row, Table};
pub use strview::StrView;
pub use types::{DataType, Field, Schema};
pub use value::Value;
