use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// Logical type of a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Homogeneous list with the given element type.
    List(Box<DataType>),
    /// Nested record with named fields.
    Struct(Vec<Field>),
}

impl DataType {
    /// Does `value` inhabit this type? `Null` inhabits every type (types are
    /// nullable, as in SQL).
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Int, Value::Int(_)) => true,
            (DataType::Float, Value::Float(_) | Value::Int(_)) => true,
            (DataType::Str, Value::Str(_)) => true,
            (DataType::List(elem), Value::List(items)) => items.iter().all(|v| elem.admits(v)),
            (DataType::Struct(fields), Value::Struct(vals)) => {
                fields.len() == vals.len()
                    && fields
                        .iter()
                        .zip(vals.iter())
                        .all(|(f, (n, v))| f.name == n.as_ref() && f.dtype.admits(v))
            }
            _ => false,
        }
    }

    /// Parse textual data (CSV cell) into this type. Empty strings become
    /// `Null` for non-string types.
    pub fn parse(&self, text: &str) -> Result<Value> {
        match self {
            DataType::Str => Ok(Value::str(text)),
            _ if text.is_empty() => Ok(Value::Null),
            DataType::Bool => match text {
                "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
                "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
                other => Err(Error::Parse(format!("`{other}` is not a bool"))),
            },
            DataType::Int => text
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::Parse(format!("`{text}` is not an int: {e}"))),
            DataType::Float => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::Parse(format!("`{text}` is not a float: {e}"))),
            DataType::List(_) | DataType::Struct(_) => Err(Error::Parse(format!(
                "cannot parse nested type {self} from flat text"
            ))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Str => write!(f, "string"),
            DataType::List(e) => write!(f, "list<{e}>"),
            DataType::Struct(fields) => {
                write!(f, "struct<")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", field.name, field.dtype)?;
                }
                write!(f, ">")
            }
        }
    }
}

/// One named, typed column or struct member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (unique within a schema).
    pub name: String,
    /// The column's logical type.
    pub dtype: DataType,
}

impl Field {
    /// Build a named, typed field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// A relation schema: an ordered list of uniquely named fields.
///
/// Schemas are `Arc`-shared between rows, plans, and readers, so cloning a
/// `Schema` handle is cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Build a schema, checking field-name uniqueness.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(Error::InvalidSchema(format!(
                    "duplicate field name `{}`",
                    f.name
                )));
            }
        }
        Ok(Schema {
            fields: fields.into(),
        })
    }

    /// Shorthand for building a schema from `(name, type)` pairs; panics on
    /// duplicates — intended for statically known schemas in tests/examples.
    pub fn of(pairs: impl IntoIterator<Item = (&'static str, DataType)>) -> Self {
        Schema::new(pairs.into_iter().map(|(n, t)| Field::new(n, t)).collect())
            .expect("static schema must be valid")
    }

    /// The fields, in schema order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Does the schema have no fields?
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::UnknownField(name.to_string()))
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// A new schema with `other`'s fields appended, prefixing clashing names
    /// with `prefix` (used when joining two relations).
    pub fn join(&self, other: &Schema, prefix: &str) -> Result<Schema> {
        let mut fields: Vec<Field> = self.fields.to_vec();
        for f in other.fields() {
            let name = if fields.iter().any(|g| g.name == f.name) {
                format!("{prefix}{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.dtype.clone()));
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
        assert!(matches!(err, Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::of([("x", DataType::Int), ("y", DataType::Str)]);
        assert_eq!(s.index_of("y").unwrap(), 1);
        assert!(s.index_of("z").is_err());
        assert_eq!(s.field("x").unwrap().dtype, DataType::Int);
    }

    #[test]
    fn parse_by_type() {
        assert_eq!(DataType::Int.parse("42").unwrap(), Value::Int(42));
        assert_eq!(DataType::Float.parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(DataType::Str.parse("").unwrap(), Value::str(""));
        assert_eq!(DataType::Int.parse("").unwrap(), Value::Null);
        assert!(DataType::Int.parse("x").is_err());
        assert_eq!(DataType::Bool.parse("true").unwrap(), Value::Bool(true));
    }

    #[test]
    fn admits_checks_nesting() {
        let t = DataType::List(Box::new(DataType::Int));
        assert!(t.admits(&Value::list([Value::Int(1), Value::Null])));
        assert!(!t.admits(&Value::list([Value::str("x")])));
        assert!(t.admits(&Value::Null));

        let s = DataType::Struct(vec![Field::new("a", DataType::Int)]);
        assert!(s.admits(&Value::record([("a", Value::Int(1))])));
        assert!(!s.admits(&Value::record([("b", Value::Int(1))])));
    }

    #[test]
    fn join_prefixes_clashes() {
        let a = Schema::of([("k", DataType::Int), ("v", DataType::Str)]);
        let b = Schema::of([("k", DataType::Int), ("w", DataType::Str)]);
        let j = a.join(&b, "r_").unwrap();
        let names: Vec<_> = j.fields().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["k", "v", "r_k", "w"]);
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::of([
            ("id", DataType::Int),
            ("tags", DataType::List(Box::new(DataType::Str))),
        ]);
        assert_eq!(s.to_string(), "(id: int, tags: list<string>)");
    }
}
