//! Seeded FxHash-style hashing for grouping and partitioning.
//!
//! Every wide operator in the runtime hashes its keys — to pick a shuffle
//! target and to index the per-partition grouping tables. The standard
//! library's default hasher (SipHash 1-3) is keyed for HashDoS resistance
//! the engine does not need: grouping keys are the workload's own data, the
//! tables are transient, and a *deterministic* assignment is actively
//! desirable (stable partition layouts across runs make shuffles, plans and
//! benches reproducible). This module provides the multiply-rotate hasher
//! popularized by rustc (`FxHasher`), extended with an explicit **seed** so
//! determinism is a named constant rather than an accident, and with a
//! final avalanche mix so the low bits — the ones `hash % partitions` and
//! hash-table indexing consume — depend on every input byte.
//!
//! The one hash each key needs is computed once: shuffle drivers carry the
//! 64-bit hash alongside the key (see `cleanm_exec`), so a key is hashed
//! exactly once no matter how many tables and shuffle hops it crosses.

use std::hash::{BuildHasher, Hash, Hasher};

/// The fixed seed every engine-internal grouping structure uses. Changing
/// it re-shuffles every partition assignment, so it is part of the
/// engine's observable determinism contract (pinned by proptests).
pub const HASH_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The multiplier of the Fx multiply-rotate round (the same constant rustc
/// uses: a random odd 64-bit number with good bit dispersion).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A seeded Fx-style streaming hasher: one rotate-xor-multiply round per
/// 8-byte word, with a final xor-shift avalanche in [`Hasher::finish`].
///
/// Not DoS-resistant by design — use only on data the engine already owns.
#[derive(Debug, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A hasher starting from `seed`.
    #[inline]
    pub fn with_seed(seed: u64) -> FxHasher {
        FxHasher { hash: seed }
    }

    #[inline]
    fn round(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Default for FxHasher {
    #[inline]
    fn default() -> Self {
        FxHasher::with_seed(HASH_SEED)
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.round(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "c" and "a" + "bc" differ.
            self.round(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.round(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.round(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.round(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.round(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.round(i as u64);
        self.round((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.round(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Xor-shift-multiply avalanche: Fx alone leaves the low bits of
        // short inputs poorly mixed, and both `% partitions` and hashbrown's
        // bucket index read exactly those bits.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

/// [`BuildHasher`] for [`FxHasher`] carrying an explicit seed.
#[derive(Debug, Clone, Copy)]
pub struct FxBuildHasher {
    seed: u64,
}

impl FxBuildHasher {
    /// The engine-default seeded builder ([`HASH_SEED`]).
    #[inline]
    pub fn new() -> FxBuildHasher {
        FxBuildHasher { seed: HASH_SEED }
    }

    /// A builder hashing from a caller-chosen seed.
    #[inline]
    pub fn with_seed(seed: u64) -> FxBuildHasher {
        FxBuildHasher { seed }
    }
}

impl Default for FxBuildHasher {
    #[inline]
    fn default() -> Self {
        FxBuildHasher::new()
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::with_seed(self.seed)
    }
}

/// A `HashMap` keyed by the seeded fast hasher — the engine's grouping map.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` over the seeded fast hasher — the engine's distinct set.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash one value with the seeded fast hasher. This is the single hash a
/// grouping key pays: shuffle drivers compute it once and carry it with the
/// key from the map-side table through the shuffle to the merge table.
#[inline]
pub fn fx_hash<T: Hash + ?Sized>(seed: u64, value: &T) -> u64 {
    let mut h = FxHasher::with_seed(seed);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn deterministic_across_hashers_with_same_seed() {
        let v = Value::record([("k", Value::str("main st")), ("n", Value::Int(7))]);
        assert_eq!(fx_hash(HASH_SEED, &v), fx_hash(HASH_SEED, &v));
        assert_ne!(fx_hash(HASH_SEED, &v), fx_hash(HASH_SEED ^ 1, &v));
    }

    #[test]
    fn int_and_float_keys_agree_like_value_eq() {
        // Value's Hash canonicalizes numerics; the hasher must preserve it.
        assert_eq!(
            fx_hash(HASH_SEED, &Value::Int(42)),
            fx_hash(HASH_SEED, &Value::Float(42.0))
        );
    }

    #[test]
    fn chunk_boundaries_do_not_collide() {
        // Same bytes split differently across write() calls still hash the
        // byte stream; different streams with shared prefixes diverge.
        let a = fx_hash(HASH_SEED, "abcdefgh-1");
        let b = fx_hash(HASH_SEED, "abcdefgh-2");
        assert_ne!(a, b);
        assert_ne!(fx_hash(HASH_SEED, "ab"), fx_hash(HASH_SEED, "a\u{0}"));
    }

    #[test]
    fn low_bits_spread_over_partitions() {
        // 10k sequential int keys over 7 partitions: every partition gets a
        // meaningful share (the avalanche keeps `% n` usable).
        let mut counts = [0usize; 7];
        for i in 0..10_000i64 {
            counts[(fx_hash(HASH_SEED, &Value::Int(i)) % 7) as usize] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            assert!(c > 10_000 / 7 / 2, "partition {p} starved: {counts:?}");
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<Value, u64> = FxHashMap::default();
        m.insert(Value::str("a"), 1);
        assert_eq!(m[&Value::str("a")], 1);
        let mut s: FxHashSet<Value> = FxHashSet::default();
        s.insert(Value::Int(1));
        assert!(s.contains(&Value::Float(1.0)), "numeric canonicalization");
    }
}
