use std::fmt;

/// Errors produced across the CleanM workspace when manipulating values,
/// schemas and rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A value had a different runtime type than the operation required.
    TypeMismatch {
        /// What the operation needed (e.g. `"string"`).
        expected: &'static str,
        /// What it actually found (the [`crate::Value`] variant name).
        found: &'static str,
    },
    /// A field name was not present in a schema or struct value.
    UnknownField(String),
    /// A positional index was out of bounds for a row or list.
    IndexOutOfBounds {
        /// The requested position.
        index: usize,
        /// The container's length.
        len: usize,
    },
    /// A schema was malformed (duplicate field names, empty, ...).
    InvalidSchema(String),
    /// Parsing a textual value into a typed value failed.
    Parse(String),
    /// Catch-all for other invariant violations; the message says which.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::UnknownField(name) => write!(f, "unknown field `{name}`"),
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            Error::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;
