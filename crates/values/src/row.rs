use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::types::Schema;
use crate::value::Value;

/// One record: values positionally matching a [`Schema`].
///
/// Rows deliberately do not carry their schema — the executing plan knows the
/// schema of every intermediate relation, and keeping rows lean matters when
/// millions are shuffled between workers. Values inside are `Arc`-backed, so
/// `Row::clone` is cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Build a row from owned values.
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: values.into(),
        }
    }

    /// The row's values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values (the arity).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the row zero-arity?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> Result<&Value> {
        self.values.get(i).ok_or(Error::IndexOutOfBounds {
            index: i,
            len: self.values.len(),
        })
    }

    /// A new row with `other`'s values appended (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// A new row keeping only the given positions, in order (projection).
    pub fn project(&self, indices: &[usize]) -> Result<Row> {
        let mut values = Vec::with_capacity(indices.len());
        for &i in indices {
            values.push(self.get(i)?.clone());
        }
        Ok(Row::new(values))
    }

    /// A new row with `extra` values appended.
    pub fn extend(&self, extra: impl IntoIterator<Item = Value>) -> Row {
        let mut values = self.values.to_vec();
        values.extend(extra);
        Row::new(values)
    }

    /// Package the row as a [`Value::Struct`] using the schema's field names
    /// (used when nesting rows inside group values). Field names go through
    /// the process-wide intern table so repeated conversion of a table's
    /// rows shares one allocation per column name.
    pub fn to_struct(&self, schema: &Schema) -> Value {
        let names = crate::intern::intern_all(schema.fields().iter().map(|f| f.name.as_str()));
        Value::Struct(names.into_iter().zip(self.values.iter().cloned()).collect())
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row {
            values: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// A schema plus its rows: the unit a reader produces and the engine
/// registers as a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// The relation's schema.
    pub schema: Schema,
    /// The rows, positionally matching [`Table::schema`].
    pub rows: Vec<Row>,
}

impl Table {
    /// Pair a schema with its rows (no validation; see [`Table::validate`]).
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        Table { schema, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Does the table hold no rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Check every row against the schema: arity and types.
    pub fn validate(&self) -> Result<()> {
        for (ri, row) in self.rows.iter().enumerate() {
            if row.len() != self.schema.len() {
                return Err(Error::Invalid(format!(
                    "row {ri} has {} values, schema has {} fields",
                    row.len(),
                    self.schema.len()
                )));
            }
            for (field, value) in self.schema.fields().iter().zip(row.values()) {
                if !field.dtype.admits(value) {
                    return Err(Error::Invalid(format!(
                        "row {ri}: value `{value}` does not inhabit {} (field `{}`)",
                        field.dtype, field.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Column values by field name.
    pub fn column(&self, name: &str) -> Result<Vec<&Value>> {
        let i = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(|r| &r.values()[i]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::of([("id", DataType::Int), ("name", DataType::Str)])
    }

    #[test]
    fn get_and_bounds() {
        let r = Row::new(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(r.get(0).unwrap(), &Value::Int(1));
        assert!(matches!(
            r.get(5),
            Err(Error::IndexOutOfBounds { index: 5, len: 2 })
        ));
    }

    #[test]
    fn concat_and_project() {
        let a = Row::new(vec![Value::Int(1), Value::str("a")]);
        let b = Row::new(vec![Value::Bool(true)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let p = c.project(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Bool(true), Value::Int(1)]);
        assert!(c.project(&[9]).is_err());
    }

    #[test]
    fn to_struct_uses_field_names() {
        let r = Row::new(vec![Value::Int(7), Value::str("bob")]);
        let s = r.to_struct(&schema());
        assert_eq!(s.field("name").unwrap(), &Value::str("bob"));
    }

    #[test]
    fn table_validate_catches_arity_and_type() {
        let ok = Table::new(
            schema(),
            vec![Row::new(vec![Value::Int(1), Value::str("a")])],
        );
        ok.validate().unwrap();

        let bad_arity = Table::new(schema(), vec![Row::new(vec![Value::Int(1)])]);
        assert!(bad_arity.validate().is_err());

        let bad_type = Table::new(
            schema(),
            vec![Row::new(vec![Value::str("x"), Value::str("a")])],
        );
        assert!(bad_type.validate().is_err());
    }

    #[test]
    fn column_extraction() {
        let t = Table::new(
            schema(),
            vec![
                Row::new(vec![Value::Int(1), Value::str("a")]),
                Row::new(vec![Value::Int(2), Value::str("b")]),
            ],
        );
        let names = t.column("name").unwrap();
        assert_eq!(names, vec![&Value::str("a"), &Value::str("b")]);
        assert!(t.column("zz").is_err());
    }

    #[test]
    fn display() {
        let r = Row::new(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(r.to_string(), "[1, a]");
    }
}
