//! Minimal `criterion` stand-in: same macro/entry-point API
//! (`criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_with_input` / `Bencher::iter`), but a simple timing loop instead
//! of criterion's statistics. Prints median / min / max per benchmark.
//! Iteration count is the group's `sample_size` (capped by the
//! `CLEANM_BENCH_SAMPLES` env var, default cap 20) so `cargo bench` stays
//! laptop-sized.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once for warmup, then `samples` timed iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std_black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

fn sample_cap() -> usize {
    std::env::var("CLEANM_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.min(sample_cap()).max(1),
        times: Vec::new(),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("{name:<50} (no measurements)");
        return;
    }
    b.times.sort();
    let median = b.times[b.times.len() / 2];
    let min = b.times[0];
    let max = *b.times.last().unwrap();
    println!("{name:<50} median {median:>10.2?}  min {min:>10.2?}  max {max:>10.2?}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs >= 4, "warmup + samples: {runs}");
    }
}
