//! Minimal `serde` stand-in: marker traits plus no-op derives, enough for
//! `#[derive(Serialize, Deserialize)]` annotations to compile offline.

/// Marker trait; the real serde's serialization machinery is not shimmed.
pub trait Serialize {}

/// Marker trait; the real serde's deserialization machinery is not shimmed.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
