//! No-op `Serialize` / `Deserialize` derives: the workspace only uses the
//! derives as documentation of intent (no actual serialization happens in
//! the offline build), so they expand to nothing. Swap the shim for the real
//! serde when a network-enabled build needs wire formats.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
