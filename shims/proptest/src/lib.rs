//! Minimal `proptest` stand-in: deterministic random test-case generation
//! with the same surface syntax (`proptest!`, `prop_assert*!`, `prop_oneof!`,
//! `Strategy::prop_map` / `prop_recursive` / `boxed`, `any::<T>()`,
//! `proptest::collection::vec`, ranges and string patterns as strategies).
//!
//! Differences from the real crate, deliberate for an offline build:
//! * no shrinking — a failing case is reported as generated;
//! * the RNG is seeded from the test name, so runs are fully deterministic;
//! * string "regex" strategies support the subset used in this workspace:
//!   literal chars, `.`, character classes `[a-z0-9é ]`, and quantifiers
//!   `{m}`, `{m,n}`, `*`, `+`, `?`.

use std::ops::Range;
use std::sync::Arc;

/// Deterministic xoshiro-free splitmix-based RNG for test generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failing property, carried out of the test body by `prop_assert*!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy: 'static {
    type Value: 'static;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: 'static, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.sample(rng)))
    }

    /// Recursive structures: `levels` rounds of wrapping the accumulated
    /// strategy with `recurse`, mixing in the leaf at every level so depth
    /// is distributed. `_desired_size` / `_branch` accepted for parity.
    fn prop_recursive<S2, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..levels.min(8) {
            let deeper = recurse(strat).boxed();
            strat = OneOf::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: 'static,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backend).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: 'static> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: 'static> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

// ---- primitive strategies -------------------------------------------------

/// `any::<T>()` marker.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a default "anything" strategy.
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix small values (edge-prone) with full-width randomness.
                match rng.below(4) {
                    0 => (rng.below(7) as i64 - 3) as $t,
                    1 => <$t>::MIN.wrapping_add((rng.below(3)) as $t),
                    2 => <$t>::MAX.wrapping_sub((rng.below(3)) as $t),
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(4) {
            // Small, human-scale values.
            0 => (rng.below(2001) as f64 - 1000.0) / 8.0,
            // Unit interval.
            1 => rng.unit_f64(),
            // Raw bit patterns (may be NaN / infinities / subnormals).
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

/// Number ranges are strategies (uniform).
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

pub mod bool {
    /// `proptest::bool::ANY`.
    pub struct AnyBool;

    impl super::Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: AnyBool = AnyBool;
}

// ---- string pattern strategies --------------------------------------------

/// The supported pattern atoms.
enum Atom {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Quantified> {
    let mut chars = pat.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => {
                let mut tokens: Vec<char> = Vec::new();
                for cc in chars.by_ref() {
                    if cc == ']' {
                        break;
                    }
                    tokens.push(cc);
                }
                let mut ranges = Vec::new();
                let mut i = 0;
                while i < tokens.len() {
                    if i + 2 < tokens.len() && tokens[i + 1] == '-' {
                        ranges.push((tokens[i], tokens[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((tokens[i], tokens[i]));
                        i += 1;
                    }
                }
                if ranges.is_empty() {
                    ranges.push(('a', 'z'));
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut digits = String::new();
                let mut min = 0usize;
                let max: Option<usize>;
                let mut saw_comma = false;
                for cc in chars.by_ref() {
                    match cc {
                        '}' => break,
                        ',' => {
                            min = digits.parse().unwrap_or(0);
                            digits.clear();
                            saw_comma = true;
                        }
                        d => digits.push(d),
                    }
                }
                if saw_comma {
                    max = digits.parse().ok();
                } else {
                    min = digits.parse().unwrap_or(1);
                    max = Some(min);
                }
                (min, max.unwrap_or(min + 8))
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        out.push(Quantified { atom, min, max });
    }
    out
}

/// Character pool for `.`: printable ASCII plus CSV/JSON stress characters
/// and a few multibyte code points.
const ANY_CHARS: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '"', '\'', ',', ';',
    ':', '.', '-', '_', '/', '\\', '(', ')', '[', ']', '{', '}', '<', '>', '|', '&', '#', '%', '@',
    '!', '?', '*', '+', '=', 'é', 'ß', 'λ', '中', '🦀',
];

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => ANY_CHARS[rng.below(ANY_CHARS.len())],
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len())];
            let (lo, hi) = (lo as u32, (hi as u32).max(lo as u32));
            char::from_u32(lo + rng.below((hi - lo + 1) as usize) as u32)
                .unwrap_or(lo as u8 as char)
        }
    }
}

/// `&str` patterns are string strategies.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for q in parse_pattern(self) {
            let n = q.min + rng.below(q.max - q.min + 1);
            for _ in 0..n {
                out.push(sample_atom(&q.atom, rng));
            }
        }
        out
    }
}

// ---- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// ---- collections -----------------------------------------------------------

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let n = self.size.start + rng.below(span);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---- macros ----------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assert_eq failed at {}:{}:\n  left: {:?}\n right: {:?}",
                file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assert_eq failed at {}:{}:\n  left: {:?}\n right: {:?}\n {}",
                file!(), line!(), l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assert_ne failed at {}:{}: both {:?}",
                file!(),
                line!(),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed on case {}/{}:\n{}",
                        stringify!($name), case + 1, cfg.cases, e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = Strategy::sample(&"[a-zA-Z0-9é ]{0,8}", &mut rng);
            assert!(t.chars().count() <= 8);

            let _any = Strategy::sample(&".*", &mut rng);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_name("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::sample(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_structures_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_name("recursive");
        for _ in 0..100 {
            let _ = Strategy::sample(&strat, &mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro machinery itself: bindings, asserts, multiple args.
        #[test]
        fn macro_roundtrip(a in 0i64..100, mut v in crate::collection::vec(0u8..10, 0..5)) {
            v.push(a as u8 % 10);
            prop_assert!(v.len() >= 1);
            prop_assert_eq!(v.last().copied().unwrap() as i64, a % 10);
        }
    }
}
