//! Minimal `rand` 0.8 stand-in: a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via splitmix64) behind the [`Rng`] / [`SeedableRng`]
//! / [`seq::SliceRandom`] traits, covering exactly the API the workspace
//! uses (`gen`, `gen_bool`, `gen_range` over int/float ranges, `shuffle`,
//! `choose`). Not cryptographic; statistically fine for workload generation.

use std::ops::{Range, RangeInclusive};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core trait: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of a [`Standard`]-samplable type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Uniform value in `range` (half-open or inclusive, int or float).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Mirrors `rand::SeedableRng` for the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::*;

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable by `rng.gen()`.
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable between two bounds (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough for type
/// inference: `Range<T>` implements `SampleRange<T>` generically, so integer
/// literals unify with the surrounding expression instead of falling back to
/// `i32`).
pub trait SampleUniform: Copy {
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: Rng>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod seq {
    use super::Rng;

    /// Mirrors `rand::seq::SliceRandom`: in-place Fisher–Yates shuffle and
    /// uniform element choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(0..=10u32);
            assert!(y <= 10);
            let f = rng.gen_range(1.5..=2.5);
            assert!((1.5..=2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniformish_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
