//! Minimal `bytes` stand-in: [`Bytes`] / [`BytesMut`] plus the [`Buf`] /
//! [`BufMut`] trait methods the `colbin` format uses. `Bytes` shares its
//! backing buffer via `Arc` and reads advance a cursor, like the real crate.

use std::sync::Arc;

/// Cheaply cloneable, immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Zero-copy sub-range view (relative to the current cursor).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "Bytes::slice out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn slice_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "Bytes: slice out of range");
        let out = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        out
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

/// Read-side trait: cursor-advancing little-endian accessors.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i64_le(&mut self) -> i64;
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.slice_to(len)
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.as_ref()[0];
        self.start += 1;
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let raw: [u8; 4] = self.as_ref()[..4].try_into().unwrap();
        self.start += 4;
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let raw: [u8; 8] = self.as_ref()[..8].try_into().unwrap();
        self.start += 8;
        u64::from_le_bytes(raw)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait: appending little-endian writers.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        w.put_slice(b"end");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 1.5);
        let tail = b.copy_to_bytes(3);
        assert_eq!(tail.as_ref(), b"end");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_shares_backing() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 3);
    }
}
