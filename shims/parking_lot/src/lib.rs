//! Minimal `parking_lot` stand-in over `std::sync`, exposing only the API
//! this workspace uses: a non-poisoning [`Mutex`] (plus [`RwLock`] for good
//! measure). Lock poisoning is ignored — a panicked holder's data is still
//! returned, matching parking_lot semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
