//! Format substrate integration: the same generated data must survive
//! round-trips through every format, and flattening must commute with them.

use cleanm::datagen::dblp::DblpGen;
use cleanm::datagen::tpch::LineitemGen;
use cleanm::formats::{colbin, csv, flatten, json, xml};
use proptest::prelude::*;

#[test]
fn lineitem_survives_all_flat_formats() {
    let table = LineitemGen::new(21).rows(500).generate().table;

    let text = csv::write_str(&table, &csv::CsvOptions::default());
    let from_csv = csv::read_str(&text, &table.schema, &csv::CsvOptions::default()).unwrap();
    assert_eq!(from_csv.rows, table.rows, "CSV");

    let from_bin = colbin::decode(colbin::encode(&table).unwrap()).unwrap();
    assert_eq!(from_bin.rows, table.rows, "colbin");

    let jsonl = json::write_table(&table);
    let from_json = json::read_table(&jsonl, &table.schema).unwrap();
    assert_eq!(from_json.rows, table.rows, "JSON");
}

#[test]
fn nested_dblp_survives_nested_formats() {
    let table = DblpGen::new(22).publications(200).generate().table;

    let jsonl = json::write_table(&table);
    let from_json = json::read_table(&jsonl, &table.schema).unwrap();
    assert_eq!(from_json.rows, table.rows, "JSON nested");

    let from_bin = colbin::decode(colbin::encode(&table).unwrap()).unwrap();
    assert_eq!(from_bin.rows, table.rows, "colbin nested");

    let xml_text = xml::write_table(&table, "dblp", "pub");
    let from_xml = xml::read_table(&xml_text, &table.schema).unwrap();
    assert_eq!(from_xml.rows, table.rows, "XML nested");
}

#[test]
fn flatten_commutes_with_serialization() {
    let nested = DblpGen::new(23).publications(150).generate().table;
    // flatten(read(write(nested))) == read(write(flatten(nested)))
    let via_nested = {
        let jsonl = json::write_table(&nested);
        let back = json::read_table(&jsonl, &nested.schema).unwrap();
        flatten::flatten(&back).unwrap()
    };
    let via_flat = {
        let flat = flatten::flatten(&nested).unwrap();
        let text = csv::write_str(&flat, &csv::CsvOptions::default());
        csv::read_str(&text, &flat.schema, &csv::CsvOptions::default()).unwrap()
    };
    assert_eq!(via_nested.rows, via_flat.rows);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary strings (quotes, commas, newlines, unicode) survive CSV.
    #[test]
    fn csv_cell_roundtrip(cells in proptest::collection::vec(".*", 1..5)) {
        use cleanm::values::{DataType, Row, Schema, Table, Value};
        let fields: Vec<(String, DataType)> = (0..cells.len())
            .map(|i| (format!("c{i}"), DataType::Str))
            .collect();
        let schema = Schema::new(
            fields
                .iter()
                .map(|(n, t)| cleanm::values::Field::new(n.clone(), t.clone()))
                .collect(),
        )
        .unwrap();
        let table = Table::new(
            schema.clone(),
            vec![Row::new(cells.iter().map(Value::str).collect())],
        );
        let text = csv::write_str(&table, &csv::CsvOptions::default());
        let back = csv::read_str(&text, &schema, &csv::CsvOptions::default()).unwrap();
        prop_assert_eq!(back.rows, table.rows);
    }

    /// Arbitrary strings survive JSON.
    #[test]
    fn json_string_roundtrip(s in ".*") {
        use cleanm::values::Value;
        let v = Value::record([("s", Value::str(&s))]);
        let text = json::to_string(&v);
        prop_assert_eq!(json::parse(&text).unwrap(), v);
    }
}
