//! End-to-end guarantees for the cost-based profile: `EngineProfile::
//! adaptive()` is a *physical* policy like the fixed three, so it must
//! produce identical logical results on the quickstart workloads — while
//! collecting its statistics in a single pass and explaining its choices.

use cleanm::core::physical::NestStrategy;
use cleanm::core::{CleanDb, EngineProfile};
use cleanm::datagen::customer::CustomerGen;
use cleanm::datagen::mag::MagGen;

fn all_profiles() -> Vec<EngineProfile> {
    vec![
        EngineProfile::clean_db(),
        EngineProfile::spark_sql_like(),
        EngineProfile::big_dansing_like(),
        EngineProfile::adaptive(),
    ]
}

const QUICKSTART: &str = "SELECT c.name, c.address FROM customer c \
     FD(c.address, c.nationkey) \
     DEDUP(exact, LD, 0.8, c.address, c.name)";

#[test]
fn adaptive_agrees_with_every_fixed_profile_on_quickstart() {
    let data = CustomerGen::new(42)
        .rows(500)
        .duplicate_fraction(0.1)
        .generate();
    let mut results = Vec::new();
    for profile in all_profiles() {
        let mut db = CleanDb::new(profile.clone());
        db.register("customer", data.table.clone());
        let report = db.run(QUICKSTART).unwrap();
        assert!(report.violations() > 0, "{}", profile.name);
        results.push((profile.name.clone(), report.violating_ids));
    }
    for pair in results.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "{} and {} disagree",
            pair[0].0, pair[1].0
        );
    }
}

#[test]
fn adaptive_agrees_on_skewed_mag_workload() {
    let data = MagGen::new(7).papers(1_200).authors(30).generate();
    let mut results = Vec::new();
    for profile in all_profiles() {
        let mut db = CleanDb::new(profile.clone());
        db.register("mag", data.table.clone());
        let report = db
            .run("SELECT * FROM mag t DEDUP(exact, LD, 0.8, t.authorid, t.title)")
            .unwrap();
        results.push((profile.name.clone(), report.violating_ids));
    }
    for pair in results.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "{} and {} disagree",
            pair[0].0, pair[1].0
        );
    }
}

#[test]
fn stats_collection_is_a_single_pass() {
    // Acceptance: TableStats collection is one summarize_partitions pass —
    // it sees every row exactly once and shuffles exactly one partial per
    // partition, verified by the exec stage counters.
    let data = CustomerGen::new(9)
        .rows(2_000)
        .duplicate_fraction(0.05)
        .generate();
    let rows = data.table.len();
    let mut db = CleanDb::new(EngineProfile::adaptive());
    db.register("customer", data.table);
    let report = db
        .run("SELECT * FROM customer c FD(c.address, c.nationkey)")
        .unwrap();

    let stat_stages: Vec<_> = report
        .metrics
        .stages
        .iter()
        .filter(|s| s.operator == "summarize_partitions")
        .collect();
    assert_eq!(stat_stages.len(), 1, "exactly one collection pass");
    assert_eq!(
        stat_stages[0].records_in as usize, rows,
        "every row seen once"
    );
    let partitions = db.context().default_partitions() as u64;
    assert_eq!(
        stat_stages[0].records_shuffled, partitions,
        "only one partial summary per partition moves"
    );
}

#[test]
fn adaptive_decisions_are_visible_and_stat_driven() {
    // Zipf-skewed MAG: authorid has heavy hitters, so grouping on it must
    // avoid the sort shuffle and say why.
    let data = MagGen::new(11).papers(2_000).authors(25).generate();
    let mut db = CleanDb::new(EngineProfile::adaptive());
    db.register("mag", data.table);
    let report = db
        .run("SELECT * FROM mag t DEDUP(exact, LD, 0.8, t.authorid, t.title)")
        .unwrap();
    let nest_decisions: Vec<_> = report
        .decisions
        .iter()
        .filter(|d| d.operator == "nest")
        .collect();
    assert!(!nest_decisions.is_empty());
    for d in &nest_decisions {
        assert_ne!(d.reason, "fixed profile", "{d}");
        assert_ne!(
            d.strategy,
            format!("{:?}", NestStrategy::SortShuffle),
            "sort shuffle must not be chosen under skew: {d}"
        );
    }
    // The consulted statistics are part of the report.
    assert!(report.table_stats.contains_key("mag"));
}

#[test]
fn adaptive_profile_flag_is_consistent() {
    let a = EngineProfile::adaptive();
    assert!(a.adaptive && a.share_plans && a.push_selective_filters);
    for fixed in [
        EngineProfile::clean_db(),
        EngineProfile::spark_sql_like(),
        EngineProfile::big_dansing_like(),
    ] {
        assert!(!fixed.adaptive, "{}", fixed.name);
    }
}
