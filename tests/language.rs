//! Language-surface integration tests: the full SQL+cleaning grammar
//! executed end-to-end through the engine.

use cleanm::core::{CleanDb, EngineProfile};
use cleanm::values::{DataType, Row, Schema, Table, Value};

fn orders_table() -> Table {
    let schema = Schema::of([
        ("region", DataType::Str),
        ("amount", DataType::Float),
        ("status", DataType::Str),
    ]);
    let rows = vec![
        ("east", 10.0, "open"),
        ("east", 20.0, "closed"),
        ("west", 5.0, "open"),
        ("west", 15.0, "open"),
        ("west", 40.0, "closed"),
        ("north", 100.0, "open"),
    ]
    .into_iter()
    .map(|(r, a, s)| Row::new(vec![Value::str(r), Value::Float(a), Value::str(s)]))
    .collect();
    Table::new(schema, rows)
}

fn db() -> CleanDb {
    let mut db = CleanDb::new(EngineProfile::clean_db());
    db.register("orders", orders_table());
    db
}

fn rows_of(report: &cleanm::core::CleaningReport) -> &[Value] {
    report.ops[0].output.as_slice()
}

#[test]
fn select_projection_and_where() {
    let report = db()
        .run("SELECT o.region AS r, o.amount FROM orders o WHERE o.amount > 12")
        .unwrap();
    let out = rows_of(&report);
    assert_eq!(out.len(), 4, "20, 15, 40, 100 qualify");
    for row in out {
        assert!(row.field("r").is_ok());
        assert!(row.field("amount").unwrap().as_float().unwrap() > 12.0);
    }
}

#[test]
fn select_distinct() {
    let report = db().run("SELECT DISTINCT o.region FROM orders o").unwrap();
    assert_eq!(rows_of(&report).len(), 3);
}

#[test]
fn group_by_with_aggregates() {
    let report = db()
        .run(
            "SELECT o.region, count(*) AS n, sum(o.amount) AS total, \
             avg(o.amount) AS mean, max(o.amount) AS biggest \
             FROM orders o GROUP BY o.region",
        )
        .unwrap();
    let out = rows_of(&report);
    assert_eq!(out.len(), 3);
    let west = out
        .iter()
        .find(|r| r.field("region").unwrap() == &Value::str("west"))
        .expect("west group");
    assert_eq!(west.field("n").unwrap(), &Value::Int(3));
    assert_eq!(west.field("total").unwrap(), &Value::Float(60.0));
    assert_eq!(west.field("mean").unwrap(), &Value::Float(20.0));
    assert_eq!(west.field("biggest").unwrap(), &Value::Float(40.0));
}

#[test]
fn group_by_having_filters_groups() {
    let report = db()
        .run(
            "SELECT o.region, count(*) AS n FROM orders o \
             GROUP BY o.region HAVING count(*) > 1",
        )
        .unwrap();
    let out = rows_of(&report);
    assert_eq!(out.len(), 2, "north (1 row) is filtered out: {out:?}");
}

#[test]
fn group_by_where_composes() {
    let report = db()
        .run(
            "SELECT o.region, count(*) AS n FROM orders o \
             WHERE o.status = 'open' GROUP BY o.region",
        )
        .unwrap();
    let out = rows_of(&report);
    let west = out
        .iter()
        .find(|r| r.field("region").unwrap() == &Value::str("west"))
        .unwrap();
    assert_eq!(west.field("n").unwrap(), &Value::Int(2));
}

#[test]
fn bare_column_outside_group_by_is_rejected() {
    let err = db()
        .run("SELECT o.status FROM orders o GROUP BY o.region")
        .unwrap_err();
    assert!(
        err.to_string().contains("GROUP BY"),
        "must explain the SQL rule: {err}"
    );
}

#[test]
fn string_functions_in_projection() {
    let report = db()
        .run("SELECT lower(o.region) AS l, length(o.region) AS n FROM orders o WHERE o.region = 'east'")
        .unwrap();
    let out = rows_of(&report);
    assert_eq!(out[0].field("l").unwrap(), &Value::str("east"));
    assert_eq!(out[0].field("n").unwrap(), &Value::Int(4));
}

#[test]
fn multiple_cleaning_ops_any_order() {
    // Listing 1 allows the operators in arbitrary order and multiplicity.
    let mut db = db();
    let r1 = db
        .run(
            "SELECT * FROM orders o \
             DEDUP(exact, LD, 0.7, o.region, o.status) \
             FD(o.region | o.status)",
        )
        .unwrap();
    let r2 = db
        .run(
            "SELECT * FROM orders o \
             FD(o.region | o.status) \
             DEDUP(exact, LD, 0.7, o.region, o.status)",
        )
        .unwrap();
    assert_eq!(r1.violating_ids, r2.violating_ids);
    assert!(r1.violations() > 0);
}

#[test]
fn group_by_with_cleaning_ops_is_rejected() {
    let err = db()
        .run("SELECT o.region FROM orders o GROUP BY o.region FD(o.region | o.status)")
        .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn syntax_errors_are_reported_not_panicked() {
    let cases = [
        "SELECT",
        "SELECT * FROM orders o FD()",
        "SELECT * FROM orders o DEDUP()",
        "SELECT * FROM orders o CLUSTER BY(tf)",
        "SELECT * FROM orders o WHERE o.amount >",
        "SELECT * FROM orders o GROUP BY",
    ];
    for sql in cases {
        assert!(db().run(sql).is_err(), "should fail: {sql}");
    }
}
