//! Property tests for the monoid calculus: normalization must preserve
//! semantics on randomly generated comprehensions, and the distributed
//! executor must agree with the reference evaluator.

use cleanm::core::calculus::{eval, normalize, BinOp, CalcExpr, EvalCtx, MonoidKind, Qual};
use cleanm::values::Value;
use proptest::prelude::*;

/// Strategy: random scalar expressions over an integer variable `x` (and
/// `y` at depth) with arithmetic, comparison, and if-then-else.
fn scalar_expr(depth: u32) -> BoxedStrategy<CalcExpr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(CalcExpr::int),
        Just(CalcExpr::var("x")),
        Just(CalcExpr::var("y")),
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CalcExpr::bin(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CalcExpr::bin(BinOp::Mul, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CalcExpr::bin(BinOp::Sub, a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| {
                CalcExpr::If(
                    Box::new(CalcExpr::bin(BinOp::Lt, c, CalcExpr::int(5))),
                    Box::new(t),
                    Box::new(e),
                )
            }),
        ]
    })
    .boxed()
}

/// Strategy: a comprehension over tables t (binds x) and u (binds y) with a
/// random head, optional nested inner comprehension, and a random predicate.
fn comprehension() -> impl Strategy<Value = CalcExpr> {
    (
        scalar_expr(2),
        scalar_expr(1),
        prop_oneof![
            Just(MonoidKind::Sum),
            Just(MonoidKind::Bag),
            Just(MonoidKind::Set),
            Just(MonoidKind::Max)
        ],
        proptest::bool::ANY,
    )
        .prop_map(|(head, pred_lhs, monoid, nest)| {
            let source = if nest {
                // x iterates a nested bag comprehension over t.
                CalcExpr::comp(
                    MonoidKind::Bag,
                    CalcExpr::bin(BinOp::Add, CalcExpr::var("x"), CalcExpr::int(1)),
                    vec![Qual::Gen("x".into(), CalcExpr::TableRef("t".into()))],
                )
            } else {
                CalcExpr::TableRef("t".into())
            };
            CalcExpr::comp(
                monoid,
                head,
                vec![
                    Qual::Gen("x".into(), source),
                    Qual::Gen("y".into(), CalcExpr::TableRef("u".into())),
                    Qual::Pred(CalcExpr::bin(BinOp::Le, pred_lhs, CalcExpr::int(8))),
                ],
            )
        })
}

fn ctx() -> EvalCtx {
    EvalCtx::new()
        .with_table(
            "t",
            Value::list([Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(7)]),
        )
        .with_table("u", Value::list([Value::Int(0), Value::Int(5)]))
}

/// Bag results compare as multisets; everything else compares exactly.
fn canonical(m: &MonoidKind, v: Value) -> Value {
    match m {
        MonoidKind::Bag => {
            let mut items = v.as_list().unwrap().to_vec();
            items.sort();
            Value::list(items)
        }
        _ => v,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The §4.2 normalizer must preserve the §4.1 semantics.
    #[test]
    fn normalization_preserves_semantics(expr in comprehension()) {
        let monoid = match &expr {
            CalcExpr::Comp(c) => c.monoid.clone(),
            _ => unreachable!(),
        };
        let ctx = ctx();
        let before = eval(&expr, &vec![], &ctx).unwrap();
        let (normalized, _) = normalize(&expr);
        let after = eval(&normalized, &vec![], &ctx).unwrap();
        prop_assert_eq!(
            canonical(&monoid, before),
            canonical(&monoid, after),
            "expr: {}\nnormalized: {}",
            expr,
            normalized
        );
    }

    /// Normalization reaches a fixpoint: a second run changes nothing.
    #[test]
    fn normalization_is_idempotent(expr in comprehension()) {
        let (once, _) = normalize(&expr);
        let (twice, stats) = normalize(&once);
        prop_assert_eq!(once, twice);
        prop_assert_eq!(stats.total(), 0);
    }

    /// Scalar constant folding agrees with evaluation.
    #[test]
    fn constant_folding_agrees(expr in scalar_expr(3)) {
        // Close the expression: substitute constants for the variables.
        let closed = cleanm::core::calculus::subst::substitute(
            &cleanm::core::calculus::subst::substitute(&expr, "x", &CalcExpr::int(3)),
            "y",
            &CalcExpr::int(-2),
        );
        let ctx = EvalCtx::new();
        let direct = eval(&closed, &vec![], &ctx).unwrap();
        let (folded, _) = normalize(&closed);
        let after = eval(&folded, &vec![], &ctx).unwrap();
        prop_assert_eq!(direct, after);
    }
}
