//! Differential property tests: the compiled register machine must agree
//! with the reference tree-walking evaluator on randomized expressions,
//! environments, and row schemas — including NaN ordering, `Null`
//! propagation, type errors, and shuffled struct field orders (which
//! exercise the self-tuning projection hints).

use cleanm::core::calculus::compile::Program;
use cleanm::core::calculus::{eval, BinOp, CalcExpr, EvalCtx, Func, MonoidKind, Qual};
use cleanm::values::Value;
use proptest::prelude::*;

type Env = Vec<(String, Value)>;

const SCOPE: [&str; 4] = ["x", "y", "s", "row"];
const FIELDS: [&str; 3] = ["a", "b", "c"];

/// Random scalar values: integers, floats (including NaN, ±0.0, and
/// infinities), strings, booleans, and NULL.
fn scalar() -> BoxedStrategy<Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-4.0f64..4.0).prop_map(Value::Float),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::str("anna")),
        Just(Value::str("bob-1")),
        Just(Value::str("")),
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        Just(Value::Null),
    ]
    .boxed()
}

/// A row struct over a random permutation/subset of the field pool — field
/// order varies between cases, so projection hints must re-tune.
fn row() -> BoxedStrategy<Value> {
    (scalar(), scalar(), scalar(), 0usize..6)
        .prop_map(|(a, b, c, order)| {
            let mut fields = vec![("a", a), ("b", b), ("c", c)];
            fields.rotate_left(order % 3);
            if order >= 3 {
                fields.pop(); // sometimes a narrower schema: missing-field errors
            }
            Value::record(fields)
        })
        .boxed()
}

fn env() -> BoxedStrategy<Env> {
    (scalar(), scalar(), scalar(), row())
        .prop_map(|(x, y, s, row)| {
            vec![
                ("x".to_string(), x),
                ("y".to_string(), y),
                ("s".to_string(), s),
                ("row".to_string(), row),
            ]
        })
        .boxed()
}

/// Random expressions over the fixed scope, covering arithmetic,
/// comparisons, logic, conditionals, projections, records, builtins, and
/// (as interpreter islands) nested comprehensions.
fn expr(depth: u32) -> BoxedStrategy<CalcExpr> {
    let leaf = prop_oneof![
        scalar().prop_map(CalcExpr::Const),
        prop_oneof![Just(0usize), Just(1), Just(2), Just(3)].prop_map(|i| CalcExpr::var(SCOPE[i])),
        (0usize..3).prop_map(|f| CalcExpr::proj(CalcExpr::var("row"), FIELDS[f])),
    ];
    leaf.prop_recursive(depth, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..12).prop_map(|(l, r, op)| {
                let op = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ][op];
                CalcExpr::bin(op, l, r)
            }),
            inner.clone().prop_map(|e| CalcExpr::Not(Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| CalcExpr::If(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            inner
                .clone()
                .prop_map(|e| CalcExpr::call(Func::Lower, vec![e])),
            inner
                .clone()
                .prop_map(|e| CalcExpr::call(Func::Length, vec![e])),
            inner
                .clone()
                .prop_map(|e| CalcExpr::call(Func::IsNull, vec![e])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| CalcExpr::call(Func::Coalesce, vec![a, b])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| CalcExpr::call(Func::Concat, vec![a, b])),
            inner
                .clone()
                .prop_map(|e| CalcExpr::call(Func::Prefix, vec![e])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| CalcExpr::record(vec![("p", a), ("q", b)])),
            // Projection through a freshly built record.
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| CalcExpr::proj(CalcExpr::record(vec![("p", a), ("q", b)]), "q")),
            // A nested comprehension: compiled as an interpreter island
            // whose environment is rebuilt from the slots.
            inner.clone().prop_map(|e| CalcExpr::comp(
                MonoidKind::Sum,
                CalcExpr::bin(BinOp::Add, CalcExpr::var("v"), e),
                vec![Qual::Gen(
                    "v".into(),
                    CalcExpr::Const(Value::list([Value::Int(1), Value::Int(2), Value::Int(3)])),
                )],
            )),
        ]
    })
    .boxed()
}

fn scope() -> Vec<String> {
    SCOPE.iter().map(|s| s.to_string()).collect()
}

/// Both engines agree: equal values on success, errors on both sides
/// otherwise.
fn assert_agree(
    expr: &CalcExpr,
    env: &Env,
    ctx: &EvalCtx,
    compiled: Result<Value, impl std::fmt::Display>,
) {
    let interpreted = eval(expr, env, ctx);
    match (interpreted, compiled) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "value mismatch on {expr}"),
        (Err(_), Err(_)) => {}
        (Ok(a), Err(e)) => panic!("interpreter Ok({a}), compiled Err({e}) on {expr}"),
        (Err(e), Ok(b)) => panic!("interpreter Err({e}), compiled Ok({b}) on {expr}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `Program::eval` ≡ reference `eval` on random expressions and rows.
    #[test]
    fn compiled_agrees_with_interpreter(e in expr(3), env in env()) {
        let ctx = EvalCtx::new();
        let prog = Program::compile(&e, &scope(), &ctx).expect("closed expr compiles");
        assert_agree(&e, &env, &ctx, prog.eval(&env, &ctx));
    }

    /// The batch entry point matches per-row interpretation across a
    /// partition of rows with a shared scratch stack.
    #[test]
    fn batch_agrees_with_interpreter(e in expr(2), envs in proptest::collection::vec(env(), 1..12)) {
        let ctx = EvalCtx::new();
        let prog = Program::compile(&e, &scope(), &ctx).expect("closed expr compiles");
        match prog.eval_batch(&envs, &ctx) {
            Ok(batch) => {
                prop_assert_eq!(batch.len(), envs.len());
                for (row, got) in envs.iter().zip(batch) {
                    let want = eval(&e, row, &ctx).expect("batch Ok implies per-row Ok");
                    prop_assert_eq!(want, got, "{}", &e);
                }
            }
            Err(_) => {
                // The batch fails iff some row fails under the interpreter.
                prop_assert!(
                    envs.iter().any(|row| eval(&e, row, &ctx).is_err()),
                    "batch errored but every row interprets cleanly: {}", &e
                );
            }
        }
    }

    /// Pair evaluation over a split environment matches evaluation over the
    /// concatenation (the theta-join entry point).
    #[test]
    fn pair_agrees_with_merged_env(e in expr(2), env in env(), split in 0usize..5) {
        let ctx = EvalCtx::new();
        let prog = Program::compile(&e, &scope(), &ctx).expect("closed expr compiles");
        let split = split.min(env.len());
        let (l, r) = env.split_at(split);
        let mut scratch = Vec::new();
        let compiled = prog.eval_pair(l, r, &ctx, &mut scratch);
        assert_agree(&e, &env, &ctx, compiled);
    }

    /// One program, many row schemas: the projection hints must stay
    /// correct when consecutive rows disagree on field order.
    #[test]
    fn hints_survive_schema_shuffles(e in expr(2), envs in proptest::collection::vec(env(), 2..8)) {
        let ctx = EvalCtx::new();
        let prog = Program::compile(&e, &scope(), &ctx).expect("closed expr compiles");
        let mut scratch = Vec::new();
        for row in &envs {
            let compiled = prog.eval_with(row, &ctx, &mut scratch);
            assert_agree(&e, row, &ctx, compiled);
        }
    }
}
