//! Engine profiles are *physical* policies: every profile must produce the
//! same logical results. These tests pin that invariant across operator
//! families and datasets.

use cleanm::core::ops::Dedup;
use cleanm::core::{CleanDb, EngineProfile};
use cleanm::datagen::customer::CustomerGen;
use cleanm::datagen::mag::MagGen;
use cleanm::datagen::tpch::{LineitemGen, NoiseColumn};
use cleanm::text::Metric;

fn profiles() -> Vec<EngineProfile> {
    vec![
        EngineProfile::clean_db(),
        EngineProfile::spark_sql_like(),
        EngineProfile::big_dansing_like(),
    ]
}

#[test]
fn fd_violations_identical_across_profiles() {
    let data = LineitemGen::new(11)
        .rows(3_000)
        .noise_column(NoiseColumn::OrderKey)
        .generate();
    let mut results = Vec::new();
    for profile in profiles() {
        let mut db = CleanDb::new(profile);
        db.register("lineitem", data.table.clone());
        let report = db
            .run("SELECT * FROM lineitem t FD(t.orderkey, t.linenumber | t.suppkey)")
            .unwrap();
        results.push(report.violating_ids);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    assert!(!results[0].is_empty());
}

#[test]
fn dedup_pairs_identical_across_profiles() {
    let data = CustomerGen::new(12)
        .rows(1_200)
        .duplicate_fraction(0.15)
        .fd_noise_fraction(0.0)
        .generate();
    let mut results = Vec::new();
    for profile in profiles() {
        let mut db = CleanDb::new(profile);
        db.register("customer", data.table.clone());
        let (_, pairs) = Dedup::new("customer", "exact", "t.address")
            .metric(Metric::Levenshtein, 0.7)
            .similarity_on(&["t.name"])
            .run(&mut db)
            .unwrap();
        results.push(pairs);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    assert!(!results[0].is_empty());
}

#[test]
fn skewed_mag_dedup_identical_across_profiles() {
    let data = MagGen::new(13).papers(1_500).authors(40).generate();
    let mut results = Vec::new();
    for profile in [EngineProfile::clean_db(), EngineProfile::spark_sql_like()] {
        let mut db = CleanDb::new(profile);
        db.register("mag", data.table.clone());
        let (_, pairs) = Dedup::new("mag", "exact", "concat(t.year, t.authorid)")
            .metric(Metric::Levenshtein, 0.8)
            .similarity_on(&["t.title"])
            .run(&mut db)
            .unwrap();
        results.push(pairs);
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn token_filtering_dedup_identical_across_profiles() {
    // Multi-key blocking is the stress case for grouping strategies: the
    // same pair can surface in several blocks on different nodes.
    let data = CustomerGen::new(14)
        .rows(600)
        .duplicate_fraction(0.2)
        .fd_noise_fraction(0.0)
        .generate();
    let mut results = Vec::new();
    for profile in profiles() {
        let mut db = CleanDb::new(profile);
        db.register("customer", data.table.clone());
        let (_, pairs) = Dedup::new("customer", "token_filtering(3)", "t.name")
            .metric(Metric::Levenshtein, 0.8)
            .run(&mut db)
            .unwrap();
        results.push(pairs);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn cleandb_shuffles_no_more_than_baselines() {
    let data = CustomerGen::new(15)
        .rows(3_000)
        .duplicate_fraction(0.10)
        .max_duplicates(40)
        .fd_noise_fraction(0.0)
        .generate();
    let mut shuffled = Vec::new();
    for profile in profiles() {
        let mut db = CleanDb::new(profile);
        db.register("customer", data.table.clone());
        let report = db
            .run("SELECT * FROM customer c DEDUP(exact, LD, 0.7, c.address, c.name)")
            .unwrap();
        shuffled.push((report.profile.clone(), report.metrics.records_shuffled));
    }
    let get = |name: &str| {
        shuffled
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap()
    };
    assert!(
        get("CleanDB") <= get("SparkSQL"),
        "local aggregation must not shuffle more: {shuffled:?}"
    );
    assert!(get("CleanDB") <= get("BigDansing"), "{shuffled:?}");
}
