//! Cross-crate integration: generate → serialize → read back → clean →
//! score, through the public facade.

use cleanm::core::ops::{Dedup, FdCheck, TermValidation};
use cleanm::core::quality::{dedup_accuracy, term_validation_accuracy};
use cleanm::core::{CleanDb, EngineProfile};
use cleanm::datagen::customer::CustomerGen;
use cleanm::datagen::dblp::DblpGen;
use cleanm::datagen::tpch::{LineitemGen, NoiseColumn};
use cleanm::formats::{colbin, csv, flatten};
use cleanm::text::Metric;
use std::collections::HashMap;

#[test]
fn fd_check_through_csv_roundtrip() {
    let data = LineitemGen::new(1)
        .rows(4_000)
        .noise_column(NoiseColumn::OrderKey)
        .generate();
    // Round-trip through CSV before cleaning, as CleanDB reads raw files.
    let text = csv::write_str(&data.table, &csv::CsvOptions::default());
    let table = csv::read_str(&text, &data.table.schema, &csv::CsvOptions::default()).unwrap();
    assert_eq!(table.rows, data.table.rows);

    let mut db = CleanDb::new(EngineProfile::clean_db());
    db.register("lineitem", table);
    let report = FdCheck::columns("lineitem", &["orderkey", "linenumber"], &["suppkey"])
        .run(&mut db)
        .unwrap();
    assert!(report.violations() > 0, "noise must create φ violations");
}

#[test]
fn fd_results_agree_between_csv_and_colbin() {
    let data = LineitemGen::new(2).rows(2_000).generate();
    let bin = colbin::encode(&data.table).unwrap();
    let from_bin = colbin::decode(bin).unwrap();

    let run = |table: cleanm::values::Table| {
        let mut db = CleanDb::new(EngineProfile::clean_db());
        db.register("lineitem", table);
        FdCheck::columns("lineitem", &["orderkey", "linenumber"], &["suppkey"])
            .run(&mut db)
            .unwrap()
            .violating_ids
    };
    assert_eq!(run(data.table.clone()), run(from_bin));
}

#[test]
fn customer_dedup_recall_against_truth() {
    let data = CustomerGen::new(3)
        .rows(2_000)
        .duplicate_fraction(0.10)
        .max_duplicates(8)
        .fd_noise_fraction(0.0)
        .generate();
    let mut db = CleanDb::new(EngineProfile::clean_db());
    db.register("customer", data.table.clone());
    let (_, pairs) = Dedup::new("customer", "exact", "t.address")
        .metric(Metric::Levenshtein, 0.7)
        .similarity_on(&["t.name"])
        .run(&mut db)
        .unwrap();

    // Truth groups are custkeys == rowids here only after mapping through
    // the shuffled table; map custkey -> position.
    let key_col = data.table.schema.index_of("custkey").unwrap();
    let mut pos: HashMap<i64, i64> = HashMap::new();
    for (i, row) in data.table.rows.iter().enumerate() {
        pos.insert(row.values()[key_col].as_int().unwrap(), i as i64);
    }
    let truth: Vec<Vec<i64>> = data
        .duplicate_groups
        .iter()
        .map(|g| g.iter().map(|k| pos[k]).collect())
        .collect();
    let acc = dedup_accuracy(&pairs, &truth);
    assert!(acc.recall > 0.8, "recall {:?}", acc);
    assert!(acc.precision > 0.5, "precision {:?}", acc);
}

#[test]
fn term_validation_beats_90_percent_f_score() {
    let data = DblpGen::new(4)
        .publications(400)
        .dictionary_size(300)
        .author_noise_fraction(0.10)
        .edit_rate(0.20)
        .generate();
    let flat = flatten::flatten(&data.table).unwrap();
    let author_col = flat.schema.index_of("authors").unwrap();

    let mut db = CleanDb::new(EngineProfile::clean_db());
    db.register("dblp", flat.clone());
    db.register_dictionary("dict", data.dictionary.clone());
    let (_, best) = TermValidation::new("dblp", "dict", "token_filtering(2)", "t.authors")
        .metric(Metric::Levenshtein, 0.70)
        .run(&mut db)
        .unwrap();

    let dirty: Vec<String> = flat
        .rows
        .iter()
        .map(|r| r.values()[author_col].to_text())
        .collect();
    let clean: Vec<String> = data
        .clean_authors
        .iter()
        .flat_map(|a| a.iter().cloned())
        .collect();
    let acc = term_validation_accuracy(&dirty, &clean, &best);
    // Table 3's headline: tf q=2 reaches ~98.5 F; leave generous slack for
    // the synthetic corpus.
    assert!(acc.precision > 0.9, "{acc:?}");
    assert!(acc.recall > 0.8, "{acc:?}");
    assert!(acc.f_score > 0.85, "{acc:?}");
}

#[test]
fn running_example_reports_are_consistent() {
    let data = CustomerGen::new(5)
        .rows(1_500)
        .duplicate_fraction(0.10)
        .fd_noise_fraction(0.02)
        .generate();
    let dict = cleanm::datagen::names::dictionary(400, 6);

    let query = "SELECT c.name, c.address FROM customer c, dictionary d \
                 FD(c.address | prefix(c.phone)) \
                 DEDUP(exact, LD, 0.8, c.address, c.name) \
                 CLUSTER BY(token_filtering(3), LD, 0.8, c.name)";
    let mut db = CleanDb::new(EngineProfile::clean_db());
    db.register("customer", data.table.clone());
    db.register_dictionary("dictionary", dict);
    let report = db.run(query).unwrap();
    assert_eq!(report.ops.len(), 3);
    assert!(report.violations() > 0);
    // FD#0 and DEDUP#1 group on the same key: the rewriter must share.
    assert!(report.rewrite_stats.shared_nests >= 1);
    assert!(report.plan_text.contains("Nest"));
}
