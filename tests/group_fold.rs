//! Differential property tests for streaming grouped aggregation: a plan
//! executed with `fold_groups` on (rows folded straight into per-key monoid
//! accumulators, no `(key, Vec<member>)` materialization) must produce
//! exactly the results of the materialize-then-reduce execution — across
//! every supported aggregate (count, sum, min, max, avg, count_distinct /
//! the FD distinct-RHS test), under `Null`/`NaN` values, empty tables,
//! heavy-hitter skewed keys, shuffled schemas, and all three shuffle
//! strategies.
//!
//! Float caveat (documented in ARCHITECTURE.md): `sum`/`avg` over *float*
//! columns may differ from the materialized fold in the last ulp — the
//! fold path sums per partition and merges partials, associating float
//! additions differently. The aggregated columns here are integers, NULLs
//! and NaNs, where both orders are bit-exact (NaN is absorbing either way).

use std::collections::HashMap;
use std::sync::Arc;

use cleanm::core::algebra::{lower_op, Alg};
use cleanm::core::calculus::{desugar_query, EvalCtx};
use cleanm::core::engine::storage::StoredTable;
use cleanm::core::lang::parse_query;
use cleanm::core::physical::{EngineProfile, Executor, NestStrategy};
use cleanm::exec::{ExecContext, MetricsSnapshot};
use cleanm::values::Value;
use proptest::prelude::*;

/// Aggregation-column pool: integers, NULL, and NaN — exact under any
/// fold association (see module docs for the float caveat).
fn agg_scalar() -> BoxedStrategy<Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-8i64..8).prop_map(Value::Int),
        Just(Value::Null),
        Just(Value::Float(f64::NAN)),
    ]
    .boxed()
}

/// Grouping-key pool: a few collision-heavy ints and strings plus NULL, so
/// groups of every size (and NULL-keyed groups) appear.
fn key_scalar() -> BoxedStrategy<Value> {
    prop_oneof![
        (0i64..4).prop_map(Value::Int),
        Just(Value::str("a st")),
        Just(Value::str("b st")),
        Just(Value::Null),
    ]
    .boxed()
}

/// A random table; `shuffled` reverses the field order of every row —
/// positional assumptions anywhere in the fold pipeline would surface as a
/// differential failure.
fn rows(shuffled: bool) -> BoxedStrategy<Vec<Value>> {
    proptest::collection::vec((key_scalar(), agg_scalar(), agg_scalar()), 0..32)
        .prop_map(move |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (k, v, w))| {
                    let mut fields = vec![
                        ("__rowid", Value::Int(i as i64)),
                        ("k", k),
                        ("v", v),
                        ("w", w),
                    ];
                    if shuffled {
                        fields[1..].reverse();
                    }
                    Value::record(fields)
                })
                .collect()
        })
        .boxed()
}

fn catalog(rows: Vec<Value>) -> HashMap<String, StoredTable> {
    let mut t = HashMap::new();
    t.insert("t".to_string(), StoredTable::from_rows(rows));
    t
}

fn fold_profile(nest: NestStrategy) -> EngineProfile {
    let mut p = EngineProfile::clean_db();
    p.nest = nest;
    p
}

fn materialize_profile(nest: NestStrategy) -> EngineProfile {
    let mut p = fold_profile(nest);
    p.fold_groups = false;
    p
}

/// Run `sql`'s first operator under `profile`; returns the sorted outputs
/// and the runtime metrics (stage names prove which path executed).
fn run_sql(
    sql: &str,
    tables: &HashMap<String, StoredTable>,
    profile: EngineProfile,
) -> (Vec<Value>, MetricsSnapshot) {
    let q = parse_query(sql).expect("parses");
    let dq = desugar_query(&q, 1).expect("desugars");
    let plan: Arc<Alg> = lower_op(&dq.ops[0].comp).expect("lowers");
    let ctx = ExecContext::new(2, 4);
    let mut ex = Executor::new(ctx.clone(), profile, tables, Arc::new(EvalCtx::new()));
    ex.register_plans(std::slice::from_ref(&plan));
    let mut out = ex.run_reduce(&plan).expect("executes");
    out.sort();
    (out, ctx.metrics().snapshot())
}

/// fold ≡ materialize for `sql` under every Nest strategy, with the fold
/// path required to actually engage (a `group_fold*` stage must appear).
fn assert_fold_matches(sql: &str, table_rows: Vec<Value>) {
    let tables = catalog(table_rows);
    for nest in [
        NestStrategy::LocalAggregate,
        NestStrategy::HashShuffle,
        NestStrategy::SortShuffle,
    ] {
        let (folded, metrics) = run_sql(sql, &tables, fold_profile(nest));
        let (materialized, _) = run_sql(sql, &tables, materialize_profile(nest));
        assert_eq!(
            folded, materialized,
            "fold path diverged under {nest:?} for `{sql}`"
        );
        assert!(
            metrics
                .stages
                .iter()
                .any(|s| s.operator.starts_with("group_fold")),
            "fold path did not engage under {nest:?} for `{sql}`: {:?}",
            metrics
                .stages
                .iter()
                .map(|s| s.operator)
                .collect::<Vec<_>>()
        );
    }
}

const GROUP_AGG_SQL: &str = "SELECT c.k, count(*) AS n, sum(c.v) AS s, min(c.v) AS mn, \
     max(c.v) AS mx, avg(c.v) AS a, count_distinct(c.w) AS cd \
     FROM t c GROUP BY c.k";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every aggregate the grouped SELECT reaches, over random tables
    /// (empty included) with NULL/NaN values.
    #[test]
    fn grouped_aggregates_fold_matches_materialize(rows in rows(false)) {
        assert_fold_matches(GROUP_AGG_SQL, rows);
    }

    /// The same aggregates over tables with reversed field order: the
    /// composed item programs must resolve fields by name, not position.
    #[test]
    fn shuffled_schema_fold_matches(rows in rows(true)) {
        assert_fold_matches(GROUP_AGG_SQL, rows);
    }

    /// HAVING predicates (group filters over folded aggregates).
    #[test]
    fn having_fold_matches(rows in rows(false), cut in 0i64..4) {
        assert_fold_matches(
            &format!(
                "SELECT c.k, count(*) AS n FROM t c GROUP BY c.k HAVING count(*) > {cut}"
            ),
            rows,
        );
    }

    /// The FD shape — violating groups selected by the distinct-RHS test —
    /// including a WHERE chain fused below the grouping.
    #[test]
    fn fd_fold_matches(rows in rows(false), cut in 0i64..10) {
        assert_fold_matches("SELECT * FROM t c FD(c.k | c.v)", rows.clone());
        assert_fold_matches(
            &format!("SELECT * FROM t c WHERE c.v >= {cut} FD(c.k | c.w)"),
            rows,
        );
    }

    /// Composite FD keys and derived RHS expressions.
    #[test]
    fn fd_composite_fold_matches(rows in rows(false)) {
        assert_fold_matches("SELECT * FROM t c FD(c.k, c.w | c.v)", rows);
    }

    /// Heavy-hitter skew: ~90% of the rows share one key.
    #[test]
    fn skewed_keys_fold_matches(rows in rows(false), heavy in key_scalar()) {
        let skewed: Vec<Value> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if i % 10 == 0 {
                    r.clone()
                } else {
                    let mut fields: Vec<(String, Value)> = r
                        .as_struct()
                        .unwrap()
                        .iter()
                        .map(|(n, v)| (n.to_string(), v.clone()))
                        .collect();
                    for (n, v) in &mut fields {
                        if n == "k" {
                            *v = heavy.clone();
                        }
                    }
                    Value::record(fields)
                }
            })
            .collect();
        assert_fold_matches(GROUP_AGG_SQL, skewed.clone());
        assert_fold_matches("SELECT * FROM t c FD(c.k | c.v)", skewed);
    }
}

/// Grouped-aggregate shuffle volume: with the fold path on the combine-
/// friendly strategy, only `(key, partial)` pairs cross the shuffle — at
/// most partitions × distinct keys records, independent of row count.
#[test]
fn grouped_aggregate_shuffle_volume_is_distinct_keys_per_partition() {
    let rows: Vec<Value> = (0..8_000)
        .map(|i| {
            Value::record([
                ("__rowid", Value::Int(i)),
                ("k", Value::Int(i % 10)),
                ("v", Value::Int(i % 97)),
            ])
        })
        .collect();
    let tables = catalog(rows);
    let sql = "SELECT c.k, count(*) AS n, sum(c.v) AS s FROM t c GROUP BY c.k";
    let (out, metrics) = run_sql(sql, &tables, fold_profile(NestStrategy::LocalAggregate));
    assert_eq!(out.len(), 10);
    let stage = metrics
        .stages
        .iter()
        .find(|s| s.operator == "group_fold")
        .expect("fold stage");
    assert_eq!(stage.records_in, 8_000);
    assert!(
        stage.records_shuffled <= 4 * 10,
        "shuffle volume must be ~distinct keys per partition, got {}",
        stage.records_shuffled
    );
    // The materialized path moves the same number of *partials*, but each
    // carries the whole member list; the fold partials are scalars.
    let (_, mat) = run_sql(sql, &tables, materialize_profile(NestStrategy::HashShuffle));
    let mat_stage = mat
        .stages
        .iter()
        .find(|s| s.operator == "group_by_key_hash")
        .expect("materialized stage");
    assert_eq!(
        mat_stage.records_shuffled, 8_000,
        "hash path moves all rows"
    );
}

/// FD two-phase execution: the probe moves one partial map per partition
/// and phase two shuffles only the violating rows.
#[test]
fn fd_fold_shuffles_only_violating_groups() {
    // 4000 rows, 40 keys; exactly two keys violate (two distinct RHS).
    let rows: Vec<Value> = (0..4_000)
        .map(|i| {
            let k = i % 40;
            let v = if (k == 3 || k == 17) && i % 400 == k {
                1
            } else {
                0
            };
            Value::record([
                ("__rowid", Value::Int(i)),
                ("k", Value::Int(k)),
                ("v", Value::Int(v)),
            ])
        })
        .collect();
    let tables = catalog(rows);
    let sql = "SELECT * FROM t c FD(c.k | c.v)";
    let (out, metrics) = run_sql(sql, &tables, fold_profile(NestStrategy::LocalAggregate));
    assert_eq!(out.len(), 2, "two violating groups");
    let probe = metrics
        .stages
        .iter()
        .find(|s| s.operator == "group_fold_probe")
        .expect("probe stage");
    assert_eq!(probe.records_in, 4_000);
    assert_eq!(probe.records_shuffled, 4, "one partial map per partition");
    // Grouping shuffle afterwards: only the two violating keys' partials.
    let group = metrics
        .stages
        .iter()
        .find(|s| s.operator == "aggregate_by_key")
        .expect("phase-2 grouping stage");
    assert!(
        group.records_shuffled <= 4 * 2,
        "only violating groups shuffle, got {}",
        group.records_shuffled
    );
    assert_eq!(
        group.records_in, 200,
        "only violating rows enter the grouping"
    );
}

/// An all-clean FD (no violations) never runs phase two at all.
#[test]
fn clean_fd_skips_materialization_entirely() {
    let rows: Vec<Value> = (0..1_000)
        .map(|i| {
            Value::record([
                ("__rowid", Value::Int(i)),
                ("k", Value::Int(i % 20)),
                ("v", Value::Int((i % 20) * 7)),
            ])
        })
        .collect();
    let tables = catalog(rows);
    let (out, metrics) = run_sql(
        "SELECT * FROM t c FD(c.k | c.v)",
        &tables,
        fold_profile(NestStrategy::LocalAggregate),
    );
    assert!(out.is_empty());
    assert!(
        !metrics
            .stages
            .iter()
            .any(|s| s.operator == "group_fold_materialize"),
        "no violating keys → no phase-2 sweep"
    );
}
