//! Zero-copy guarantees of the string builtins: when an operation is the
//! identity on its input (already-lowercase `lower`, already-trimmed
//! `trim`, a `prefix` covering the whole string…), the result must *share*
//! the input's `Arc<str>` — verified by pointer equality, so no bytes were
//! copied even when the input allocation is uniquely referenced.

use std::sync::Arc;

use cleanm::core::calculus::{eval, CalcExpr, EvalCtx, Func};
use cleanm::values::{StrView, Value};

/// Evaluate `func(input)` and return the resulting string `Arc`.
fn call_str(func: Func, input: &Arc<str>) -> Arc<str> {
    let ctx = EvalCtx::new();
    let expr = CalcExpr::call(func, vec![CalcExpr::Const(Value::Str(Arc::clone(input)))]);
    match eval(&expr, &vec![], &ctx).expect("builtin evaluates") {
        Value::Str(s) => s,
        other => panic!("expected a string, got {other:?}"),
    }
}

#[test]
fn lower_on_lowercase_shares_the_input() {
    let src: Arc<str> = Arc::from("customer-000123");
    assert_eq!(Arc::strong_count(&src), 1, "uniquely referenced input");
    let out = call_str(Func::Lower, &src);
    assert!(Arc::ptr_eq(&out, &src), "identity lower must not clone");
    // And the non-identity case still folds correctly.
    let mixed: Arc<str> = Arc::from("CusTomer");
    assert_eq!(call_str(Func::Lower, &mixed).as_ref(), "customer");
}

#[test]
fn upper_on_uppercase_shares_the_input() {
    let src: Arc<str> = Arc::from("BUILDING-42");
    let out = call_str(Func::Upper, &src);
    assert!(Arc::ptr_eq(&out, &src));
    let mixed: Arc<str> = Arc::from("BuIlDiNg");
    assert_eq!(call_str(Func::Upper, &mixed).as_ref(), "BUILDING");
}

#[test]
fn trim_on_trimmed_shares_the_input() {
    let src: Arc<str> = Arc::from("no outer spaces");
    let out = call_str(Func::Trim, &src);
    assert!(Arc::ptr_eq(&out, &src));
    let padded: Arc<str> = Arc::from("  padded \t");
    assert_eq!(call_str(Func::Trim, &padded).as_ref(), "padded");
}

#[test]
fn whole_string_prefix_shares_the_input() {
    // ≤ 3 chars with no dash: the prefix *is* the string.
    let src: Arc<str> = Arc::from("abc");
    let out = call_str(Func::Prefix, &src);
    assert!(Arc::ptr_eq(&out, &src));
    // A dash still slices (one allocation, correct bytes).
    let phone: Arc<str> = Arc::from("123-4567");
    assert_eq!(call_str(Func::Prefix, &phone).as_ref(), "123");
}

#[test]
fn split_without_separator_shares_the_input() {
    let src: Arc<str> = Arc::from("single-token");
    let ctx = EvalCtx::new();
    let expr = CalcExpr::call(
        Func::Split(",".into()),
        vec![CalcExpr::Const(Value::Str(Arc::clone(&src)))],
    );
    match eval(&expr, &vec![], &ctx).unwrap() {
        Value::List(items) => match &items[..] {
            [Value::Str(s)] => assert!(Arc::ptr_eq(s, &src)),
            other => panic!("expected one shared token, got {other:?}"),
        },
        other => panic!("expected a list, got {other:?}"),
    }
}

#[test]
fn single_arg_concat_shares_the_input() {
    let src: Arc<str> = Arc::from("whole");
    let out = call_str(Func::Concat, &src);
    assert!(Arc::ptr_eq(&out, &src));
}

#[test]
fn strview_materializes_whole_views_by_refcount() {
    let src: Arc<str> = Arc::from("shared text");
    let before = Arc::strong_count(&src);
    match StrView::whole(&src).into_value() {
        Value::Str(s) => {
            assert!(Arc::ptr_eq(&s, &src));
            assert_eq!(Arc::strong_count(&src), before + 1);
        }
        other => panic!("expected Str, got {other:?}"),
    }
}

#[test]
fn normalize_borrows_already_normal_text() {
    use std::borrow::Cow;
    assert!(matches!(
        cleanm::text::normalize("already normal"),
        Cow::Borrowed(_)
    ));
    assert!(matches!(
        cleanm::text::normalize("Not! Normal"),
        Cow::Owned(_)
    ));
}
