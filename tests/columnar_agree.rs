//! The columnar execution core is a *physical* optimization: with
//! `EngineProfile::vectorize` on, eligible `Select` nodes sweep typed
//! column batches with whole-column kernels; with it off the very same
//! plans run row-at-a-time. Every observable output — violating ids,
//! repairs, operator outputs — must be identical either way, across all
//! four profiles, every operator family (FD / DEDUP / DC / GROUP BY /
//! CLUSTER BY), and the nasty edges: NULL cells, NaN floats, empty
//! tables, and row structs whose field order varies (which defeats
//! columnarization and must fall back to the row path).

use cleanm::core::ops::{DcOutcome, InequalityDc};
use cleanm::core::{CleanDb, CleaningReport, EngineProfile};
use cleanm::datagen::customer::CustomerGen;
use cleanm::datagen::tpch::{LineitemGen, NoiseColumn};
use cleanm::formats::csv;
use cleanm::values::{DataType, Row, Schema, Table, Value};

fn all_profiles() -> Vec<EngineProfile> {
    vec![
        EngineProfile::clean_db(),
        EngineProfile::spark_sql_like(),
        EngineProfile::big_dansing_like(),
        EngineProfile::adaptive(),
    ]
}

fn with_vectorize(mut p: EngineProfile, on: bool) -> EngineProfile {
    p.vectorize = on;
    p
}

/// Everything observable about a run that must not depend on `vectorize`.
type Digest = (Vec<i64>, Vec<(String, String)>, Vec<(String, Vec<Value>)>);

fn digest(r: &CleaningReport) -> Digest {
    // Repairs and grouped outputs surface in hash-map iteration order,
    // which is not stable run to run — compare both as sorted multisets.
    let mut repairs: Vec<(String, String)> = r
        .repairs
        .iter()
        .map(|x| (x.term.clone(), x.suggestion.clone()))
        .collect();
    repairs.sort();
    (
        r.violating_ids.clone(),
        repairs,
        r.ops
            .iter()
            .map(|o| {
                let mut out = o.output.clone();
                out.sort();
                (o.label.clone(), out)
            })
            .collect(),
    )
}

fn run_with(profile: EngineProfile, name: &str, table: &Table, query: &str) -> CleaningReport {
    let mut db = CleanDb::new(profile);
    db.register(name, table.clone());
    if query.contains("dictionary d") {
        db.register_dictionary("dictionary", cleanm::datagen::names::dictionary(200, 6));
    }
    db.run(query).unwrap()
}

fn assert_agree(profile: &EngineProfile, name: &str, table: &Table, query: &str) {
    let row = run_with(with_vectorize(profile.clone(), false), name, table, query);
    let col = run_with(with_vectorize(profile.clone(), true), name, table, query);
    assert_eq!(
        digest(&row),
        digest(&col),
        "row vs columnar drift under {} for `{query}`",
        profile.name
    );
}

#[test]
fn cleaning_ops_identical_row_vs_columnar_all_profiles() {
    let data = CustomerGen::new(91)
        .rows(900)
        .duplicate_fraction(0.12)
        .fd_noise_fraction(0.05)
        .generate();
    let query = "SELECT c.name, c.address FROM customer c, dictionary d \
                 FD(c.address | c.nationkey) \
                 DEDUP(exact, LD, 0.8, c.address, c.name) \
                 CLUSTER BY(token_filtering(3), LD, 0.8, c.name)";
    for profile in all_profiles() {
        assert_agree(&profile, "customer", &data.table, query);
    }
}

#[test]
fn group_by_identical_row_vs_columnar_all_profiles() {
    let data = CustomerGen::new(92).rows(1_000).generate();
    let query = "SELECT c.nationkey, count(*) AS n FROM customer c \
                 WHERE c.acctbal > 100.0 GROUP BY c.nationkey HAVING count(*) > 3";
    for profile in all_profiles() {
        assert_agree(&profile, "customer", &data.table, query);
    }
}

#[test]
fn plain_where_select_vectorizes_and_agrees() {
    let data = CustomerGen::new(93).rows(1_500).generate();
    // A filter over one scan, no grouping: this is the shape the columnar
    // fast path executes as a whole-column kernel sweep.
    let query = "SELECT c.name, c.acctbal FROM customer c \
                 WHERE c.acctbal > 500.0 AND c.nationkey >= 10";
    let row = run_with(
        with_vectorize(EngineProfile::clean_db(), false),
        "customer",
        &data.table,
        query,
    );
    let col = run_with(EngineProfile::clean_db(), "customer", &data.table, query);
    assert_eq!(digest(&row), digest(&col));
    assert_eq!(row.exprs.vectorized_rows, 0, "vectorize off must not sweep");
    assert!(
        col.exprs.vectorized_rows > 0,
        "the WHERE sweep should have gone columnar: {:?}",
        col.exprs
    );
}

#[test]
fn dc_identical_row_vs_columnar() {
    let data = LineitemGen::new(94)
        .rows(2_000)
        .noise_column(NoiseColumn::OrderKey)
        .generate();
    for profile in [EngineProfile::clean_db(), EngineProfile::adaptive()] {
        let run = |on: bool| {
            let mut db = CleanDb::new(with_vectorize(profile.clone(), on));
            db.register("lineitem", data.table.clone());
            InequalityDc::rule_psi("lineitem", 20_000.0)
                .run(&mut db)
                .unwrap()
        };
        match (run(false), run(true)) {
            (
                DcOutcome::Completed {
                    violations: row, ..
                },
                DcOutcome::Completed {
                    violations: col, ..
                },
            ) => assert_eq!(row, col, "DC drift under {}", profile.name),
            (r, c) => panic!("DC outcomes diverged: {r:?} vs {c:?}"),
        }
    }
}

#[test]
fn null_and_nan_edges_agree() {
    // Hand-built rows exercising every kernel comparison edge: NULL in
    // numeric and string cells, NaN floats, negative zero, mixed int/float
    // magnitudes near the predicate constants.
    let schema = Schema::of([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("s", DataType::Str),
    ]);
    let mut rows = Vec::new();
    for i in 0..200i64 {
        let v = match i % 7 {
            0 => Value::Null,
            1 => Value::Float(f64::NAN),
            2 => Value::Float(-0.0),
            3 => Value::Float(i as f64 * 1.5 - 100.0),
            _ => Value::Float(-(i as f64) / 3.0),
        };
        let s = match i % 5 {
            0 => Value::Null,
            1 => Value::str(""),
            _ => Value::str(["Ann", "bob", "CAROL"][(i % 3) as usize]),
        };
        rows.push(Row::new(vec![Value::Int(i % 11), v, s]));
    }
    let table = Table::new(schema, rows);
    // (The grammar has no unary minus, so bounds stay non-negative; the
    // NaN / NULL / -0.0 cells still flow through every comparison.)
    let queries = [
        "SELECT t.k, t.v FROM edge t WHERE t.v <= 10.0 AND t.k < 8",
        "SELECT t.s FROM edge t WHERE lower(t.s) = 'ann'",
        "SELECT t.k, count(*) AS n FROM edge t WHERE t.v < 50.0 GROUP BY t.k",
        "SELECT t.k FROM edge t FD(t.s | t.k)",
    ];
    for profile in all_profiles() {
        for query in &queries {
            assert_agree(&profile, "edge", &table, query);
        }
    }
}

#[test]
fn empty_table_agrees() {
    let schema = Schema::of([("a", DataType::Int), ("b", DataType::Str)]);
    let table = Table::new(schema, vec![]);
    let queries = [
        "SELECT t.a FROM empty t WHERE t.a > 0",
        "SELECT t.b, count(*) AS n FROM empty t GROUP BY t.b",
        "SELECT t.a FROM empty t FD(t.b | t.a)",
    ];
    for profile in all_profiles() {
        for query in &queries {
            assert_agree(&profile, "empty", &table, query);
        }
    }
}

#[test]
fn shuffled_struct_layout_falls_back_to_rows() {
    // Structs whose field order differs row to row cannot columnarize
    // (`ColumnBatch::from_rows` requires one layout); the vectorized
    // profile must silently take the row path and agree.
    let mk = |id: i64, a: i64, b: &str, flipped: bool| {
        if flipped {
            Value::record([
                ("__rowid", Value::Int(id)),
                ("b", Value::str(b)),
                ("a", Value::Int(a)),
            ])
        } else {
            Value::record([
                ("__rowid", Value::Int(id)),
                ("a", Value::Int(a)),
                ("b", Value::str(b)),
            ])
        }
    };
    let rows: Vec<Value> = (0..100)
        .map(|i| mk(i, i % 13, ["x", "y", "z"][(i % 3) as usize], i % 2 == 1))
        .collect();
    let query = "SELECT t.a, t.b FROM shuffled t WHERE t.a > 4";
    let run = |on: bool| {
        let mut db = CleanDb::new(with_vectorize(EngineProfile::clean_db(), on));
        db.register_values("shuffled", rows.clone());
        db.run(query).unwrap()
    };
    let (row, col) = (run(false), run(true));
    assert_eq!(digest(&row), digest(&col));
    assert_eq!(
        col.exprs.vectorized_rows, 0,
        "mixed layouts must not vectorize"
    );
}

#[test]
fn register_columnar_matches_row_register() {
    // Column-first CSV ingest → register_columnar must be observationally
    // identical to row ingest → register, and the pre-seeded batch must
    // still feed the vectorized sweep.
    let data = CustomerGen::new(95).rows(800).generate();
    let text = csv::write_str(&data.table, &csv::CsvOptions::default());
    let query = "SELECT c.name FROM customer c WHERE c.acctbal > 250.0";

    let row_table = csv::read_str(&text, &data.table.schema, &csv::CsvOptions::default()).unwrap();
    let mut db_rows = CleanDb::new(EngineProfile::clean_db());
    db_rows.register("customer", row_table);
    let via_rows = db_rows.run(query).unwrap();

    let batch =
        csv::read_str_columnar(&text, &data.table.schema, &csv::CsvOptions::default()).unwrap();
    let mut db_cols = CleanDb::new(EngineProfile::clean_db());
    db_cols.register_columnar("customer", batch);
    let via_cols = db_cols.run(query).unwrap();

    assert_eq!(digest(&via_rows), digest(&via_cols));
    assert!(via_cols.exprs.vectorized_rows > 0, "{:?}", via_cols.exprs);
    assert_eq!(
        via_rows.exprs.vectorized_rows,
        via_cols.exprs.vectorized_rows
    );
}
