//! Frontend totality properties: the recoverable lexer/parser/desugar
//! pipeline must never panic and always terminate, on any input — arbitrary
//! unicode text, arbitrary (possibly invalid UTF-8) bytes decoded lossily,
//! and adversarial splices of valid CleanM tokens.

use cleanm::core::lang::parser::parse_program;
use cleanm::core::{analyze, parse_query};
use proptest::prelude::*;

/// Every diagnostic must point inside the source (or at its EOF point).
fn spans_in_bounds(source: &str) {
    let outcome = parse_program(source);
    for d in &outcome.diagnostics {
        assert!(
            d.span.start <= d.span.end && d.span.end as usize <= source.len(),
            "diagnostic span {} out of bounds for {} bytes: {:?}",
            d.span,
            source.len(),
            d
        );
    }
}

/// Vocabulary for token-splice fuzzing: every token family the grammar
/// knows, plus pathological neighbors.
const VOCAB: &[&str] = &[
    "SELECT",
    "DISTINCT",
    "ALL",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "FD",
    "DEDUP",
    "CLUSTER",
    "DC",
    "AND",
    "OR",
    "NOT",
    "AS",
    "NULL",
    "TRUE",
    "FALSE",
    "orders",
    "o",
    "region",
    "amount",
    "prefix",
    "count",
    "token_filtering",
    "exact",
    "kmeans",
    "LD",
    "t1",
    "t2",
    "(",
    ")",
    ",",
    ".",
    "*",
    "=",
    "<",
    ">",
    "<=",
    ">=",
    "<>",
    "!=",
    "+",
    "-",
    "/",
    "|",
    ";",
    "0.8",
    "42",
    "1.5",
    "'x'",
    "'unterminated",
    "?",
    "0.8.3",
    "99999999999999999999999",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text: parse + analyze are total.
    #[test]
    fn parser_never_panics_on_text(s in "(?s).*") {
        spans_in_bounds(&s);
        let _ = analyze(&s, 1);
        let _ = parse_query(&s);
    }

    /// Arbitrary bytes (lossily decoded): totality survives invalid UTF-8
    /// replacement characters and unprintable input.
    #[test]
    fn parser_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let s = String::from_utf8_lossy(&bytes).into_owned();
        spans_in_bounds(&s);
        let _ = analyze(&s, 1);
    }

    /// Token splices: random sequences of *valid* CleanM tokens — the
    /// adversarial inputs most likely to drive the recovery machinery into
    /// a corner (half-open clauses, stray separators, nested parens).
    #[test]
    fn parser_never_panics_on_token_splices(
        picks in proptest::collection::vec(0usize..VOCAB.len(), 0..48)
    ) {
        let s = picks.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        spans_in_bounds(&s);
        let analysis = analyze(&s, 1);
        // Recovery must make progress: statements cover the input at most
        // once each, so their count is bounded by the token count.
        prop_assert!(analysis.statements.len() <= picks.len() + 1);
    }
}
