//! Differential property tests for Select fusion: a plan executed with
//! `fuse_selects` on (filter evaluated inside the downstream operator's
//! partition sweep) must produce exactly the results of the
//! operator-at-a-time execution — across Select→Nest, Select→Reduce
//! (collection and scalar monoids), Select→Join, Select→ThetaJoin, and
//! transform-shaped heads, under `Null`/`NaN` predicate values and empty
//! partitions.
//!
//! One documented exception to bit-exactness: `Sum`/`Prod` over *float*
//! heads. The fused path folds per partition and merges partials, so
//! float additions associate differently than the unfused driver-
//! sequential fold — last-ulp differences, as in any parallel aggregation
//! (the scalar-monoid property below uses an integer head, where both
//! orders are exact).

use std::collections::HashMap;
use std::sync::Arc;

use cleanm::core::algebra::{Alg, HintKind, ThetaHint};
use cleanm::core::calculus::{BinOp, CalcExpr, EvalCtx, Func, MonoidKind};
use cleanm::core::engine::storage::StoredTable;
use cleanm::core::physical::{EngineProfile, Executor};
use cleanm::exec::ExecContext;
use cleanm::values::Value;
use proptest::prelude::*;

/// Scalar pool for the predicate columns: integers, floats (NaN included),
/// strings, and NULL — everything a cleaning predicate meets in the wild.
fn scalar() -> BoxedStrategy<Value> {
    prop_oneof![
        (-6i64..6).prop_map(Value::Int),
        (-2.0f64..2.0).prop_map(Value::Float),
        Just(Value::Float(f64::NAN)),
        Just(Value::Null),
        Just(Value::str("a st")),
        Just(Value::str("b st")),
    ]
    .boxed()
}

/// A random customer-shaped table: `k` drives grouping, `v` and `s` feed
/// predicates. Sizes start at zero so empty tables (and therefore fully
/// empty partitions) are always in the mix.
fn table() -> BoxedStrategy<Vec<Value>> {
    proptest::collection::vec((scalar(), scalar(), 0i64..4), 0..24)
        .prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (v, s, k))| {
                    Value::record([
                        ("__rowid", Value::Int(i as i64)),
                        ("k", Value::Int(k)),
                        ("v", v),
                        ("s", s),
                    ])
                })
                .collect()
        })
        .boxed()
}

/// A small predicate grammar over the row variable `var`: comparisons
/// against int/float/NaN/Null constants plus conjunction/disjunction.
fn pred(var: &'static str) -> BoxedStrategy<CalcExpr> {
    let col = move |f: &str| CalcExpr::proj(CalcExpr::var(var), f);
    let atom = prop_oneof![
        (0i64..4).prop_map(move |c| CalcExpr::bin(BinOp::Lt, col("k"), CalcExpr::int(c))),
        (-1.0f64..1.0).prop_map(move |c| CalcExpr::bin(BinOp::Ge, col("v"), CalcExpr::float(c))),
        Just(CalcExpr::bin(
            BinOp::Le,
            col("v"),
            CalcExpr::float(f64::NAN)
        )),
        Just(CalcExpr::bin(
            BinOp::Ne,
            col("s"),
            CalcExpr::Const(Value::Null)
        )),
        Just(CalcExpr::bin(BinOp::Eq, col("s"), CalcExpr::str("a st"))),
    ];
    let atom = atom.boxed();
    (atom.clone(), atom, 0u8..3)
        .prop_map(|(a, b, combine)| match combine {
            0 => a,
            1 => CalcExpr::bin(BinOp::And, a, b),
            _ => CalcExpr::bin(BinOp::Or, a, b),
        })
        .boxed()
}

fn catalog(rows: Vec<Value>) -> HashMap<String, StoredTable> {
    let mut t = HashMap::new();
    t.insert("t".to_string(), StoredTable::from_rows(rows));
    t
}

/// Stack `preds` as a Select chain over `input` (first predicate innermost).
fn select_chain(mut input: Arc<Alg>, preds: &[CalcExpr]) -> Arc<Alg> {
    for p in preds {
        input = Arc::new(Alg::Select {
            input,
            pred: p.clone(),
        });
    }
    input
}

/// Run `plan` under the profile and return its sorted output plus how many
/// Select nodes the executor fused away.
fn run(
    plan: &Arc<Alg>,
    tables: &HashMap<String, StoredTable>,
    profile: EngineProfile,
) -> (Vec<Value>, usize) {
    let ctx = ExecContext::new(2, 4);
    let mut ex = Executor::new(ctx, profile, tables, Arc::new(EvalCtx::new()));
    ex.register_plans(std::slice::from_ref(plan));
    let mut out = ex.run_reduce(plan).expect("plan executes");
    out.sort();
    (out, ex.fused_selects)
}

/// The operator-at-a-time twin of the fusing profile: identical policies,
/// fusion off — so any output difference is attributable to fusion alone.
fn unfused_profile() -> EngineProfile {
    let mut p = EngineProfile::clean_db();
    p.fuse_selects = false;
    p.fold_groups = false; // the operator-at-a-time twin materializes groups
    p
}

/// fused ≡ unfused for a given plan, requiring that fusion engaged
/// (`expect_fused` Select nodes) when the profile allows it.
fn assert_fused_matches(
    plan: &Arc<Alg>,
    tables: &HashMap<String, StoredTable>,
    expect_fused: usize,
) {
    let (fused_out, fused_n) = run(plan, tables, EngineProfile::clean_db());
    let (unfused_out, unfused_n) = run(plan, tables, unfused_profile());
    assert_eq!(fused_out, unfused_out, "fusion changed the results");
    assert_eq!(fused_n, expect_fused, "fusion did not engage as expected");
    assert_eq!(unfused_n, 0, "unfused profile must not fuse");
}

fn scan(var: &str) -> Arc<Alg> {
    Arc::new(Alg::Scan {
        table: "t".into(),
        var: var.into(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Select chain → Reduce(Bag) with a transform-shaped head (the
    /// `prefix` / `lower` string builtins).
    #[test]
    fn select_reduce_transform_fused_matches(
        rows in table(),
        p1 in pred("c"),
        p2 in pred("c"),
    ) {
        let tables = catalog(rows);
        let input = select_chain(scan("c"), &[p1, p2]);
        let plan = Arc::new(Alg::Reduce {
            input,
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![
                ("p", CalcExpr::call(Func::Prefix, vec![CalcExpr::proj(CalcExpr::var("c"), "s")])),
                ("l", CalcExpr::call(Func::Lower, vec![CalcExpr::proj(CalcExpr::var("c"), "s")])),
            ]),
        });
        assert_fused_matches(&plan, &tables, 2);
    }

    /// Select → Reduce over every scalar monoid (the parallel
    /// `filter_fold` path) plus Set (dedup finish). Heads are integers:
    /// exact under any fold association (see the module note on floats).
    #[test]
    fn select_reduce_scalar_monoids_fused_match(
        rows in table(),
        p in pred("c"),
    ) {
        let tables = catalog(rows);
        for monoid in [
            MonoidKind::Sum,
            MonoidKind::Min,
            MonoidKind::Max,
            MonoidKind::Any,
            MonoidKind::All,
            MonoidKind::Set,
        ] {
            let plan = Arc::new(Alg::Reduce {
                input: select_chain(scan("c"), std::slice::from_ref(&p)),
                monoid: monoid.clone(),
                head: match monoid {
                    MonoidKind::Any | MonoidKind::All => CalcExpr::bin(
                        BinOp::Gt,
                        CalcExpr::proj(CalcExpr::var("c"), "k"),
                        CalcExpr::int(1),
                    ),
                    _ => CalcExpr::proj(CalcExpr::var("c"), "k"),
                },
            });
            assert_fused_matches(&plan, &tables, 1);
        }
    }

    /// Select → Nest → Reduce: the filter runs inside the pair-emission
    /// sweep of the grouping.
    #[test]
    fn select_nest_fused_matches(rows in table(), p in pred("c")) {
        let tables = catalog(rows);
        let nest = Arc::new(Alg::Nest {
            input: select_chain(scan("c"), std::slice::from_ref(&p)),
            algo: cleanm::core::calculus::FilterAlgo::Exact,
            key: CalcExpr::proj(CalcExpr::var("c"), "k"),
            item: CalcExpr::var("c"),
            group_var: "g".into(),
        });
        let plan = Arc::new(Alg::Reduce {
            input: nest,
            monoid: MonoidKind::Bag,
            head: CalcExpr::var("g"),
        });
        assert_fused_matches(&plan, &tables, 1);
    }

    /// Selects on both sides of an equi-Join: filters run inside the
    /// keying sweeps.
    #[test]
    fn select_join_fused_matches(rows in table(), pl in pred("l"), pr in pred("r")) {
        let tables = catalog(rows);
        let join = Arc::new(Alg::Join {
            left: select_chain(scan("l"), std::slice::from_ref(&pl)),
            right: select_chain(scan("r"), std::slice::from_ref(&pr)),
            left_key: CalcExpr::proj(CalcExpr::var("l"), "k"),
            right_key: CalcExpr::proj(CalcExpr::var("r"), "k"),
        });
        let plan = Arc::new(Alg::Reduce {
            input: join,
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![
                ("a", CalcExpr::proj(CalcExpr::var("l"), "__rowid")),
                ("b", CalcExpr::proj(CalcExpr::var("r"), "__rowid")),
            ]),
        });
        assert_fused_matches(&plan, &tables, 2);
    }

    /// Select *chains* on the sides of a ThetaJoin collapse to one filter
    /// pass per side (the sides themselves must stay materialized for the
    /// pruning probes).
    #[test]
    fn select_theta_chain_collapse_matches(rows in table(), pl in pred("l"), pl2 in pred("l"), pr in pred("r")) {
        let tables = catalog(rows);
        let theta_pred = CalcExpr::bin(
            BinOp::Lt,
            CalcExpr::proj(CalcExpr::var("l"), "k"),
            CalcExpr::proj(CalcExpr::var("r"), "k"),
        );
        let theta = Arc::new(Alg::ThetaJoin {
            left: select_chain(scan("l"), &[pl, pl2]),
            right: select_chain(scan("r"), std::slice::from_ref(&pr)),
            pred: theta_pred,
            hint: ThetaHint {
                left_key: CalcExpr::proj(CalcExpr::var("l"), "k"),
                right_key: CalcExpr::proj(CalcExpr::var("r"), "k"),
                kind: HintKind::LeftLessThanRight,
            },
        });
        let plan = Arc::new(Alg::Reduce {
            input: theta,
            monoid: MonoidKind::Bag,
            head: CalcExpr::record(vec![
                ("a", CalcExpr::proj(CalcExpr::var("l"), "__rowid")),
                ("b", CalcExpr::proj(CalcExpr::var("r"), "__rowid")),
            ]),
        });
        // The left chain of two collapses into one pass: one Select fused.
        assert_fused_matches(&plan, &tables, 1);
    }

    /// Deep Select chains feeding Reduce collapse entirely — and the
    /// chain order is preserved (inner predicates run first).
    #[test]
    fn deep_select_chain_fused_matches(
        rows in table(),
        p1 in pred("c"),
        p2 in pred("c"),
        p3 in pred("c"),
    ) {
        let tables = catalog(rows);
        let plan = Arc::new(Alg::Reduce {
            input: select_chain(scan("c"), &[p1, p2, p3]),
            monoid: MonoidKind::Bag,
            head: CalcExpr::proj(CalcExpr::var("c"), "__rowid"),
        });
        assert_fused_matches(&plan, &tables, 3);
    }
}

/// End-to-end differential check through the full session (parse → plan →
/// execute): WHERE + FD under the fusing profile matches the unfused twin.
#[test]
fn session_where_fd_fused_matches_unfused() {
    use cleanm::core::CleanDb;
    use cleanm::datagen::customer::CustomerGen;

    let data = CustomerGen::new(7)
        .rows(800)
        .duplicate_fraction(0.1)
        .generate();
    let sql = "SELECT * FROM customer c WHERE c.nationkey < 20 FD(c.address, c.nationkey)";
    let mut reports = Vec::new();
    for profile in [EngineProfile::clean_db(), unfused_profile()] {
        let mut db = CleanDb::new(profile);
        db.register("customer", data.table.clone());
        reports.push(db.run(sql).unwrap());
    }
    assert_eq!(reports[0].violating_ids, reports[1].violating_ids);
    assert!(
        reports[0].exprs.fused_selects >= 2,
        "fusing profile must fuse the WHERE and the group filter: {:?}",
        reports[0].exprs
    );
    assert_eq!(reports[1].exprs.fused_selects, 0);
    assert_eq!(
        reports[0].exprs.interpreted, 0,
        "fused predicates still run compiled"
    );
}
