//! Golden-fixture harness: every directory under `tests/fixtures/` with a
//! `query.cm` is run deterministically (CleanDB profile, seed 42) and its
//! rendered plan/report — or, for broken sources, its rendered diagnostics
//! — is compared byte-for-byte against the `expected.*` files.
//!
//! Regenerate with `UPDATE_FIXTURES=1 cargo test --test golden`.

use std::path::Path;

use cleanm_cli::fixtures::{run_all, update_mode};

#[test]
fn golden_fixtures() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let update = update_mode();
    let outcomes = run_all(&root, update);
    assert!(
        outcomes.len() >= 12,
        "expected at least 12 fixtures under {}, found {}",
        root.display(),
        outcomes.len()
    );
    let diag_cases = outcomes
        .iter()
        .filter(|o| o.name.starts_with("diag"))
        .count();
    assert!(
        diag_cases >= 2,
        "expected at least 2 diagnostic fixtures, found {diag_cases}"
    );

    let mut failures = String::new();
    for o in &outcomes {
        if update && !o.updated.is_empty() {
            eprintln!("updated {}: {:?}", o.name, o.updated);
        }
        for m in &o.mismatches {
            failures.push_str(&format!("[{}] {m}\n", o.name));
        }
    }
    assert!(failures.is_empty(), "fixture mismatches:\n{failures}");

    // Update mode must be idempotent: an immediate second regeneration
    // writes nothing (renderings are byte-stable run to run).
    if update {
        let second = run_all(&root, true);
        let rewritten: Vec<_> = second
            .iter()
            .filter(|o| !o.updated.is_empty())
            .map(|o| &o.name)
            .collect();
        assert!(
            rewritten.is_empty(),
            "regeneration is not byte-stable for: {rewritten:?}"
        );
    }
}
