//! Pretty-printer round-trip: for the language-surface corpus (the queries
//! exercised by `tests/language.rs`), `parse → pretty-print → parse` must
//! yield the *identical desugared calculus* — the printer is a faithful,
//! canonical rendering of what the engine executes.

use cleanm::core::calculus::desugar::desugar_query;
use cleanm::core::{parse_query, pretty_query};

/// The valid queries from the language-surface integration tests, plus the
/// frontier this PR adds (DC, multi-attribute FD, parameterized blockers).
const CORPUS: &[&str] = &[
    "SELECT o.region AS r, o.amount FROM orders o WHERE o.amount > 12",
    "SELECT DISTINCT o.region FROM orders o",
    "SELECT o.region, count(*) AS n, sum(o.amount) AS total, \
     avg(o.amount) AS mean, max(o.amount) AS biggest \
     FROM orders o GROUP BY o.region",
    "SELECT o.region, count(*) AS n FROM orders o \
     GROUP BY o.region HAVING count(*) > 1",
    "SELECT o.region, count(*) AS n FROM orders o \
     WHERE o.status = 'open' GROUP BY o.region",
    "SELECT lower(o.region) AS l, length(o.region) AS n FROM orders o \
     WHERE o.region = 'east'",
    "SELECT * FROM orders o \
     DEDUP(exact, LD, 0.7, o.region, o.status) \
     FD(o.region | o.status)",
    "SELECT * FROM orders o \
     FD(o.region | o.status) \
     DEDUP(exact, LD, 0.7, o.region, o.status)",
    "SELECT c.name, c.address, * FROM customer c, dictionary d \
     FD(c.address, prefix(c.phone)) \
     DEDUP(token_filtering, LD, 0.8, c.address) \
     CLUSTER BY(token_filtering, LD, 0.8, c.name)",
    "SELECT * FROM t FD(a, b | c)",
    "SELECT * FROM t DEDUP(token_filtering(2), jaccard, 0.9, name)",
    "SELECT * FROM t, d CLUSTER BY(kmeans(5), JW, 0.7, t.name)",
    "SELECT * FROM orders DC(t1.region = t2.region AND t1.amount > t2.amount + 50)",
    "SELECT * FROM orders DC(t1.amount > t2.amount * 10)",
    "SELECT a + b * c, (a + b) * c FROM t WHERE NOT a = 1 AND (b = 2 OR c = 3)",
    "SELECT 'it''s' AS q, NULL AS n, TRUE AS t FROM t",
];

#[test]
fn roundtrip_preserves_the_calculus() {
    for src in CORPUS {
        let q1 = parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = pretty_query(&q1);
        let q2 =
            parse_query(&printed).unwrap_or_else(|e| panic!("re-parse of `{printed}` failed: {e}"));
        let d1 = desugar_query(&q1, 42).unwrap_or_else(|e| panic!("{src}: {e}"));
        let d2 = desugar_query(&q2, 42)
            .unwrap_or_else(|e| panic!("desugar of re-parse `{printed}` failed: {e}"));
        assert_eq!(
            d1, d2,
            "calculus drifted through pretty-printing:\n  source: {src}\n  printed: {printed}"
        );
    }
}

#[test]
fn pretty_is_a_fixpoint() {
    for src in CORPUS {
        let printed = pretty_query(&parse_query(src).unwrap());
        let twice = pretty_query(&parse_query(&printed).unwrap());
        assert_eq!(printed, twice, "printer not canonical for {src}");
    }
}
