//! # CleanM — an optimizable query language for unified scale-out data cleaning
//!
//! This is a Rust reproduction of the VLDB 2017 paper *"CleanM: An
//! Optimizable Query Language for Unified Scale-Out Data Cleaning"*
//! (Giannakopoulou et al.). The crate is a facade that re-exports the
//! workspace members; see each member crate for the detailed APIs:
//!
//! * [`values`] — the nested data model ([`values::Value`], [`values::Schema`], [`values::Row`]).
//! * [`formats`] — CSV / JSON / XML readers and writers plus the `colbin`
//!   columnar binary format (the repo's Parquet stand-in).
//! * [`text`] — string similarity metrics and q-gram tokenization.
//! * [`cluster`] — single-pass & multi-pass k-means, hierarchical clustering,
//!   and token-filter blocking, all with monoid-style merge laws.
//! * [`exec`] — the scale-out runtime substrate: partitioned datasets,
//!   shuffles, equi-joins, and three theta-join algorithms.
//! * [`datagen`] — deterministic TPC-H / DBLP / MAG-shaped workload
//!   generators with ground-truth tracking.
//! * [`core`] — the paper's contribution: the CleanM language, the monoid
//!   comprehension calculus and its normalizer, the nested relational
//!   algebra and its rewriter, physical planning under three engine
//!   profiles, and the cleaning operators (FD, DC, DEDUP, CLUSTER BY,
//!   transformations).
//! * [`incr`] — the incremental cleaning service: append ingestion with
//!   monoid-maintained statistics, standing queries with delta-driven
//!   re-validation, and the session plan cache.
//! * [`repair`] — the repair engine: confidence-scored cell fixes for
//!   FD/DEDUP/CLUSTER BY/DC violations, applied through
//!   [`core::CleanDb::apply_repairs`] and re-validated incrementally.
//!
//! ## Quickstart
//!
//! ```
//! use cleanm::core::{CleanDb, EngineProfile};
//! use cleanm::datagen::customer::CustomerGen;
//!
//! // Generate a small dirty customer table and register it.
//! let data = CustomerGen::new(42).rows(500).duplicate_fraction(0.1).generate();
//! let mut db = CleanDb::new(EngineProfile::clean_db());
//! db.register("customer", data.table);
//!
//! // One CleanM query: an FD check plus duplicate detection, optimized as
//! // a single task.
//! let report = db
//!     .run(
//!         "SELECT c.name, c.address FROM customer c \
//!          FD(c.address, c.nationkey) \
//!          DEDUP(exact, LD, 0.8, c.address, c.name)",
//!     )
//!     .unwrap();
//! assert!(report.violations() > 0);
//! ```

pub use cleanm_cluster as cluster;
pub use cleanm_core as core;
pub use cleanm_datagen as datagen;
pub use cleanm_exec as exec;
pub use cleanm_formats as formats;
pub use cleanm_incr as incr;
pub use cleanm_repair as repair;
pub use cleanm_text as text;
pub use cleanm_values as values;
